//! Immutable, shareable prediction snapshots of a quadtree, in a packed
//! cache-compact layout.
//!
//! The live [`MemoryLimitedQuadtree`] is deliberately not `Sync`: its
//! prediction path updates APC counters through a `Cell`, and its
//! insertion path restructures the arena. A serving layer that wants many
//! reader threads therefore publishes a [`FrozenTree`] — a compacted,
//! read-only copy of the live nodes that answers predictions with the
//! exact semantics of paper Fig. 3 but carries no interior mutability, so
//! it is `Send + Sync` and can sit behind an `Arc` shared by any number
//! of threads while the writer keeps mutating its private live tree.
//!
//! ## Packed layout
//!
//! Prediction only ever needs two facts per node — the point count
//! (compared against `β`) and the precomputed block average — plus a way
//! to find the child covering the query point. The snapshot therefore
//! stores one 32-byte [`PackedNode`] record per node:
//!
//! ```text
//! PackedNode { count: u64, avg: f64, mask: u64, children_base: u32 }
//! ```
//!
//! Children are **dense**: instead of a heap-boxed `2^d`-slot array full
//! of `NIL` padding per internal node (the live tree's layout), every
//! present child's index goes into one shared `u32` slab, and the record
//! keeps a child-presence bitmask plus the node's base offset into that
//! slab. The child for slot `s` lives at
//! `children[children_base + popcount(mask & (1 << s) - 1)]` — a
//! popcount-rank, one branch and no pointer chase. A root-to-leaf descent
//! touches one cache line per level (the record) plus one slab word when
//! it takes a child; there are no per-node allocations at all.
//!
//! For spaces with more than 6 dimensions the fanout exceeds the 64 bits
//! of the inline mask; such trees keep their (multi-word) masks in a
//! shared overflow slab and the record's `mask` field holds the node's
//! word offset into it. The paper's experiments use `d ≤ 4`, so the
//! inline path is the one that matters.
//!
//! Freezing is O(live nodes) in time and space; the node count is bounded
//! by the model's byte budget, so for the paper's configurations a freeze
//! copies a few kilobytes. Nodes are re-indexed in BFS order into the
//! slab (dead arena slots are dropped), so siblings — and the upper
//! levels every descent shares — sit adjacent in memory.
//!
//! ## Descent words
//!
//! The child slot taken at depth `t` depends only on the query point's
//! quantized grid coordinates, never on the tree. Quantization therefore
//! precomputes a **descent word** per query
//! ([`GridPoint::descent_word`]): the child slots for depths
//! `0..packed_levels`, packed `d` bits per level into one `u64`. The hot
//! descent loop reads its slot with one shift-and-mask instead of
//! re-deriving it from `d` coordinate bit-tests per level, and because
//! every slab index was validated once at construction
//! ([`FrozenTree::validate_slabs`]), the loop indexes records and child
//! slots without per-step bounds checks.
//!
//! ## Multi-lane batches
//!
//! [`FrozenTree::predict_batch_into`] descends [`LANES`] queries per
//! wave in lockstep depth: one pass gathers the packed records of every
//! live lane (independent loads the CPU overlaps), a second pass does the
//! β-compare and per-lane advance, issuing a software prefetch for each
//! lane's next record. Lanes retire independently — a lane whose block
//! drops under `β` or runs out of children keeps its answer while the
//! rest of the wave descends. The result is bit-identical to running the
//! scalar descent per query; trees with multi-word masks (`d ≥ 7`) fall
//! back to the scalar loop.
//!
//! ## Copy-on-write republication
//!
//! Records live in fixed-size [`NodeChunk`]s behind `Arc`s, and the child
//! slabs are `Arc`-shared wholesale. When a maintainer applies a small
//! guarded batch and republishes, [`MemoryLimitedQuadtree::refreeze`]
//! patches only the chunks whose summaries actually changed (the live
//! tree logs dirty nodes between freezes) and shares every other chunk
//! with the previous snapshot — an O(touched) republication instead of an
//! O(nodes) rebuild. Any structural change (split, eviction, merge,
//! restore) or log overflow falls back to a full freeze, so a refrozen
//! snapshot is always bit-identical to a from-scratch [`freeze`].
//!
//! [`freeze`]: MemoryLimitedQuadtree::freeze

use std::cell::RefCell;
use std::sync::Arc;

use crate::config::MlqConfig;
use crate::error::MlqError;
use crate::node::NIL;
use crate::space::{GridPoint, Space, GRID_BITS};
use crate::summary::Summary;
use crate::tree::MemoryLimitedQuadtree;

/// Sentinel in the wide-mask `mask` field marking a childless node.
const WIDE_LEAF: u64 = u64::MAX;

/// Queries descended per wave by the batched kernel.
const LANES: usize = 16;

/// Records per copy-on-write chunk (2 KiB of 32-byte records — a handful
/// of cache lines, small enough that patching one node copies little,
/// large enough that the chunk table stays tiny).
const CHUNK_NODES: usize = 64;
const CHUNK_SHIFT: u32 = 6;
const CHUNK_MASK: u32 = CHUNK_NODES as u32 - 1;

/// One packed node record: everything a descent reads, in 32 bytes.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct PackedNode {
    /// `C(b)` — compared against `β` at every level.
    count: u64,
    /// `AVG(b)`, precomputed at freeze time (0.0 for an empty block).
    avg: f64,
    /// Child-presence bitmask for fanout ≤ 64; otherwise the node's word
    /// offset into the shared wide-mask slab (`WIDE_LEAF` for leaves).
    mask: u64,
    /// Offset of this node's first child in the shared child slab.
    children_base: u32,
}

/// Padding record for the tail of the last chunk; never reachable (every
/// validated index is below `len`).
const EMPTY_NODE: PackedNode = PackedNode { count: 0, avg: 0.0, mask: 0, children_base: 0 };

/// A fixed-size block of packed records. Sized (not a slice) so
/// [`Arc::make_mut`] can clone exactly one chunk on a copy-on-write
/// patch.
#[derive(Debug, Clone)]
struct NodeChunk([PackedNode; CHUNK_NODES]);

/// Which live tree state a snapshot was frozen from, used by
/// [`MemoryLimitedQuadtree::refreeze`] to decide whether the previous
/// snapshot can be patched in place of a full rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Provenance {
    /// Identity of the producing live tree (0 = detached, e.g. the result
    /// of [`FrozenTree::merge_with`]).
    tree_id: u64,
    /// The tree's freeze sequence number when this snapshot was taken.
    freeze_seq: u64,
    /// The tree's structure epoch when this snapshot was taken.
    epoch: u64,
}

/// Pre-quantized queries plus their precomputed descent words — the
/// reusable "plan" half of a batched prediction, split out so callers
/// descending several trees over the same [`Space`] (the serving layer
/// walks a CPU and an IO tree per shard) quantize and pack each point
/// once.
///
/// Build with [`BatchPlan::prepare`], run with
/// [`FrozenTree::predict_planned_into`]. The plan owns its buffers and
/// reuses their capacity across calls.
#[derive(Debug, Default)]
pub struct BatchPlan {
    grids: Vec<GridPoint>,
    words: Vec<u64>,
    levels: u32,
}

impl BatchPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        BatchPlan::default()
    }

    /// Quantizes `points` against `space` and packs descent words for
    /// `levels` levels (clamped to what one word / the grid resolution
    /// can hold). Clears any previous plan; buffers are reused.
    ///
    /// # Errors
    ///
    /// Fails on the first malformed point
    /// ([`MlqError::DimensionMismatch`] / [`MlqError::NonFiniteValue`]),
    /// leaving the plan empty.
    pub fn prepare<P: AsRef<[f64]>>(
        &mut self,
        space: &Space,
        levels: u32,
        points: &[P],
    ) -> Result<(), MlqError> {
        self.grids.clear();
        self.words.clear();
        let dims = u32::try_from(space.dims()).expect("dims fit u32");
        self.levels = levels.min(64 / dims).min(GRID_BITS);
        self.grids.reserve(points.len());
        self.words.reserve(points.len());
        for p in points {
            let grid = space.grid_point(p.as_ref())?;
            self.words.push(grid.descent_word(self.levels));
            self.grids.push(grid);
        }
        Ok(())
    }

    /// Number of planned queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.grids.len()
    }

    /// True when the plan holds no queries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.grids.is_empty()
    }

    /// Levels packed into each descent word.
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.levels
    }
}

thread_local! {
    /// Per-thread plan backing [`FrozenTree::predict_batch_into`], so the
    /// quantization scratch survives across calls (the `FrozenTree`
    /// itself is `Sync` and cannot own mutable scratch).
    static BATCH_PLAN: RefCell<BatchPlan> = RefCell::new(BatchPlan::new());
}

/// A read-only prediction snapshot of a [`MemoryLimitedQuadtree`] in the
/// packed struct-of-slabs layout described in the
/// [module documentation](self).
///
/// Shares the live tree's prediction semantics ([Fig. 3]: deepest block
/// on the root-to-leaf path holding at least `β` points, root fallback)
/// without its interior mutability — `FrozenTree` is `Send + Sync`.
/// `Clone` is cheap: chunks and slabs are `Arc`-shared.
///
/// [Fig. 3]: MemoryLimitedQuadtree::predict
#[derive(Debug, Clone)]
pub struct FrozenTree {
    config: MlqConfig,
    /// Full summary of the root block (the packed records only carry
    /// count and average).
    root: Summary,
    /// Number of packed records; index 0 is the root, BFS order.
    len: u32,
    /// Packed records in copy-on-write chunks of [`CHUNK_NODES`]; the
    /// last chunk is padded with [`EMPTY_NODE`].
    chunks: Vec<Arc<NodeChunk>>,
    /// Dense child indices, shared by every internal node.
    children: Arc<[u32]>,
    /// Multi-word child masks for fanout > 64; empty otherwise.
    wide_masks: Arc<[u64]>,
    /// Mask words per internal node (1 means the inline-mask fast path).
    mask_words: u32,
    /// Dimensions of the model space (slot width of a descent word).
    dims: u32,
    /// Levels each descent word covers for this tree.
    packed_levels: u32,
    /// Which live tree state produced this snapshot.
    provenance: Provenance,
}

impl FrozenTree {
    /// Builds a frozen copy of `tree`'s live nodes (root first), reusing
    /// the tree's scratch BFS queue, and records the arena → slab index
    /// map that future [`MemoryLimitedQuadtree::refreeze`] patches need.
    pub(crate) fn from_tree(tree: &MemoryLimitedQuadtree) -> Self {
        let fanout = tree.config().space.fanout();
        let mask_words = fanout.div_ceil(64);
        // BFS from the root, assigning contiguous indices as nodes are
        // discovered; children are recorded under the new indices. The
        // queue is borrowed from the tree so repeated freezes reuse its
        // capacity instead of growing a fresh Vec from empty every time.
        let mut order = tree.freeze_scratch().borrow_mut();
        order.clear();
        order.push(tree.root);
        let mut nodes: Vec<PackedNode> = Vec::with_capacity(tree.node_count());
        let mut children: Vec<u32> = Vec::new();
        let mut wide_masks: Vec<u64> = Vec::new();
        let mut head = 0usize;
        while head < order.len() {
            let old = order[head];
            head += 1;
            let node = tree.arena.get(old);
            let children_base = u32::try_from(children.len()).expect("child slab fits u32");
            let enqueue = |order: &mut Vec<u32>, children: &mut Vec<u32>, child: u32| {
                order.push(child);
                children.push(u32::try_from(order.len() - 1).expect("arena indices fit u32"));
            };
            let mask = match &node.children {
                None => {
                    if mask_words == 1 {
                        0
                    } else {
                        WIDE_LEAF
                    }
                }
                Some(slots) if mask_words == 1 => {
                    let mut mask = 0u64;
                    for (slot, &child) in slots.iter().enumerate() {
                        if child != NIL {
                            mask |= 1 << slot;
                            enqueue(&mut order, &mut children, child);
                        }
                    }
                    mask
                }
                Some(slots) => {
                    let base = wide_masks.len();
                    wide_masks.resize(base + mask_words, 0);
                    for (slot, &child) in slots.iter().enumerate() {
                        if child != NIL {
                            wide_masks[base + slot / 64] |= 1 << (slot % 64);
                            enqueue(&mut order, &mut children, child);
                        }
                    }
                    base as u64
                }
            };
            nodes.push(PackedNode {
                count: node.summary.count,
                avg: node.summary.avg(),
                mask,
                children_base,
            });
        }
        // Reset the dirty log and rebuild the arena → slab map: this
        // snapshot is now the one `refreeze` may patch.
        let provenance = {
            let mut state = tree.freeze_state().borrow_mut();
            state.seq += 1;
            state.dirty.clear();
            state.dirty_overflow = false;
            state.map_epoch = tree.structure_epoch;
            state.map_built = true;
            state.bfs_index.clear();
            state.bfs_index.resize(tree.arena.capacity(), NIL);
            for (slab, &arena_idx) in order.iter().enumerate() {
                state.bfs_index[arena_idx as usize] =
                    u32::try_from(slab).expect("slab indices fit u32");
            }
            Provenance { tree_id: tree.tree_id, freeze_seq: state.seq, epoch: tree.structure_epoch }
        };
        FrozenTree::assemble(
            tree.config().clone(),
            tree.root_summary(),
            nodes,
            children,
            wide_masks,
            provenance,
        )
    }

    /// Chunks the record slab and derives the descent parameters. Every
    /// construction path funnels through here, so the validation pass
    /// below is the single place that licenses the unchecked descent.
    fn assemble(
        config: MlqConfig,
        root: Summary,
        nodes: Vec<PackedNode>,
        children: Vec<u32>,
        wide_masks: Vec<u64>,
        provenance: Provenance,
    ) -> Self {
        let fanout = config.space.fanout();
        let mask_words = fanout.div_ceil(64);
        let dims = u32::try_from(config.space.dims()).expect("dims fit u32");
        // One extra level past λ so the word also covers the slot probed
        // at a depth-λ node (the lookup fails there — λ-nodes are leaves
        // — but the probe still reads a slot).
        let packed_levels = (u32::from(config.lambda) + 1).min(64 / dims).min(GRID_BITS);
        Self::validate_slabs(&nodes, &children, &wide_masks, mask_words, fanout);
        let len = u32::try_from(nodes.len()).expect("node count fits u32");
        let mut chunks: Vec<Arc<NodeChunk>> = Vec::with_capacity(nodes.len().div_ceil(CHUNK_NODES));
        for group in nodes.chunks(CHUNK_NODES) {
            let mut arr = [EMPTY_NODE; CHUNK_NODES];
            arr[..group.len()].copy_from_slice(group);
            chunks.push(Arc::new(NodeChunk(arr)));
        }
        FrozenTree {
            config,
            root,
            len,
            chunks,
            children: children.into(),
            wide_masks: wide_masks.into(),
            mask_words: u32::try_from(mask_words).expect("mask words fit u32"),
            dims,
            packed_levels,
            provenance,
        }
    }

    /// Checks, once at construction, every invariant the descent loops
    /// rely on instead of per-step bounds checks: inline masks carry no
    /// bits at or above the fanout, wide-mask offsets stay inside the
    /// wide slab, every node's child range stays inside the child slab,
    /// and every child index refers to a real record.
    ///
    /// # Panics
    ///
    /// Panics when a slab is malformed — construction bugs must never
    /// reach the unchecked read path.
    fn validate_slabs(
        nodes: &[PackedNode],
        children: &[u32],
        wide_masks: &[u64],
        mask_words: usize,
        fanout: usize,
    ) {
        let len = nodes.len();
        for node in nodes {
            let degree = if mask_words == 1 {
                if fanout < 64 {
                    assert!(node.mask >> fanout == 0, "mask bits beyond fanout");
                }
                node.mask.count_ones() as usize
            } else if node.mask == WIDE_LEAF {
                0
            } else {
                let base = usize::try_from(node.mask).expect("wide-mask offset fits usize");
                assert!(base + mask_words <= wide_masks.len(), "wide-mask slab overrun");
                wide_masks[base..base + mask_words].iter().map(|w| w.count_ones() as usize).sum()
            };
            let base = node.children_base as usize;
            assert!(base + degree <= children.len(), "child slab overrun");
            for &c in &children[base..base + degree] {
                assert!((c as usize) < len, "child index out of range");
            }
        }
    }

    /// The record at slab index `idx`, by value (32 bytes — one load the
    /// optimizer keeps in registers).
    #[inline(always)]
    fn node(&self, idx: u32) -> PackedNode {
        debug_assert!(idx < self.len, "slab index {idx} out of range");
        // SAFETY: descent starts at index 0 (`len` ≥ 1 for any frozen
        // tree) and only follows child indices, all of which
        // `validate_slabs` proved `< len`; the chunk table covers
        // `ceil(len / CHUNK_NODES)` chunks of exactly `CHUNK_NODES`
        // records each.
        unsafe {
            let chunk = self.chunks.get_unchecked((idx >> CHUNK_SHIFT) as usize);
            *chunk.0.get_unchecked((idx & CHUNK_MASK) as usize)
        }
    }

    /// The child slab entry at `i`.
    #[inline(always)]
    fn child_at(&self, i: u32) -> u32 {
        debug_assert!((i as usize) < self.children.len(), "child slab index out of range");
        // SAFETY: `validate_slabs` proved `children_base + degree` stays
        // inside the slab for every node, and the rank passed here is
        // `< degree` by construction of the popcount.
        unsafe { *self.children.get_unchecked(i as usize) }
    }

    /// Prefetches the record at `idx` into cache (advisory; no-op off
    /// x86_64). Issued as soon as a lane knows its next node so the load
    /// overlaps the rest of the wave.
    #[inline(always)]
    fn prefetch(&self, idx: u32) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the index was produced by `child_at`, so the chunk and
        // slot are in range (same argument as `Self::node`); prefetch
        // itself has no memory effects.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let chunk = self.chunks.get_unchecked((idx >> CHUNK_SHIFT) as usize);
            let rec = chunk.0.get_unchecked((idx & CHUNK_MASK) as usize);
            _mm_prefetch::<{ _MM_HINT_T0 }>(std::ptr::from_ref(rec).cast::<i8>());
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = idx;
    }

    /// The configuration of the tree this snapshot was frozen from.
    #[must_use]
    pub fn config(&self) -> &MlqConfig {
        &self.config
    }

    /// Number of nodes in the snapshot.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.len as usize
    }

    /// Summary of the root block (every point the live tree had seen).
    #[must_use]
    pub fn root_summary(&self) -> Summary {
        self.root
    }

    /// True while the snapshot holds no data at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.root.count == 0
    }

    /// Levels each precomputed descent word covers for this tree (λ + 1,
    /// clamped to what one `u64` and the grid resolution can hold).
    #[must_use]
    pub fn packed_levels(&self) -> u32 {
        self.packed_levels
    }

    /// Number of record chunks this snapshot shares (by identity) with
    /// `other` — nonzero after a copy-on-write
    /// [`MemoryLimitedQuadtree::refreeze`], zero between unrelated
    /// freezes. Exposed so tests and diagnostics can observe sharing.
    #[must_use]
    pub fn shared_chunks(&self, other: &FrozenTree) -> usize {
        self.chunks.iter().zip(other.chunks.iter()).filter(|(a, b)| Arc::ptr_eq(a, b)).count()
    }

    /// Heap bytes of the packed slabs (record chunks, including tail
    /// padding, + child slab + any wide masks). This is the snapshot's
    /// real resident footprint, directly comparable with the
    /// `NODE_BYTES`-style accounting of the layout it replaced: per node
    /// a summary plus a boxed `2^d` child-slot array dominated by `NIL`
    /// padding.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.chunks.len() * std::mem::size_of::<NodeChunk>()
            + self.children.len() * std::mem::size_of::<u32>()
            + self.wide_masks.len() * std::mem::size_of::<u64>()
    }

    /// `(count, avg)` of node `node` (BFS index; 0 is the root). Exposed
    /// so tests and tools can rebuild reference layouts from a snapshot.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn node_stats(&self, node: usize) -> (u64, f64) {
        assert!(node < self.len as usize, "node {node} out of range");
        let n = self.node(u32::try_from(node).expect("validated above"));
        (n.count, n.avg)
    }

    /// Index of the child of `node` in child slot `slot`, if present.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range or `slot >= 2^d`.
    #[must_use]
    pub fn child_of(&self, node: usize, slot: usize) -> Option<usize> {
        assert!(slot < self.config.space.fanout(), "slot {slot} out of range");
        assert!(node < self.len as usize, "node {node} out of range");
        let rec = self.node(u32::try_from(node).expect("validated above"));
        self.child_index(&rec, slot).map(|c| c as usize)
    }

    /// Popcount-rank child lookup (see the [module docs](self)).
    #[inline]
    fn child_index(&self, node: &PackedNode, slot: usize) -> Option<u32> {
        if self.mask_words == 1 {
            let bit = 1u64 << slot;
            if node.mask & bit == 0 {
                return None;
            }
            let rank = (node.mask & (bit - 1)).count_ones();
            Some(self.child_at(node.children_base + rank))
        } else {
            self.wide_child(node, slot)
        }
    }

    /// Child lookup through the multi-word mask slab (fanout > 64).
    fn wide_child(&self, node: &PackedNode, slot: usize) -> Option<u32> {
        if node.mask == WIDE_LEAF {
            return None;
        }
        let base = node.mask as usize;
        let (word, bit) = (slot / 64, (slot % 64) as u32);
        let w = self.wide_masks[base + word];
        if w & (1u64 << bit) == 0 {
            return None;
        }
        let mut rank = (w & ((1u64 << bit) - 1)).count_ones();
        for i in 0..word {
            rank += self.wide_masks[base + i].count_ones();
        }
        Some(self.child_at(node.children_base + rank))
    }

    /// The Fig. 3 descent over the packed slab, reading child slots from
    /// the precomputed `word` for the first `word_levels` levels and
    /// falling back to per-level bit extraction beyond it.
    fn descend(&self, grid: &GridPoint, word: u64, word_levels: u32, beta: u64) -> Option<f64> {
        let mut cn = self.node(0);
        if cn.count == 0 {
            return None;
        }
        let mut best = cn.avg;
        let mut depth = 0u32;
        let slot_mask = (1u64 << self.dims) - 1;
        while cn.count >= beta {
            best = cn.avg;
            // Descent words are left-aligned: depth 0 sits in the top
            // `d` bits (see [`GridPoint::descent_word`]).
            let slot = if depth < word_levels {
                ((word >> (64 - (depth + 1) * self.dims)) & slot_mask) as usize
            } else {
                grid.child_slot(depth)
            };
            let next = if self.mask_words == 1 {
                let bit = 1u64 << slot;
                if cn.mask & bit == 0 {
                    None
                } else {
                    let rank = (cn.mask & (bit - 1)).count_ones();
                    Some(self.child_at(cn.children_base + rank))
                }
            } else {
                self.wide_child(&cn, slot)
            };
            match next {
                Some(child) => {
                    cn = self.node(child);
                    depth += 1;
                }
                None => break,
            }
        }
        Some(best)
    }

    /// Scalar single-query descent. Extracts child slots on demand
    /// rather than packing a descent word first: a single query visits
    /// each level at most once, so precomputing all `packed_levels`
    /// slots up front is pure overhead (measurably so — ~25% of the
    /// single-call budget on shallow trees). Descent words pay off only
    /// when a [`BatchPlan`] amortizes the packing across every tree
    /// descended from the same plan.
    fn predict_grid(&self, grid: &GridPoint, beta: u64) -> Option<f64> {
        self.descend(grid, 0, 0, beta)
    }

    /// The multi-lane kernel: descends `grids`/`words` (parallel arrays)
    /// in waves of [`LANES`], appending one result per query to `out`.
    /// Bit-identical to calling [`Self::descend`] per query.
    fn predict_planned_grids(
        &self,
        grids: &[GridPoint],
        words: &[u64],
        word_levels: u32,
        beta: u64,
        out: &mut Vec<Option<f64>>,
    ) {
        debug_assert_eq!(grids.len(), words.len());
        let root = self.node(0);
        if root.count == 0 {
            out.extend(std::iter::repeat_n(None, grids.len()));
            return;
        }
        if self.mask_words != 1 {
            // Wide-mask trees (d ≥ 7) descend scalar: the multi-word rank
            // walk does not fit the branch-free lane advance.
            for (grid, &word) in grids.iter().zip(words) {
                out.push(self.descend(grid, word, word_levels, beta));
            }
            return;
        }
        let slot_mask = (1u64 << self.dims) - 1;
        let mut base = 0usize;
        while base < grids.len() {
            let n = LANES.min(grids.len() - base);
            let mut idx = [0u32; LANES];
            let mut best = [root.avg; LANES];
            let mut recs = [root; LANES];
            let mut live: u32 = (1u32 << n) - 1;
            let mut depth = 0u32;
            while live != 0 {
                // Gather pass: load every live lane's record first so the
                // loads issue back-to-back and overlap in the memory
                // system before any lane's β-compare consumes them.
                let mut m = live;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    recs[l] = self.node(idx[l]);
                }
                // Advance pass: β-compare and step each live lane,
                // prefetching the next record the moment it is known.
                let mut m = live;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let rec = recs[l];
                    if rec.count < beta {
                        live &= !(1u32 << l);
                        continue;
                    }
                    best[l] = rec.avg;
                    let slot = if depth < word_levels {
                        ((words[base + l] >> (64 - (depth + 1) * self.dims)) & slot_mask) as usize
                    } else {
                        grids[base + l].child_slot(depth)
                    };
                    let bit = 1u64 << slot;
                    if rec.mask & bit == 0 {
                        live &= !(1u32 << l);
                    } else {
                        let rank = (rec.mask & (bit - 1)).count_ones();
                        let child = self.child_at(rec.children_base + rank);
                        idx[l] = child;
                        self.prefetch(child);
                    }
                }
                depth += 1;
            }
            out.extend(best[..n].iter().map(|&b| Some(b)));
            base += n;
        }
    }

    /// Predicts the cost at `point` with the configured `β` — the frozen
    /// equivalent of [`MemoryLimitedQuadtree::predict`]. Out-of-range
    /// coordinates clamp onto the space boundary, like the live tree.
    ///
    /// # Errors
    ///
    /// [`MlqError::DimensionMismatch`] or [`MlqError::NonFiniteValue`] for
    /// malformed query points.
    pub fn predict(&self, point: &[f64]) -> Result<Option<f64>, MlqError> {
        self.predict_with_beta(point, self.config.beta)
    }

    /// [`Self::predict`] with an explicit `β`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::predict`].
    pub fn predict_with_beta(&self, point: &[f64], beta: u64) -> Result<Option<f64>, MlqError> {
        let grid = self.config.space.grid_point(point)?;
        Ok(self.predict_grid(&grid, beta))
    }

    /// [`Self::predict`] for a pre-quantized query. Lets a caller that
    /// descends several trees over the same [`Space`] — the serving layer
    /// walks a CPU and an IO tree per shard — quantize each point once
    /// and reuse the grid, instead of re-validating and re-quantizing per
    /// tree.
    #[must_use]
    pub fn predict_quantized(&self, grid: &GridPoint) -> Option<f64> {
        self.predict_grid(grid, self.config.beta)
    }

    /// Runs the multi-lane kernel over a prepared [`BatchPlan`] at the
    /// configured `β`, appending one result per planned query to `out`
    /// (cleared first).
    ///
    /// The plan must have been prepared over this tree's [`Space`]; the
    /// descent words are tree-independent, so one plan drives any number
    /// of trees over the same space.
    pub fn predict_planned_into(&self, plan: &BatchPlan, out: &mut Vec<Option<f64>>) {
        debug_assert!(
            plan.grids.iter().all(|g| g.dims() == self.config.space.dims()),
            "plan prepared over a different space"
        );
        out.clear();
        out.reserve(plan.len());
        self.predict_planned_grids(&plan.grids, &plan.words, plan.levels, self.config.beta, out);
    }

    /// Descends two trees over the same [`Space`] in one fused multi-lane
    /// pass: each wave carries a lane per query with a cursor into *both*
    /// slabs, so the plan arrays are read once, the child slot is
    /// extracted once per lane-level, and the two trees' record loads
    /// issue together and overlap in the memory system. This is the
    /// serving layer's shard read path — every shard walks a CPU and an
    /// IO tree for the same query batch.
    ///
    /// Appends one result per planned query to `a_out`/`b_out` (cleared
    /// first). Bit-identical to running [`Self::predict_planned_into`]
    /// on each tree separately.
    pub fn predict_planned_pair_into(
        a: &FrozenTree,
        b: &FrozenTree,
        plan: &BatchPlan,
        a_out: &mut Vec<Option<f64>>,
        b_out: &mut Vec<Option<f64>>,
    ) {
        debug_assert_eq!(a.config.space, b.config.space, "paired trees must share a space");
        a_out.clear();
        b_out.clear();
        let (grids, words, levels) = (&plan.grids, &plan.words, plan.levels);
        let root_a = a.node(0);
        let root_b = b.node(0);
        if a.mask_words != 1 || b.mask_words != 1 || root_a.count == 0 || root_b.count == 0 {
            // Wide masks descend scalar, and an empty tree answers
            // `None` per query — both are what the per-tree kernel
            // already does, so fall back to it.
            a.predict_planned_into(plan, a_out);
            b.predict_planned_into(plan, b_out);
            return;
        }
        a_out.reserve(plan.len());
        b_out.reserve(plan.len());
        let (beta_a, beta_b) = (a.config.beta, b.config.beta);
        let dims = a.dims;
        let slot_mask = (1u64 << dims) - 1;
        let mut base = 0usize;
        while base < grids.len() {
            let n = LANES.min(grids.len() - base);
            let mut idx_a = [0u32; LANES];
            let mut idx_b = [0u32; LANES];
            let mut best_a = [root_a.avg; LANES];
            let mut best_b = [root_b.avg; LANES];
            let mut recs_a = [root_a; LANES];
            let mut recs_b = [root_b; LANES];
            let full: u32 = (1u32 << n) - 1;
            let (mut live_a, mut live_b) = (full, full);
            let mut depth = 0u32;
            while live_a | live_b != 0 {
                // Gather pass over both slabs: all live loads issue
                // back-to-back before any β-compare consumes them.
                let mut m = live_a;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    recs_a[l] = a.node(idx_a[l]);
                }
                let mut m = live_b;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    recs_b[l] = b.node(idx_b[l]);
                }
                // Advance pass: one slot extraction per lane drives both
                // trees' steps.
                let mut m = live_a | live_b;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let slot = if depth < levels {
                        ((words[base + l] >> (64 - (depth + 1) * dims)) & slot_mask) as usize
                    } else {
                        grids[base + l].child_slot(depth)
                    };
                    let bit = 1u64 << slot;
                    let lane = 1u32 << l;
                    if live_a & lane != 0 {
                        let rec = recs_a[l];
                        if rec.count < beta_a {
                            live_a &= !lane;
                        } else {
                            best_a[l] = rec.avg;
                            if rec.mask & bit == 0 {
                                live_a &= !lane;
                            } else {
                                let rank = (rec.mask & (bit - 1)).count_ones();
                                let child = a.child_at(rec.children_base + rank);
                                idx_a[l] = child;
                                a.prefetch(child);
                            }
                        }
                    }
                    if live_b & lane != 0 {
                        let rec = recs_b[l];
                        if rec.count < beta_b {
                            live_b &= !lane;
                        } else {
                            best_b[l] = rec.avg;
                            if rec.mask & bit == 0 {
                                live_b &= !lane;
                            } else {
                                let rank = (rec.mask & (bit - 1)).count_ones();
                                let child = b.child_at(rec.children_base + rank);
                                idx_b[l] = child;
                                b.prefetch(child);
                            }
                        }
                    }
                }
                depth += 1;
            }
            a_out.extend(best_a[..n].iter().map(|&v| Some(v)));
            b_out.extend(best_b[..n].iter().map(|&v| Some(v)));
            base += n;
        }
    }

    /// Predicts a whole batch of points at the configured `β`, appending
    /// one result per point to `out` (cleared first).
    ///
    /// The batch is quantized (and its descent words packed) in one pass
    /// and descended by the multi-lane kernel in another, so validation
    /// branches stay out of the descent loop. The quantization scratch is
    /// a per-thread [`BatchPlan`] reused across calls.
    ///
    /// # Errors
    ///
    /// Fails on the first malformed point, before any descent runs; `out`
    /// is left empty in that case.
    pub fn predict_batch_into<P: AsRef<[f64]>>(
        &self,
        points: &[P],
        out: &mut Vec<Option<f64>>,
    ) -> Result<(), MlqError> {
        out.clear();
        BATCH_PLAN.with(|plan| {
            let mut plan = plan.borrow_mut();
            plan.prepare(&self.config.space, self.packed_levels, points)?;
            out.reserve(plan.len());
            self.predict_planned_grids(
                &plan.grids,
                &plan.words,
                plan.levels,
                self.config.beta,
                out,
            );
            Ok(())
        })
    }

    /// [`Self::predict_batch_into`] returning a fresh `Vec`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::predict_batch_into`].
    pub fn predict_batch<P: AsRef<[f64]>>(
        &self,
        points: &[P],
    ) -> Result<Vec<Option<f64>>, MlqError> {
        let mut out = Vec::with_capacity(points.len());
        self.predict_batch_into(points, &mut out)?;
        Ok(out)
    }

    /// True when `prev` is the tree's most recent snapshot and nothing
    /// structural changed since — i.e. the dirty log fully describes the
    /// difference and [`Self::patched_from`] applies.
    fn can_patch(tree: &MemoryLimitedQuadtree, prev: &FrozenTree) -> bool {
        let state = tree.freeze_state().borrow();
        tree.tree_id != 0
            && prev.provenance.tree_id == tree.tree_id
            && prev.provenance.freeze_seq == state.seq
            && prev.provenance.epoch == tree.structure_epoch
            && state.map_built
            && state.map_epoch == tree.structure_epoch
            && !state.dirty_overflow
    }

    /// Copy-on-write republication: clones only the chunks holding dirty
    /// records, re-reads their `(count, avg)` from the live summaries
    /// (exactly what a full freeze would store — the patch is
    /// bit-identical), and shares every untouched chunk plus both child
    /// slabs with `prev`.
    fn patched_from(tree: &MemoryLimitedQuadtree, prev: &FrozenTree) -> FrozenTree {
        let mut chunks = prev.chunks.clone();
        let mut state = tree.freeze_state().borrow_mut();
        for &arena_idx in &state.dirty {
            let slab = state.bfs_index[arena_idx as usize];
            debug_assert_ne!(slab, NIL, "dirty node missing from the slab map");
            let summary = &tree.arena.get(arena_idx).summary;
            let chunk = Arc::make_mut(&mut chunks[(slab >> CHUNK_SHIFT) as usize]);
            let rec = &mut chunk.0[(slab & CHUNK_MASK) as usize];
            rec.count = summary.count;
            rec.avg = summary.avg();
        }
        state.seq += 1;
        state.dirty.clear();
        FrozenTree {
            config: prev.config.clone(),
            root: tree.root_summary(),
            len: prev.len,
            chunks,
            children: Arc::clone(&prev.children),
            wide_masks: Arc::clone(&prev.wide_masks),
            mask_words: prev.mask_words,
            dims: prev.dims,
            packed_levels: prev.packed_levels,
            provenance: Provenance {
                tree_id: tree.tree_id,
                freeze_seq: state.seq,
                epoch: tree.structure_epoch,
            },
        }
    }

    /// Merges two packed snapshots into a new one without thawing either
    /// — the snapshot-level counterpart of
    /// [`MemoryLimitedQuadtree::merge_from`], for replication paths that
    /// ship [`FrozenTree`]s between processes.
    ///
    /// Structure is the union of both trees capped at `self`'s `λ`; the
    /// result keeps `self`'s configuration. Counts sum exactly. Block
    /// averages where **both** inputs hold data are reconstructed as the
    /// count-weighted mean of the two packed averages — within an ulp of
    /// the live merge (which re-derives the average from summed `S`/`C`),
    /// but not guaranteed bit-identical; nodes present on one side only
    /// are copied verbatim. Paths needing bit-exact merges must merge
    /// live trees (or snapshots restored via the envelope) and re-freeze.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] when the model spaces differ.
    pub fn merge_with(&self, other: &FrozenTree) -> Result<FrozenTree, MlqError> {
        if self.config.space != other.config.space {
            return Err(MlqError::InvalidConfig {
                reason: "cannot merge snapshots over different spaces".into(),
            });
        }
        let fanout = self.config.space.fanout();
        let mask_words = fanout.div_ceil(64);
        let lambda = self.config.lambda;
        let mut root = self.root;
        root.merge(&other.root);
        // Paired BFS: each queue entry is (node in self, node in other,
        // depth); the entry's queue index is its index in the merged slab,
        // exactly like `from_tree`'s discovery order.
        let mut queue: Vec<(Option<u32>, Option<u32>, u8)> = vec![(Some(0), Some(0), 0)];
        let mut nodes: Vec<PackedNode> =
            Vec::with_capacity(self.node_count().max(other.node_count()));
        let mut children: Vec<u32> = Vec::new();
        let mut wide_masks: Vec<u64> = Vec::new();
        let mut present_slots: Vec<usize> = Vec::with_capacity(fanout);
        let mut head = 0usize;
        while head < queue.len() {
            let (a, b, depth) = queue[head];
            head += 1;
            let (count, avg) = match (a, b) {
                (Some(ai), Some(bi)) => {
                    let na = self.node(ai);
                    let nb = other.node(bi);
                    let count = na.count + nb.count;
                    let avg = if na.count == 0 {
                        nb.avg
                    } else if nb.count == 0 {
                        na.avg
                    } else {
                        // Weighted mean of the packed averages; `S` itself
                        // is gone from the packed record, hence the ulp
                        // caveat in the doc comment.
                        na.avg.mul_add(na.count as f64, nb.avg * nb.count as f64) / count as f64
                    };
                    (count, avg)
                }
                (Some(ai), None) => {
                    let n = self.node(ai);
                    (n.count, n.avg)
                }
                (None, Some(bi)) => {
                    let n = other.node(bi);
                    (n.count, n.avg)
                }
                (None, None) => unreachable!("queue entries always reference at least one input"),
            };
            let children_base = u32::try_from(children.len()).expect("child slab fits u32");
            present_slots.clear();
            if depth < lambda {
                for slot in 0..fanout {
                    let ca = a.and_then(|i| self.child_index(&self.node(i), slot));
                    let cb = b.and_then(|i| other.child_index(&other.node(i), slot));
                    if ca.is_some() || cb.is_some() {
                        queue.push((ca, cb, depth + 1));
                        children.push(u32::try_from(queue.len() - 1).expect("indices fit u32"));
                        present_slots.push(slot);
                    }
                }
            }
            let mask = if mask_words == 1 {
                present_slots.iter().fold(0u64, |m, &s| m | 1 << s)
            } else if present_slots.is_empty() {
                WIDE_LEAF
            } else {
                let base = wide_masks.len();
                wide_masks.resize(base + mask_words, 0);
                for &s in &present_slots {
                    wide_masks[base + s / 64] |= 1 << (s % 64);
                }
                base as u64
            };
            nodes.push(PackedNode { count, avg, mask, children_base });
        }
        // A merged snapshot belongs to no live tree: tree_id 0 means it
        // can never be patched, only rebuilt.
        let provenance = Provenance { tree_id: 0, freeze_seq: 0, epoch: 0 };
        Ok(FrozenTree::assemble(self.config.clone(), root, nodes, children, wide_masks, provenance))
    }
}

impl MemoryLimitedQuadtree {
    /// Captures an immutable, `Send + Sync` prediction snapshot of the
    /// current tree (see [`FrozenTree`]). O(live nodes); the live tree is
    /// untouched and can keep learning while readers share the snapshot.
    ///
    /// The freeze is only wall-clock timed once [`Self::counters`] has
    /// been read (i.e. something observes the model's counters); an
    /// unmonitored model skips the clock calls entirely and records the
    /// freeze with zero nanoseconds.
    #[must_use]
    pub fn freeze(&self) -> FrozenTree {
        self.freeze_with(None)
    }

    /// [`Self::freeze`], patching `prev` copy-on-write when possible.
    ///
    /// When `prev` is this tree's latest snapshot and only summaries
    /// changed since (value-only updates: no split, eviction, merge, or
    /// restore), the new snapshot clones just the record chunks holding
    /// dirty nodes and shares everything else with `prev` — O(touched)
    /// instead of O(nodes). Otherwise this is exactly [`Self::freeze`].
    /// Either way the result is bit-identical to a from-scratch freeze.
    #[must_use]
    pub fn refreeze(&self, prev: &FrozenTree) -> FrozenTree {
        self.freeze_with(Some(prev))
    }

    fn freeze_with(&self, prev: Option<&FrozenTree>) -> FrozenTree {
        let build = |tree: &Self| match prev {
            Some(p) if FrozenTree::can_patch(tree, p) => FrozenTree::patched_from(tree, p),
            _ => FrozenTree::from_tree(tree),
        };
        if self.counters_observed() {
            let start = std::time::Instant::now();
            let frozen = build(self);
            self.note_freeze(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            frozen
        } else {
            let frozen = build(self);
            self.note_freeze(0);
            frozen
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{child_array_bytes, InsertionStrategy, Space, NODE_BYTES};

    fn model_d(dims: usize, budget: usize) -> MemoryLimitedQuadtree {
        let space = Space::cube(dims, 0.0, 1000.0).unwrap();
        let config = MlqConfig::builder(space)
            .memory_budget(budget)
            .strategy(InsertionStrategy::Eager)
            .build()
            .unwrap();
        MemoryLimitedQuadtree::new(config).unwrap()
    }

    fn model(budget: usize) -> MemoryLimitedQuadtree {
        model_d(2, budget)
    }

    fn spread_points(m: &mut MemoryLimitedQuadtree, n: u32) {
        let dims = m.config().space.dims();
        for i in 0..n {
            let p: Vec<f64> =
                (0..dims).map(|d| f64::from(i.wrapping_mul(97 + d as u32 * 31) % 1000)).collect();
            m.insert(&p, f64::from(i % 13)).unwrap();
        }
    }

    /// Asserts the two snapshots are bit-identical in content: same
    /// records, same structure, same root summary.
    fn assert_bit_identical(a: &FrozenTree, b: &FrozenTree) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.root_summary(), b.root_summary());
        let fanout = a.config().space.fanout();
        for node in 0..a.node_count() {
            let (ca, va) = a.node_stats(node);
            let (cb, vb) = b.node_stats(node);
            assert_eq!(ca, cb, "count at node {node}");
            assert_eq!(va.to_bits(), vb.to_bits(), "avg bits at node {node}");
            for slot in 0..fanout {
                assert_eq!(a.child_of(node, slot), b.child_of(node, slot), "child at {node}");
            }
        }
    }

    #[test]
    fn frozen_tree_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenTree>();
    }

    #[test]
    fn empty_freeze_predicts_none() {
        let f = model(4096).freeze();
        assert!(f.is_empty());
        assert_eq!(f.node_count(), 1);
        assert_eq!(f.predict(&[1.0, 2.0]).unwrap(), None);
        assert_eq!(f.predict_batch(&[vec![1.0, 2.0], vec![9.0, 9.0]]).unwrap(), vec![None, None]);
    }

    #[test]
    fn root_only_tree_predicts_root_average_everywhere() {
        // A tree whose root holds data but never split (as a restored
        // summary-only model would look): every query answers root avg.
        let mut m = model(1 << 16);
        m.arena.get_mut(m.root).summary.add(4.0);
        m.arena.get_mut(m.root).summary.add(8.0);
        let f = m.freeze();
        assert_eq!(f.node_count(), 1);
        assert_eq!(f.predict(&[500.0, 1.0]).unwrap(), Some(6.0));
        assert_eq!(f.predict(&[0.0, 999.0]).unwrap(), Some(6.0));
        assert_eq!(f.predict_with_beta(&[7.0, 7.0], 1).unwrap(), Some(6.0));
    }

    #[test]
    fn beta_above_every_count_falls_back_to_root() {
        let mut m = model(1 << 16);
        spread_points(&mut m, 50);
        let f = m.freeze();
        let root_avg = f.root_summary().avg();
        for q in [[1.0, 1.0], [999.0, 999.0], [123.0, 456.0]] {
            assert_eq!(f.predict_with_beta(&q, u64::MAX).unwrap(), Some(root_avg));
            assert_eq!(
                f.predict_with_beta(&q, u64::MAX).unwrap(),
                m.predict_with_beta(&q, u64::MAX).unwrap()
            );
        }
    }

    #[test]
    fn freeze_matches_live_predictions_everywhere() {
        let mut m = model(4096);
        spread_points(&mut m, 500);
        let f = m.freeze();
        assert_eq!(f.node_count(), m.node_count());
        assert_eq!(f.root_summary(), m.root_summary());
        for i in 0..300u32 {
            let p = [f64::from(i * 37 % 1009) % 1000.0, f64::from(i * 11 % 997) % 1000.0];
            assert_eq!(f.predict(&p).unwrap(), m.predict(&p).unwrap(), "point {p:?}");
        }
        // Explicit-beta predictions agree as well.
        for beta in [1, 2, 8, 99] {
            assert_eq!(
                f.predict_with_beta(&[123.0, 456.0], beta).unwrap(),
                m.predict_with_beta(&[123.0, 456.0], beta).unwrap()
            );
        }
    }

    #[test]
    fn predict_batch_matches_single_calls() {
        let mut m = model(1 << 14);
        spread_points(&mut m, 300);
        let f = m.freeze();
        let queries: Vec<Vec<f64>> = (0..200u32)
            .map(|i| vec![f64::from(i * 37 % 1009) % 1000.0, f64::from(i * 11 % 997) % 1000.0])
            .collect();
        let batch = f.predict_batch(&queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(*b, f.predict(q).unwrap(), "point {q:?}");
        }
        // The reusable-buffer form agrees and clears stale contents.
        let mut out = vec![Some(f64::NAN); 3];
        f.predict_batch_into(&queries, &mut out).unwrap();
        assert_eq!(out, batch);
    }

    #[test]
    fn planned_batches_are_reusable_across_trees() {
        // One plan over the space drives two different trees, and partial
        // waves (len not a multiple of LANES) retire correctly.
        let mut a = model(1 << 14);
        let mut b = model(1 << 14);
        spread_points(&mut a, 300);
        spread_points(&mut b, 77);
        let (fa, fb) = (a.freeze(), b.freeze());
        let queries: Vec<Vec<f64>> = (0..(LANES * 3 + 5) as u32)
            .map(|i| vec![f64::from(i * 37 % 1009) % 1000.0, f64::from(i * 11 % 997) % 1000.0])
            .collect();
        let mut plan = BatchPlan::new();
        plan.prepare(&fa.config().space, fa.packed_levels(), &queries).unwrap();
        assert_eq!(plan.len(), queries.len());
        assert!(!plan.is_empty());
        assert!(plan.levels() > 0);
        let mut out = vec![Some(f64::NAN)];
        for f in [&fa, &fb] {
            f.predict_planned_into(&plan, &mut out);
            assert_eq!(out.len(), queries.len());
            for (q, got) in queries.iter().zip(&out) {
                assert_eq!(*got, f.predict(q).unwrap(), "point {q:?}");
            }
        }
    }

    #[test]
    fn predict_batch_fails_fast_on_malformed_points() {
        let mut m = model(1 << 14);
        spread_points(&mut m, 50);
        let f = m.freeze();
        let mut out = Vec::new();
        let bad = [vec![1.0, 1.0], vec![f64::NAN, 2.0]];
        assert!(f.predict_batch_into(&bad, &mut out).is_err());
        assert!(out.is_empty(), "no partial results on a failed batch");
        let wrong_dims = [vec![1.0, 1.0], vec![3.0]];
        assert!(f.predict_batch(&wrong_dims).is_err());
    }

    #[test]
    fn freeze_is_isolated_from_later_inserts() {
        let mut m = model(1 << 16);
        m.insert(&[10.0, 10.0], 5.0).unwrap();
        let f = m.freeze();
        m.insert(&[10.0, 10.0], 105.0).unwrap();
        // The live tree moved; the snapshot did not.
        assert_eq!(f.predict(&[10.0, 10.0]).unwrap(), Some(5.0));
        assert_eq!(m.predict(&[10.0, 10.0]).unwrap(), Some(55.0));
    }

    #[test]
    fn freeze_clamps_out_of_range_queries() {
        let mut m = model(1 << 16);
        m.insert(&[0.0, 1000.0], 9.0).unwrap();
        let f = m.freeze();
        assert_eq!(f.predict(&[-50.0, 2000.0]).unwrap(), Some(9.0));
        assert_eq!(f.predict_batch(&[vec![-50.0, 2000.0]]).unwrap(), vec![Some(9.0)]);
        assert!(f.predict(&[1.0],).is_err());
        assert!(f.predict(&[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn repeated_freezes_reuse_scratch_and_stay_equivalent() {
        let mut m = model(1 << 14);
        for round in 0..5u32 {
            spread_points(&mut m, 100 + round * 17);
            let f = m.freeze();
            assert_eq!(f.node_count(), m.node_count(), "round {round}");
            let q = [f64::from(round * 31 % 1000), 77.0];
            assert_eq!(f.predict(&q).unwrap(), m.predict(&q).unwrap());
        }
        assert_eq!(m.counters().freezes, 5);
    }

    #[test]
    fn unobserved_freeze_skips_timing_observed_freeze_may_record_it() {
        let mut m = model(1 << 16);
        spread_points(&mut m, 200);
        let _ = m.freeze(); // nobody has read counters yet
        let c = m.counters(); // this read turns observation on
        assert_eq!(c.freezes, 1);
        assert_eq!(c.freeze_nanos, 0, "unobserved freeze must not be timed");
        let _ = m.freeze();
        assert_eq!(m.counters().freezes, 2);
    }

    #[test]
    fn refreeze_patches_value_only_updates_bit_identically() {
        let mut m = model(1 << 18);
        spread_points(&mut m, 600);
        let prev = m.freeze();
        // Re-inserting already-mapped points updates summaries along
        // existing paths only — no structural change.
        let p = [97.0 % 1000.0, 128.0];
        m.insert(&p, 42.0).unwrap();
        m.insert(&p, 7.0).unwrap();
        let patched = m.refreeze(&prev);
        let fresh = FrozenTree::from_tree(&m);
        assert_bit_identical(&patched, &fresh);
        // The patch really was copy-on-write: only the touched path's
        // chunks were cloned, everything else is shared with `prev`.
        assert!(patched.chunks.len() > 1, "test needs a multi-chunk tree");
        assert!(patched.shared_chunks(&prev) > 0, "untouched chunks must be shared");
        assert_eq!(fresh.shared_chunks(&prev), 0, "full freezes share nothing");
        // And the republished snapshot serves the new values.
        assert_eq!(patched.predict(&p).unwrap(), m.predict(&p).unwrap());
    }

    #[test]
    fn refreeze_after_structural_change_falls_back_to_full_freeze() {
        let mut m = model(1 << 18);
        spread_points(&mut m, 200);
        let prev = m.freeze();
        // A point in fresh territory splits new nodes: structure changed.
        m.insert(&[431.5, 997.25], 3.0).unwrap();
        let refrozen = m.refreeze(&prev);
        assert_bit_identical(&refrozen, &FrozenTree::from_tree(&m));
        assert_eq!(refrozen.node_count(), m.node_count());
    }

    #[test]
    fn refreeze_with_foreign_or_stale_snapshot_falls_back() {
        let mut m = model(1 << 18);
        let mut other = model(1 << 18);
        spread_points(&mut m, 150);
        spread_points(&mut other, 150);
        let foreign = other.freeze();
        // A snapshot from another tree never patches.
        let got = m.refreeze(&foreign);
        assert_bit_identical(&got, &FrozenTree::from_tree(&m));
        // A stale snapshot (superseded by a later freeze) never patches:
        // its dirty log no longer describes the difference.
        let old = m.freeze();
        m.insert(&[97.0, 128.0], 1.0).unwrap();
        let _newer = m.freeze();
        m.insert(&[97.0, 128.0], 2.0).unwrap();
        let got = m.refreeze(&old);
        assert_bit_identical(&got, &FrozenTree::from_tree(&m));
    }

    #[test]
    fn refreeze_after_dirty_log_overflow_falls_back() {
        let mut m = model(1 << 18);
        spread_points(&mut m, 300);
        let prev = m.freeze();
        // Re-insert the same stream twice: value-only updates, but far
        // more path touches than the dirty log holds.
        spread_points(&mut m, 300);
        spread_points(&mut m, 300);
        let refrozen = m.refreeze(&prev);
        assert_bit_identical(&refrozen, &FrozenTree::from_tree(&m));
    }

    #[test]
    fn packed_layout_is_smaller_than_boxed_slot_arrays() {
        // The old frozen layout carried, per node, the full summary plus
        // an Option'd boxed `2^d`-slot child array on every internal
        // node; `NODE_BYTES`/`child_array_bytes` is the same accounting
        // the live tree charges itself. The packed layout must beat it
        // for every d ≥ 2, and the win must grow with d as the slot
        // arrays fill up with NIL padding.
        let mut last_ratio = f64::MAX;
        for dims in [2usize, 3, 4] {
            let mut m = model_d(dims, 1 << 16);
            spread_points(&mut m, 600);
            let f = m.freeze();
            let internal = m.nodes().iter().filter(|n| n.n_children > 0).count();
            let boxed_layout = f.node_count() * NODE_BYTES + internal * child_array_bytes(dims);
            assert!(
                f.bytes() < boxed_layout,
                "d={dims}: packed {} must beat boxed {}",
                f.bytes(),
                boxed_layout
            );
            let ratio = f.bytes() as f64 / boxed_layout as f64;
            assert!(ratio < last_ratio, "packing must pay more as d grows");
            last_ratio = ratio;
        }
    }

    #[test]
    fn high_dimension_wide_masks_stay_equivalent() {
        // d = 7 → fanout 128: the inline 64-bit mask no longer fits and
        // the wide-mask slab takes over. Same semantics, still far
        // smaller than 128 boxed slots per internal node.
        let mut m = model_d(7, 1 << 18);
        let pts: Vec<Vec<f64>> = (0..120u32)
            .map(|i| (0..7).map(|d| f64::from(i.wrapping_mul(89 + d) % 1000)).collect())
            .collect();
        for (i, p) in pts.iter().enumerate() {
            m.insert(p, (i % 11) as f64).unwrap();
        }
        let f = m.freeze();
        assert_eq!(f.node_count(), m.node_count());
        for p in &pts {
            assert_eq!(f.predict(p).unwrap(), m.predict(p).unwrap(), "point {p:?}");
            for beta in [1, 3, 50] {
                assert_eq!(
                    f.predict_with_beta(p, beta).unwrap(),
                    m.predict_with_beta(p, beta).unwrap()
                );
            }
        }
        // The batch kernel's wide fallback agrees with scalar descents.
        let batch = f.predict_batch(&pts).unwrap();
        for (p, got) in pts.iter().zip(&batch) {
            assert_eq!(*got, f.predict(p).unwrap());
        }
        let internal = m.nodes().iter().filter(|n| n.n_children > 0).count();
        let boxed_layout = f.node_count() * NODE_BYTES + internal * child_array_bytes(7);
        assert!(f.bytes() < boxed_layout);
    }

    #[test]
    fn structure_accessors_expose_the_tree_shape() {
        let mut m = model(1 << 16);
        m.insert(&[1.0, 1.0], 5.0).unwrap();
        let f = m.freeze();
        let (count, avg) = f.node_stats(0);
        assert_eq!(count, 1);
        assert!((avg - 5.0).abs() < 1e-12);
        // [1,1] lives in the low quadrant at every level: slot 0 chains.
        let child = f.child_of(0, 0).expect("root has a low-quadrant child");
        assert!(f.child_of(0, 1).is_none());
        assert_eq!(f.node_stats(child).0, 1);
    }

    fn assert_trees_close(merged: &FrozenTree, reference: &FrozenTree) {
        assert_eq!(merged.node_count(), reference.node_count());
        assert_eq!(merged.root_summary().count, reference.root_summary().count);
        for node in 0..merged.node_count() {
            let (mc, ma) = merged.node_stats(node);
            let (rc, ra) = reference.node_stats(node);
            assert_eq!(mc, rc, "count at node {node}");
            let scale = ra.abs().max(1.0);
            assert!((ma - ra).abs() <= 1e-12 * scale, "avg at node {node}: {ma} vs {ra}");
        }
    }

    #[test]
    fn packed_merge_matches_live_merge() {
        let mut a = model(1 << 18);
        let mut b = model(1 << 18);
        spread_points(&mut a, 240);
        let dims = b.config().space.dims();
        for i in 0..200u32 {
            let p: Vec<f64> =
                (0..dims).map(|d| f64::from(i.wrapping_mul(53 + d as u32 * 17) % 1000)).collect();
            b.insert(&p, f64::from(i % 9)).unwrap();
        }
        let merged = a.freeze().merge_with(&b.freeze()).unwrap();
        a.merge_from(&b).unwrap();
        let reference = a.freeze();
        assert_trees_close(&merged, &reference);
        for i in 0..200u32 {
            let q = [f64::from(i * 37 % 1009) % 1000.0, f64::from(i * 11 % 997) % 1000.0];
            let got = merged.predict(&q).unwrap().unwrap();
            let want = reference.predict(&q).unwrap().unwrap();
            assert!((got - want).abs() <= 1e-12 * want.abs().max(1.0), "point {q:?}");
        }
    }

    #[test]
    fn packed_merge_with_empty_is_verbatim() {
        let mut a = model(1 << 16);
        spread_points(&mut a, 150);
        let frozen = a.freeze();
        let empty = model(1 << 16).freeze();
        // One-sided nodes are copied bit-for-bit, both directions.
        for merged in [frozen.merge_with(&empty).unwrap(), empty.merge_with(&frozen).unwrap()] {
            assert_eq!(merged.node_count(), frozen.node_count());
            for node in 0..merged.node_count() {
                let (mc, ma) = merged.node_stats(node);
                let (fc, fa) = frozen.node_stats(node);
                assert_eq!(mc, fc);
                assert_eq!(ma.to_bits(), fa.to_bits(), "node {node} avg must copy verbatim");
            }
        }
    }

    #[test]
    fn packed_merge_caps_at_own_lambda_without_losing_counts() {
        let space = Space::cube(2, 0.0, 1000.0).unwrap();
        let shallow_cfg = MlqConfig::builder(space)
            .memory_budget(1 << 16)
            .strategy(InsertionStrategy::Eager)
            .lambda(2)
            .build()
            .unwrap();
        let shallow = MemoryLimitedQuadtree::new(shallow_cfg).unwrap().freeze();
        let mut deep = model(1 << 16); // λ = 6
        spread_points(&mut deep, 200);
        let merged = shallow.merge_with(&deep.freeze()).unwrap();
        assert_eq!(merged.root_summary().count, 200);
        assert_eq!(merged.config().lambda, 2);
        // No node sits deeper than λ: a 3-level descent from the root
        // must terminate.
        fn max_depth(t: &FrozenTree, node: usize) -> usize {
            (0..t.config().space.fanout())
                .filter_map(|s| t.child_of(node, s))
                .map(|c| 1 + max_depth(t, c))
                .max()
                .unwrap_or(0)
        }
        assert!(max_depth(&merged, 0) <= 2);
    }

    #[test]
    fn packed_merge_rejects_mismatched_spaces() {
        let a = model(1 << 16).freeze();
        let other_space = Space::cube(2, 0.0, 500.0).unwrap();
        let cfg = MlqConfig::builder(other_space).memory_budget(1 << 16).build().unwrap();
        let b = MemoryLimitedQuadtree::new(cfg).unwrap().freeze();
        assert!(a.merge_with(&b).is_err());
    }

    #[test]
    fn packed_merge_handles_wide_masks() {
        // d = 7 → fanout 128 exercises the wide-mask slab in the merged
        // snapshot as well.
        let mut a = model_d(7, 1 << 22);
        let mut b = model_d(7, 1 << 22);
        for i in 0..80u32 {
            let pa: Vec<f64> = (0..7).map(|d| f64::from(i.wrapping_mul(89 + d) % 1000)).collect();
            let pb: Vec<f64> = (0..7).map(|d| f64::from(i.wrapping_mul(131 + d) % 1000)).collect();
            a.insert(&pa, f64::from(i % 11)).unwrap();
            b.insert(&pb, f64::from(i % 5)).unwrap();
        }
        let merged = a.freeze().merge_with(&b.freeze()).unwrap();
        a.merge_from(&b).unwrap();
        assert_trees_close(&merged, &a.freeze());
    }

    #[test]
    fn clone_of_live_tree_diverges_independently() {
        let mut a = model(1 << 16);
        a.insert(&[10.0, 10.0], 5.0).unwrap();
        let mut b = a.clone();
        b.insert(&[10.0, 10.0], 105.0).unwrap();
        assert_eq!(a.predict(&[10.0, 10.0]).unwrap(), Some(5.0));
        assert_eq!(b.predict(&[10.0, 10.0]).unwrap(), Some(55.0));
    }

    #[test]
    fn cloned_live_trees_refreeze_soundly() {
        // `Clone` copies the freeze state and dirty log along with the
        // arena, so a clone patching a pre-clone snapshot is still exact.
        let mut a = model(1 << 18);
        spread_points(&mut a, 200);
        let prev = a.freeze();
        let mut b = a.clone();
        b.insert(&[97.0, 128.0], 9.0).unwrap(); // existing path: value-only
        let patched = b.refreeze(&prev);
        assert_bit_identical(&patched, &FrozenTree::from_tree(&b));
        // The original tree is unaffected and patches independently.
        a.insert(&[97.0, 128.0], 4.0).unwrap();
        let patched_a = a.refreeze(&prev);
        assert_bit_identical(&patched_a, &FrozenTree::from_tree(&a));
    }
}
