//! Merging two quadtrees.
//!
//! Summaries are additive (`S`, `C`, `SS` all sum), so two models trained
//! on disjoint observation streams merge exactly: the merged tree is
//! identical in content to one trained on the concatenated stream routed
//! through the union of both structures. This enables sharded training —
//! e.g. per-connection cost models folded into a shared catalog model —
//! which the paper does not discuss but its data structure supports for
//! free.
//!
//! Structure is the union of both trees (capped at the destination's
//! `λ`); if the union exceeds the destination's byte budget, a standard
//! compression pass (paper Fig. 6) brings it back.

use crate::compress::CompressionReport;
use crate::config::{InsertionStrategy, MlqConfig};
use crate::error::MlqError;
use crate::node::NIL;
use crate::tree::MemoryLimitedQuadtree;

impl MemoryLimitedQuadtree {
    /// Folds `other`'s observations into `self`.
    ///
    /// Requirements: identical model spaces (the partitioning must line
    /// up). `other`'s nodes deeper than `self`'s `λ` are skipped — their
    /// points remain counted in every surviving ancestor, so no
    /// observation is lost, only resolution.
    ///
    /// Returns the compression report if the merged tree had to be
    /// shrunk back under budget.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] when the spaces differ.
    pub fn merge_from(
        &mut self,
        other: &MemoryLimitedQuadtree,
    ) -> Result<Option<CompressionReport>, MlqError> {
        if self.config().space != other.config().space {
            return Err(MlqError::InvalidConfig {
                reason: "cannot merge models over different spaces".into(),
            });
        }
        let lambda = self.config().lambda;
        // A merge rewrites summaries across the whole tree without going
        // through the insert path's dirty log, so any outstanding frozen
        // snapshot can no longer be patched incrementally.
        self.bump_structure_epoch();
        // Walk `other` pre-order, tracking the corresponding node in
        // `self` (created on demand).
        let mut stack: Vec<(u32, u32)> = vec![(other.root, self.root)];
        while let Some((theirs, ours)) = stack.pop() {
            let their_node = other.arena.get(theirs);
            self.arena.get_mut(ours).summary.merge(&their_node.summary);
            if their_node.depth >= lambda {
                continue; // children would exceed our depth cap
            }
            if let Some(children) = &their_node.children {
                for (slot, &child) in children.iter().enumerate() {
                    if child == NIL {
                        continue;
                    }
                    let our_child = match self.arena.get(ours).child(slot) {
                        Some(c) => c,
                        None => self.materialize_child(ours, slot),
                    };
                    stack.push((child, our_child));
                }
            }
        }
        let report = if self.bytes_used() > self.config().memory_budget {
            Some(self.compress())
        } else {
            None
        };
        Ok(report)
    }
}

/// Records, into a shadow tree, every observation a tracked model absorbed
/// since the last [`DeltaTracker::take`] — the "delta since last sync" a
/// replication layer extracts and folds into peer replicas.
///
/// The shadow tree always uses [`InsertionStrategy::Eager`] so an
/// observation descends to full depth regardless of insertion order or
/// compression history; two deltas over the same stream partition are
/// therefore structurally identical no matter how the stream interleaved.
/// Values recorded into a delta are exact sums, so folding deltas with
/// [`MemoryLimitedQuadtree::merge_from`] reproduces the union stream
/// bit-for-bit as long as no compression ran (generous budgets).
#[derive(Debug, Clone)]
pub struct DeltaTracker {
    tree: MemoryLimitedQuadtree,
    observations: u64,
    compressions: u64,
}

impl DeltaTracker {
    /// Builds a tracker whose shadow tree mirrors `model`'s space, depth
    /// cap, and β, with its own byte budget (floored at the structural
    /// minimum for the space).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the shadow-tree builder.
    pub fn for_model(model: &MemoryLimitedQuadtree, budget: usize) -> Result<Self, MlqError> {
        let cfg = model.config();
        let floor = MlqConfig::min_budget(&cfg.space, cfg.lambda);
        let config = MlqConfig::builder(cfg.space.clone())
            .memory_budget(budget.max(floor))
            .strategy(InsertionStrategy::Eager)
            .lambda(cfg.lambda)
            .beta(cfg.beta)
            .build()?;
        Ok(DeltaTracker {
            tree: MemoryLimitedQuadtree::new(config)?,
            observations: 0,
            compressions: 0,
        })
    }

    /// Records one absorbed observation.
    ///
    /// # Errors
    ///
    /// Propagates malformed-point errors from the shadow tree (callers
    /// recording points the tracked model already accepted will not see
    /// these).
    pub fn record(&mut self, point: &[f64], value: f64) -> Result<(), MlqError> {
        let outcome = self.tree.insert(point, value)?;
        self.observations += 1;
        if outcome.compression.is_some() {
            self.compressions += 1;
        }
        Ok(())
    }

    /// Observations recorded since the last [`Self::take`].
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Compression passes the shadow tree ran since the last
    /// [`Self::take`]. Nonzero means the delta is an aggregated (still
    /// statistically exact, but coarser) view of the pending stream, and
    /// bit-exact merge equivalence no longer holds.
    #[must_use]
    pub fn compressions(&self) -> u64 {
        self.compressions
    }

    /// True when nothing was recorded since the last [`Self::take`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.observations == 0
    }

    /// The pending delta as a tree, without resetting the tracker.
    #[must_use]
    pub fn tree(&self) -> &MemoryLimitedQuadtree {
        &self.tree
    }

    /// Extracts the pending delta, leaving the tracker empty. Returns the
    /// delta tree together with the number of observations it holds.
    ///
    /// # Errors
    ///
    /// Propagates construction errors for the fresh shadow tree (cannot
    /// fail for a config that already built once).
    pub fn take(&mut self) -> Result<(MemoryLimitedQuadtree, u64), MlqError> {
        let fresh = MemoryLimitedQuadtree::new(self.tree.config().clone())?;
        let taken = std::mem::replace(&mut self.tree, fresh);
        let observations = self.observations;
        self.observations = 0;
        self.compressions = 0;
        Ok((taken, observations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InsertionStrategy, MlqConfig, Space};

    fn model(budget: usize, lambda: u8) -> MemoryLimitedQuadtree {
        let config = MlqConfig::builder(Space::cube(2, 0.0, 1000.0).unwrap())
            .memory_budget(budget)
            .strategy(InsertionStrategy::Eager)
            .lambda(lambda)
            .build()
            .unwrap();
        MemoryLimitedQuadtree::new(config).unwrap()
    }

    fn shard_a() -> Vec<(Vec<f64>, f64)> {
        (0..150u32)
            .map(|i| (vec![f64::from(i * 7 % 1000), f64::from(i * 13 % 1000)], f64::from(i % 11)))
            .collect()
    }

    fn shard_b() -> Vec<(Vec<f64>, f64)> {
        (0..150u32)
            .map(|i| (vec![f64::from(i * 17 % 1000), f64::from(i * 29 % 1000)], f64::from(i % 7)))
            .collect()
    }

    #[test]
    fn merge_equals_sequential_training() {
        // Train a and b on two shards, merge; compare with one model that
        // saw both shards. Large budgets so no compression interferes.
        let mut a = model(1 << 20, 6);
        let mut b = model(1 << 20, 6);
        let mut whole = model(1 << 20, 6);
        for (p, v) in shard_a() {
            a.insert(&p, v).unwrap();
            whole.insert(&p, v).unwrap();
        }
        for (p, v) in shard_b() {
            b.insert(&p, v).unwrap();
            whole.insert(&p, v).unwrap();
        }
        let report = a.merge_from(&b).unwrap();
        assert!(report.is_none(), "no compression needed at this budget");
        a.check_invariants().unwrap();
        assert_eq!(a.root_summary(), whole.root_summary());
        assert_eq!(a.node_count(), whole.node_count());
        for i in 0..200u32 {
            let p = [f64::from(i * 3 % 1000), f64::from(i * 5 % 1000)];
            assert_eq!(a.predict(&p).unwrap(), whole.predict(&p).unwrap());
        }
    }

    #[test]
    fn merge_over_budget_compresses() {
        let mut a = model(1200, 6);
        let mut b = model(1200, 6);
        for (p, v) in shard_a() {
            a.insert(&p, v).unwrap();
        }
        for (p, v) in shard_b() {
            b.insert(&p, v).unwrap();
        }
        let report = a.merge_from(&b).unwrap();
        assert!(report.is_some(), "tight budget forces compression");
        assert!(a.bytes_used() <= a.memory_budget());
        a.check_invariants().unwrap();
        assert_eq!(a.root_summary().count, 300);
    }

    #[test]
    fn merge_caps_at_destination_lambda() {
        let mut shallow = model(1 << 20, 2);
        let mut deep = model(1 << 20, 6);
        for (p, v) in shard_a() {
            deep.insert(&p, v).unwrap();
        }
        shallow.merge_from(&deep).unwrap();
        shallow.check_invariants().unwrap();
        assert!(shallow.max_depth() <= 2);
        // No observations lost: counts match.
        assert_eq!(shallow.root_summary().count, deep.root_summary().count);
    }

    #[test]
    fn merge_rejects_mismatched_spaces() {
        let mut a = model(4096, 6);
        let config = MlqConfig::builder(Space::cube(2, 0.0, 500.0).unwrap())
            .memory_budget(4096)
            .build()
            .unwrap();
        let b = MemoryLimitedQuadtree::new(config).unwrap();
        assert!(a.merge_from(&b).is_err());
    }

    #[test]
    fn merging_empty_model_is_identity() {
        let mut a = model(1 << 16, 6);
        for (p, v) in shard_a() {
            a.insert(&p, v).unwrap();
        }
        let before_nodes = a.node_count();
        let before_root = a.root_summary();
        let empty = model(1 << 16, 6);
        a.merge_from(&empty).unwrap();
        assert_eq!(a.node_count(), before_nodes);
        assert_eq!(a.root_summary(), before_root);
    }

    #[test]
    fn delta_tracker_reproduces_recorded_stream() {
        let tracked = model(1 << 20, 6);
        let mut tracker = DeltaTracker::for_model(&tracked, 1 << 20).unwrap();
        let mut reference = model(1 << 20, 6);
        for (p, v) in shard_a() {
            tracker.record(&p, v).unwrap();
            reference.insert(&p, v).unwrap();
        }
        assert_eq!(tracker.observations(), 150);
        assert_eq!(tracker.compressions(), 0);
        assert!(!tracker.is_empty());
        let (delta, n) = tracker.take().unwrap();
        assert_eq!(n, 150);
        assert!(tracker.is_empty());
        assert_eq!(tracker.tree().root_summary().count, 0);
        assert_eq!(delta.root_summary(), reference.root_summary());
        assert_eq!(delta.node_count(), reference.node_count());
        for i in 0..100u32 {
            let p = [f64::from(i * 3 % 1000), f64::from(i * 5 % 1000)];
            assert_eq!(delta.predict(&p).unwrap(), reference.predict(&p).unwrap());
        }
    }

    #[test]
    fn delta_tracker_take_resets_and_accumulates_fresh() {
        let tracked = model(1 << 20, 6);
        let mut tracker = DeltaTracker::for_model(&tracked, 1 << 20).unwrap();
        for (p, v) in shard_a() {
            tracker.record(&p, v).unwrap();
        }
        tracker.take().unwrap();
        for (p, v) in shard_b() {
            tracker.record(&p, v).unwrap();
        }
        let (delta, n) = tracker.take().unwrap();
        assert_eq!(n, 150);
        let mut b_only = model(1 << 20, 6);
        for (p, v) in shard_b() {
            b_only.insert(&p, v).unwrap();
        }
        assert_eq!(delta.root_summary(), b_only.root_summary());
        assert_eq!(delta.node_count(), b_only.node_count());
    }
}
