//! A trivial reference model predicting the running global average.
//!
//! Not part of the paper — used by the experiment harness as a sanity
//! floor: any real cost model must beat it wherever the cost surface has
//! structure.

use mlq_core::{CostModel, MlqError, Space, Summary, TrainableModel};
use serde::{Deserialize, Serialize};

/// Predicts the average of every cost observed so far (self-tuning in the
/// most degenerate way possible).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalAverage {
    space: Space,
    summary: Summary,
}

impl GlobalAverage {
    /// Creates an empty model over `space`.
    #[must_use]
    pub fn new(space: Space) -> Self {
        GlobalAverage { space, summary: Summary::empty() }
    }

    fn check(&self, point: &[f64]) -> Result<(), MlqError> {
        // Reuse Space validation (dimension and finiteness checks).
        self.space.grid_point(point).map(|_| ())
    }
}

impl CostModel for GlobalAverage {
    fn predict(&self, point: &[f64]) -> Result<Option<f64>, MlqError> {
        self.check(point)?;
        Ok((self.summary.count > 0).then(|| self.summary.avg()))
    }

    fn observe(&mut self, point: &[f64], actual: f64) -> Result<(), MlqError> {
        self.check(point)?;
        if !actual.is_finite() {
            return Err(MlqError::NonFiniteValue { context: "cost value" });
        }
        self.summary.add(actual);
        Ok(())
    }

    fn memory_used(&self) -> usize {
        std::mem::size_of::<Summary>()
    }

    fn name(&self) -> String {
        "GLOBAL-AVG".to_string()
    }
}

impl TrainableModel for GlobalAverage {
    fn fit(&mut self, data: &[(Vec<f64>, f64)]) -> Result<(), MlqError> {
        self.summary = Summary::empty();
        for (point, value) in data {
            self.observe(point, *value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_everything() {
        let mut m = GlobalAverage::new(Space::unit(2).unwrap());
        assert_eq!(m.predict(&[0.5, 0.5]).unwrap(), None);
        m.observe(&[0.1, 0.1], 10.0).unwrap();
        m.observe(&[0.9, 0.9], 20.0).unwrap();
        assert_eq!(m.predict(&[0.5, 0.5]).unwrap(), Some(15.0));
        assert_eq!(m.predict(&[0.0, 0.0]).unwrap(), Some(15.0));
    }

    #[test]
    fn fit_replaces_state() {
        let mut m = GlobalAverage::new(Space::unit(1).unwrap());
        m.observe(&[0.5], 100.0).unwrap();
        m.fit(&[(vec![0.1], 2.0), (vec![0.2], 4.0)]).unwrap();
        assert_eq!(m.predict(&[0.9]).unwrap(), Some(3.0));
    }

    #[test]
    fn validates_inputs() {
        let mut m = GlobalAverage::new(Space::unit(2).unwrap());
        assert!(m.observe(&[0.1], 1.0).is_err());
        assert!(m.observe(&[0.1, 0.2], f64::NAN).is_err());
        assert!(m.predict(&[f64::NAN, 0.0]).is_err());
    }
}
