//! SH-W: the equi-width static histogram.
//!
//! "In the equi-width histogram method, each dimension is divided into `N`
//! intervals of equal length. Then, `N^d` buckets are created, where `d` is
//! the number of dimensions." (paper §2.1)

use crate::grid::{max_intervals_for_budget, BucketGrid};
use mlq_core::{CostModel, MlqError, Space, TrainableModel};
use serde::{Deserialize, Serialize};

/// The equi-width static histogram cost model (paper "SH-W").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquiWidthHistogram {
    space: Space,
    grid: BucketGrid,
}

impl EquiWidthHistogram {
    /// Builds an untrained histogram with the largest per-dimension
    /// interval count that fits `budget` bytes — the memory-fair way the
    /// paper sizes SH against MLQ.
    ///
    /// # Errors
    ///
    /// [`MlqError::BudgetTooSmall`] when a single bucket does not fit.
    pub fn with_budget(space: Space, budget: usize) -> Result<Self, MlqError> {
        let n = max_intervals_for_budget(&space, budget, false)?;
        Ok(Self::with_intervals(space, n))
    }

    /// Builds an untrained histogram with exactly `intervals` cells per
    /// dimension.
    ///
    /// # Panics
    ///
    /// Panics if `intervals == 0` or `intervals^d` overflows.
    #[must_use]
    pub fn with_intervals(space: Space, intervals: usize) -> Self {
        let grid = BucketGrid::new(space.dims(), intervals);
        EquiWidthHistogram { space, grid }
    }

    /// Per-dimension interval count.
    #[must_use]
    pub fn intervals(&self) -> usize {
        self.grid.intervals()
    }

    /// The model space.
    #[must_use]
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// Number of training points absorbed by `fit`.
    #[must_use]
    pub fn trained_points(&self) -> u64 {
        self.grid.total_count()
    }

    fn bucket_of(&self, point: &[f64]) -> Result<usize, MlqError> {
        if point.len() != self.space.dims() {
            return Err(MlqError::DimensionMismatch {
                expected: self.space.dims(),
                got: point.len(),
            });
        }
        let n = self.grid.intervals();
        let mut per_dim = [0usize; mlq_core::MAX_DIMS];
        for (i, &x) in point.iter().enumerate() {
            if !x.is_finite() {
                return Err(MlqError::NonFiniteValue { context: "point coordinate" });
            }
            let lo = self.space.low(i);
            let hi = self.space.high(i);
            let unit = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
            per_dim[i] = ((unit * n as f64) as usize).min(n - 1);
        }
        Ok(self.grid.flat_index(&per_dim[..self.space.dims()]))
    }
}

impl CostModel for EquiWidthHistogram {
    fn predict(&self, point: &[f64]) -> Result<Option<f64>, MlqError> {
        Ok(self.grid.predict(self.bucket_of(point)?))
    }

    /// Static model: the observation is validated, then ignored (the
    /// paper's central criticism of SH).
    fn observe(&mut self, point: &[f64], actual: f64) -> Result<(), MlqError> {
        self.bucket_of(point)?;
        if !actual.is_finite() {
            return Err(MlqError::NonFiniteValue { context: "cost value" });
        }
        Ok(())
    }

    fn memory_used(&self) -> usize {
        self.grid.bucket_bytes()
    }

    fn name(&self) -> String {
        "SH-W".to_string()
    }
}

impl TrainableModel for EquiWidthHistogram {
    fn fit(&mut self, data: &[(Vec<f64>, f64)]) -> Result<(), MlqError> {
        self.grid.clear();
        for (point, value) in data {
            if !value.is_finite() {
                return Err(MlqError::NonFiniteValue { context: "training cost value" });
            }
            let flat = self.bucket_of(point)?;
            self.grid.add(flat, *value);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Space {
        Space::cube(2, 0.0, 100.0).unwrap()
    }

    #[test]
    fn untrained_histogram_predicts_none() {
        let h = EquiWidthHistogram::with_intervals(space(), 4);
        assert_eq!(h.predict(&[1.0, 1.0]).unwrap(), None);
    }

    #[test]
    fn fit_then_predict_bucket_averages() {
        let mut h = EquiWidthHistogram::with_intervals(space(), 2);
        h.fit(&[
            (vec![10.0, 10.0], 4.0),
            (vec![20.0, 20.0], 6.0),   // same bucket (lower-left)
            (vec![90.0, 90.0], 100.0), // upper-right bucket
        ])
        .unwrap();
        assert_eq!(h.predict(&[5.0, 5.0]).unwrap(), Some(5.0));
        assert_eq!(h.predict(&[99.0, 99.0]).unwrap(), Some(100.0));
        // Empty bucket -> global average of 110/3.
        let fallback = h.predict(&[90.0, 10.0]).unwrap().unwrap();
        assert!((fallback - 110.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn observe_is_a_no_op() {
        let mut h = EquiWidthHistogram::with_intervals(space(), 2);
        h.fit(&[(vec![10.0, 10.0], 4.0)]).unwrap();
        h.observe(&[10.0, 10.0], 9999.0).unwrap();
        assert_eq!(h.predict(&[10.0, 10.0]).unwrap(), Some(4.0));
    }

    #[test]
    fn refit_replaces_previous_training() {
        let mut h = EquiWidthHistogram::with_intervals(space(), 2);
        h.fit(&[(vec![10.0, 10.0], 4.0)]).unwrap();
        h.fit(&[(vec![10.0, 10.0], 8.0)]).unwrap();
        assert_eq!(h.predict(&[10.0, 10.0]).unwrap(), Some(8.0));
        assert_eq!(h.trained_points(), 1);
    }

    #[test]
    fn budget_sized_histogram_reports_memory_within_budget() {
        let h =
            EquiWidthHistogram::with_budget(Space::cube(4, 0.0, 1000.0).unwrap(), 1800).unwrap();
        assert_eq!(h.intervals(), 3);
        assert!(h.memory_used() <= 1800);
        assert_eq!(h.name(), "SH-W");
    }

    #[test]
    fn boundary_values_fall_in_last_bucket() {
        let mut h = EquiWidthHistogram::with_intervals(space(), 4);
        h.fit(&[(vec![100.0, 100.0], 7.0)]).unwrap();
        assert_eq!(h.predict(&[100.0, 100.0]).unwrap(), Some(7.0));
    }

    #[test]
    fn rejects_malformed_points() {
        let h = EquiWidthHistogram::with_intervals(space(), 4);
        assert!(h.predict(&[1.0]).is_err());
        assert!(h.predict(&[f64::NAN, 1.0]).is_err());
        let mut h = h;
        assert!(h.fit(&[(vec![1.0, 1.0], f64::NAN)]).is_err());
    }

    #[test]
    fn out_of_range_points_clamp_to_edge_buckets() {
        let mut h = EquiWidthHistogram::with_intervals(space(), 2);
        h.fit(&[(vec![-10.0, -10.0], 3.0)]).unwrap();
        assert_eq!(h.predict(&[0.0, 0.0]).unwrap(), Some(3.0));
    }
}
