//! The inert cost model: never informed, never learning, zero bytes.

use mlq_core::{CostModel, MlqError, Space, TrainableModel};
use serde::{Deserialize, Serialize};

/// A model that validates its inputs and otherwise does nothing.
///
/// Used wherever an interface demands a model but the experiment only
/// exercises one cost component — e.g. the bake-off pairs each
/// single-surface contender with a `NullModel` IO side inside
/// `CostEstimator`, so combined predictions equal the contender's own
/// and `memory_used` charges nothing extra.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NullModel {
    space: Space,
}

impl NullModel {
    /// Creates the inert model over `space`.
    #[must_use]
    pub fn new(space: Space) -> Self {
        NullModel { space }
    }
}

impl CostModel for NullModel {
    fn predict(&self, point: &[f64]) -> Result<Option<f64>, MlqError> {
        self.space.grid_point(point).map(|_| None)
    }

    fn observe(&mut self, point: &[f64], actual: f64) -> Result<(), MlqError> {
        self.space.grid_point(point)?;
        if !actual.is_finite() {
            return Err(MlqError::NonFiniteValue { context: "cost value" });
        }
        Ok(())
    }

    fn memory_used(&self) -> usize {
        0
    }

    fn name(&self) -> String {
        "NULL".to_string()
    }
}

impl TrainableModel for NullModel {
    fn fit(&mut self, data: &[(Vec<f64>, f64)]) -> Result<(), MlqError> {
        for (point, value) in data {
            self.observe(point, *value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_uninformed_and_free() {
        let space = Space::cube(2, 0.0, 100.0).unwrap();
        let mut null = NullModel::new(space);
        null.observe(&[1.0, 1.0], 50.0).unwrap();
        assert_eq!(null.predict(&[1.0, 1.0]).unwrap(), None);
        assert_eq!(null.memory_used(), 0);
        assert_eq!(null.name(), "NULL");
        assert!(null.predict(&[1.0]).is_err());
        assert!(null.observe(&[1.0, 1.0], f64::NAN).is_err());
    }
}
