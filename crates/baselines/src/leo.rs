//! A LEO-style feedback corrector (paper §2.2, related work).
//!
//! DB2's LEarning Optimizer "works by logging ... estimated statistics
//! and actual observed statistics ... stores the difference in an
//! adjustment table, then looks up the adjustment table during query
//! execution and applies necessary adjustments". [`LeoCorrected`]
//! reproduces that architecture over any base cost model: a coarse
//! per-region table of observed `actual / predicted` ratios, applied
//! multiplicatively at prediction time.
//!
//! The paper argues MLQ is more storage-efficient than LEO because MLQ
//! folds feedback directly into its statistics instead of keeping a
//! separate adjustment structure; having LEO in the harness makes that
//! comparison executable.

use crate::grid::BucketGrid;
use mlq_core::{CostModel, MlqError, Space, TrainableModel};

/// A base cost model plus a LEO-style adjustment table.
pub struct LeoCorrected<M> {
    base: M,
    space: Space,
    /// Per-region `actual / predicted` ratio sums and counts.
    ratios: BucketGrid,
    intervals: usize,
}

impl<M: CostModel> LeoCorrected<M> {
    /// Wraps `base` with an adjustment table of `intervals` cells per
    /// dimension over `space`.
    ///
    /// # Panics
    ///
    /// Panics if `intervals == 0` or the table size overflows.
    #[must_use]
    pub fn new(base: M, space: Space, intervals: usize) -> Self {
        let ratios = BucketGrid::new(space.dims(), intervals);
        LeoCorrected { base, space, ratios, intervals }
    }

    /// The wrapped base model.
    #[must_use]
    pub fn base(&self) -> &M {
        &self.base
    }

    fn region_of(&self, point: &[f64]) -> Result<usize, MlqError> {
        if point.len() != self.space.dims() {
            return Err(MlqError::DimensionMismatch {
                expected: self.space.dims(),
                got: point.len(),
            });
        }
        let n = self.intervals;
        let mut per_dim = [0usize; mlq_core::MAX_DIMS];
        for (i, &x) in point.iter().enumerate() {
            if !x.is_finite() {
                return Err(MlqError::NonFiniteValue { context: "point coordinate" });
            }
            let lo = self.space.low(i);
            let hi = self.space.high(i);
            let unit = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
            per_dim[i] = ((unit * n as f64) as usize).min(n - 1);
        }
        Ok(self.ratios.flat_index(&per_dim[..self.space.dims()]))
    }
}

impl<M: CostModel> CostModel for LeoCorrected<M> {
    fn predict(&self, point: &[f64]) -> Result<Option<f64>, MlqError> {
        let region = self.region_of(point)?;
        let Some(base) = self.base.predict(point)? else {
            return Ok(None);
        };
        // Regions without feedback keep ratio 1 (no adjustment); the
        // grid's global-average fallback would leak cross-region ratios,
        // so consult the region's own statistics only.
        let ratio = self.ratios.bucket_average(region).unwrap_or(1.0);
        Ok(Some(base * ratio))
    }

    fn observe(&mut self, point: &[f64], actual: f64) -> Result<(), MlqError> {
        let region = self.region_of(point)?;
        if !actual.is_finite() {
            return Err(MlqError::NonFiniteValue { context: "cost value" });
        }
        // LEO compares the estimate with the observation; without a base
        // estimate (or with a zero estimate) there is no ratio to learn.
        if let Some(base) = self.base.predict(point)? {
            if base.abs() > f64::EPSILON {
                self.ratios.add(region, actual / base);
            }
        }
        Ok(())
    }

    fn memory_used(&self) -> usize {
        self.base.memory_used() + self.ratios.bucket_bytes()
    }

    fn name(&self) -> String {
        format!("LEO({})", self.base.name())
    }
}

impl<M: TrainableModel> TrainableModel for LeoCorrected<M> {
    /// Trains the base model a-priori and clears the adjustment table
    /// (fresh estimates need fresh corrections).
    fn fit(&mut self, data: &[(Vec<f64>, f64)]) -> Result<(), MlqError> {
        self.ratios.clear();
        self.base.fit(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiheight::EquiHeightHistogram;
    use crate::global::GlobalAverage;

    fn space() -> Space {
        Space::cube(1, 0.0, 100.0).unwrap()
    }

    #[test]
    fn no_feedback_means_no_adjustment() {
        let mut base = GlobalAverage::new(space());
        base.fit(&[(vec![10.0], 50.0)]).unwrap();
        let leo = LeoCorrected::new(base, space(), 4);
        assert_eq!(leo.predict(&[10.0]).unwrap(), Some(50.0));
        assert_eq!(leo.name(), "LEO(GLOBAL-AVG)");
    }

    #[test]
    fn corrects_a_systematically_biased_base() {
        // Base always predicts 50; true cost in region [0, 25) is 100.
        let mut base = GlobalAverage::new(space());
        base.fit(&[(vec![50.0], 50.0)]).unwrap();
        let mut leo = LeoCorrected::new(base, space(), 4);
        for i in 0..10 {
            leo.observe(&[f64::from(i)], 100.0).unwrap();
        }
        // Feedback never reaches the base (it stays at 50); the region's
        // learned ratio of 2.0 corrects the prediction to ~100.
        let corrected = leo.predict(&[5.0]).unwrap().unwrap();
        assert!((corrected - 100.0).abs() < 1e-9, "corrected {corrected}");
        assert_eq!(CostModel::predict(leo.base(), &[5.0]).unwrap(), Some(50.0));
    }

    #[test]
    fn corrections_are_per_region() {
        let mut base = GlobalAverage::new(space());
        base.fit(&[(vec![50.0], 50.0)]).unwrap();
        let mut leo = LeoCorrected::new(base, space(), 4);
        // Region [0, 25): actual 100 (ratio 2). Region [75, 100): actual
        // 25 (ratio 0.5). Region [25, 50): untouched.
        for _ in 0..5 {
            leo.observe(&[10.0], 100.0).unwrap();
            leo.observe(&[90.0], 25.0).unwrap();
        }
        let lo = leo.predict(&[10.0]).unwrap().unwrap();
        let hi = leo.predict(&[90.0]).unwrap().unwrap();
        let untouched = leo.predict(&[30.0]).unwrap().unwrap();
        assert!((lo - 100.0).abs() < 20.0, "lo {lo}");
        assert!((hi - 25.0).abs() < 10.0, "hi {hi}");
        assert!((untouched - 50.0).abs() < 1e-9, "untouched region keeps base: {untouched}");
    }

    #[test]
    fn works_over_a_static_histogram() {
        // The real LEO configuration: a trained-but-stale SH-H base.
        let mut leo =
            LeoCorrected::new(EquiHeightHistogram::with_intervals(space(), 4), space(), 4);
        // Trained when costs were low...
        leo.fit(&[(vec![10.0], 10.0), (vec![90.0], 10.0)]).unwrap();
        assert_eq!(leo.predict(&[10.0]).unwrap(), Some(10.0));
        // ...then the world changed; LEO corrects where SH-H cannot.
        for _ in 0..10 {
            leo.observe(&[10.0], 40.0).unwrap();
        }
        let corrected = leo.predict(&[10.0]).unwrap().unwrap();
        assert!((corrected - 40.0).abs() < 5.0, "corrected {corrected}");
        // The bare histogram would still say 10.
        assert_eq!(CostModel::predict(leo.base(), &[10.0]).unwrap(), Some(10.0));
    }

    #[test]
    fn refit_clears_stale_adjustments() {
        let mut leo =
            LeoCorrected::new(EquiHeightHistogram::with_intervals(space(), 4), space(), 4);
        leo.fit(&[(vec![10.0], 10.0)]).unwrap();
        for _ in 0..5 {
            leo.observe(&[10.0], 40.0).unwrap();
        }
        leo.fit(&[(vec![10.0], 40.0)]).unwrap(); // retrain on current truth
        let p = leo.predict(&[10.0]).unwrap().unwrap();
        assert!((p - 40.0).abs() < 1e-9, "no double correction: {p}");
    }

    #[test]
    fn validates_inputs_and_counts_memory() {
        let base = GlobalAverage::new(space());
        let base_mem = base.memory_used();
        let mut leo = LeoCorrected::new(base, space(), 4);
        assert!(leo.predict(&[1.0, 2.0]).is_err());
        assert!(leo.observe(&[f64::NAN], 1.0).is_err());
        assert!(leo.observe(&[1.0], f64::NAN).is_err());
        assert!(leo.memory_used() > base_mem, "adjustment table is accounted");
    }
}
