//! SH-H: the equi-height static histogram.
//!
//! "The equi-height histogram method divides each dimension into intervals
//! so that the same number of data points are kept in each interval."
//! (paper §2.1). Boundaries are per-dimension training-set quantiles, so
//! bucket resolution concentrates where the training workload is dense —
//! which is why SH-H is the stronger static baseline in the paper's
//! experiments.

use crate::grid::{max_intervals_for_budget, BucketGrid, BOUNDARY_BYTES};
use mlq_core::{CostModel, MlqError, Space, TrainableModel};
use serde::{Deserialize, Serialize};

/// The equi-height static histogram cost model (paper "SH-H").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquiHeightHistogram {
    space: Space,
    grid: BucketGrid,
    /// `dims × (intervals − 1)` interior boundaries; until `fit` runs they
    /// are the equi-width boundaries.
    boundaries: Vec<Vec<f64>>,
}

impl EquiHeightHistogram {
    /// Builds an untrained histogram with the largest per-dimension
    /// interval count whose buckets *and boundary tables* fit `budget`
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`MlqError::BudgetTooSmall`] when a single bucket does not fit.
    pub fn with_budget(space: Space, budget: usize) -> Result<Self, MlqError> {
        let n = max_intervals_for_budget(&space, budget, true)?;
        Ok(Self::with_intervals(space, n))
    }

    /// Builds an untrained histogram with exactly `intervals` cells per
    /// dimension.
    ///
    /// # Panics
    ///
    /// Panics if `intervals == 0` or `intervals^d` overflows.
    #[must_use]
    pub fn with_intervals(space: Space, intervals: usize) -> Self {
        let grid = BucketGrid::new(space.dims(), intervals);
        let boundaries = (0..space.dims())
            .map(|i| equal_width_boundaries(space.low(i), space.high(i), intervals))
            .collect();
        EquiHeightHistogram { space, grid, boundaries }
    }

    /// Per-dimension interval count.
    #[must_use]
    pub fn intervals(&self) -> usize {
        self.grid.intervals()
    }

    /// The trained interior boundaries of dimension `i`.
    #[must_use]
    pub fn boundaries(&self, i: usize) -> &[f64] {
        &self.boundaries[i]
    }

    /// Number of training points absorbed by `fit`.
    #[must_use]
    pub fn trained_points(&self) -> u64 {
        self.grid.total_count()
    }

    fn bucket_of(&self, point: &[f64]) -> Result<usize, MlqError> {
        if point.len() != self.space.dims() {
            return Err(MlqError::DimensionMismatch {
                expected: self.space.dims(),
                got: point.len(),
            });
        }
        let mut per_dim = [0usize; mlq_core::MAX_DIMS];
        for (i, &x) in point.iter().enumerate() {
            if !x.is_finite() {
                return Err(MlqError::NonFiniteValue { context: "point coordinate" });
            }
            // Interval = number of interior boundaries <= x.
            per_dim[i] = self.boundaries[i].partition_point(|&b| b <= x);
        }
        Ok(self.grid.flat_index(&per_dim[..self.space.dims()]))
    }
}

/// Interior boundaries splitting `[lo, hi]` into `n` equal-width pieces.
fn equal_width_boundaries(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    (1..n).map(|k| lo + (hi - lo) * k as f64 / n as f64).collect()
}

/// Interior boundaries putting (as close as possible) `len/n` sorted
/// values into each interval.
fn quantile_boundaries(sorted: &[f64], n: usize) -> Vec<f64> {
    debug_assert!(!sorted.is_empty());
    (1..n)
        .map(|k| {
            let rank = (k * sorted.len()) / n;
            sorted[rank.min(sorted.len() - 1)]
        })
        .collect()
}

impl CostModel for EquiHeightHistogram {
    fn predict(&self, point: &[f64]) -> Result<Option<f64>, MlqError> {
        Ok(self.grid.predict(self.bucket_of(point)?))
    }

    /// Static model: the observation is validated, then ignored (the
    /// paper's central criticism of SH).
    fn observe(&mut self, point: &[f64], actual: f64) -> Result<(), MlqError> {
        self.bucket_of(point)?;
        if !actual.is_finite() {
            return Err(MlqError::NonFiniteValue { context: "cost value" });
        }
        Ok(())
    }

    fn memory_used(&self) -> usize {
        self.grid.bucket_bytes()
            + self.boundaries.iter().map(|b| b.len() * BOUNDARY_BYTES).sum::<usize>()
    }

    fn name(&self) -> String {
        "SH-H".to_string()
    }
}

impl TrainableModel for EquiHeightHistogram {
    fn fit(&mut self, data: &[(Vec<f64>, f64)]) -> Result<(), MlqError> {
        self.grid.clear();
        if data.is_empty() {
            return Ok(());
        }
        // Pass 1: per-dimension quantile boundaries from the training
        // points' coordinate distribution.
        let dims = self.space.dims();
        let n = self.grid.intervals();
        for (i, bounds) in self.boundaries.iter_mut().enumerate().take(dims) {
            let mut coords: Vec<f64> = Vec::with_capacity(data.len());
            for (point, _) in data {
                if point.len() != dims {
                    return Err(MlqError::DimensionMismatch { expected: dims, got: point.len() });
                }
                let x = point[i];
                if !x.is_finite() {
                    return Err(MlqError::NonFiniteValue { context: "training coordinate" });
                }
                coords.push(x);
            }
            coords.sort_by(f64::total_cmp);
            *bounds = quantile_boundaries(&coords, n);
        }
        // Pass 2: fill the buckets.
        for (point, value) in data {
            if !value.is_finite() {
                return Err(MlqError::NonFiniteValue { context: "training cost value" });
            }
            let flat = self.bucket_of(point)?;
            self.grid.add(flat, *value);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn space() -> Space {
        Space::cube(1, 0.0, 100.0).unwrap()
    }

    #[test]
    fn untrained_uses_equal_width_boundaries() {
        let h = EquiHeightHistogram::with_intervals(space(), 4);
        assert_eq!(h.boundaries(0), &[25.0, 50.0, 75.0]);
        assert_eq!(h.predict(&[10.0]).unwrap(), None);
    }

    #[test]
    fn fit_moves_boundaries_to_quantiles() {
        // 8 points clustered low: 1..=8 in [0, 10], none above.
        let data: Vec<(Vec<f64>, f64)> =
            (1..=8).map(|i| (vec![f64::from(i)], f64::from(i))).collect();
        let mut h = EquiHeightHistogram::with_intervals(space(), 4);
        h.fit(&data).unwrap();
        // Quantile boundaries land inside the cluster, not at 25/50/75.
        for &b in h.boundaries(0) {
            assert!(b <= 10.0, "boundary {b} should follow the data");
        }
        // Every bucket holds 2 of the 8 points.
        for q in [1.5, 3.5, 5.5, 7.5] {
            let p = h.predict(&[q]).unwrap().unwrap();
            assert!((p - (q - 0.0)).abs() <= 1.0, "bucket around {q} predicts {p}");
        }
    }

    #[test]
    fn equal_point_counts_per_interval() {
        // Skewed coordinates; equi-height must balance counts.
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<(Vec<f64>, f64)> = (0..4000)
            .map(|_| {
                let x: f64 = rng.random::<f64>();
                (vec![x * x * 100.0], 1.0) // quadratic skew toward 0
            })
            .collect();
        let mut h = EquiHeightHistogram::with_intervals(space(), 4);
        h.fit(&data).unwrap();
        // Count training points per interval using the trained boundaries.
        let mut counts = [0usize; 4];
        for (p, _) in &data {
            let idx = h.boundaries(0).partition_point(|&b| b <= p[0]);
            counts[idx] += 1;
        }
        for &c in &counts {
            assert!(
                (800..=1200).contains(&c),
                "equi-height intervals should hold ~1000 points each: {counts:?}"
            );
        }
    }

    #[test]
    fn multidimensional_fit_and_lookup() {
        let s = Space::cube(2, 0.0, 100.0).unwrap();
        let mut h = EquiHeightHistogram::with_intervals(s, 2);
        h.fit(&[
            (vec![10.0, 10.0], 1.0),
            (vec![20.0, 15.0], 3.0),
            (vec![80.0, 90.0], 50.0),
            (vec![90.0, 85.0], 70.0),
        ])
        .unwrap();
        let low = h.predict(&[12.0, 12.0]).unwrap().unwrap();
        let high = h.predict(&[85.0, 88.0]).unwrap().unwrap();
        assert!(low < high, "low-cluster {low} must be below high-cluster {high}");
    }

    #[test]
    fn budget_sizing_accounts_for_boundaries() {
        let s = Space::cube(4, 0.0, 1000.0).unwrap();
        let h = EquiHeightHistogram::with_budget(s, 1800).unwrap();
        assert!(h.memory_used() <= 1800);
        assert_eq!(h.name(), "SH-H");
    }

    #[test]
    fn fit_empty_dataset_resets_model() {
        let mut h = EquiHeightHistogram::with_intervals(space(), 4);
        h.fit(&[(vec![5.0], 2.0)]).unwrap();
        h.fit(&[]).unwrap();
        assert_eq!(h.predict(&[5.0]).unwrap(), None);
    }

    #[test]
    fn rejects_malformed_training_data() {
        let mut h = EquiHeightHistogram::with_intervals(space(), 4);
        assert!(h.fit(&[(vec![1.0, 2.0], 1.0)]).is_err());
        assert!(h.fit(&[(vec![f64::NAN], 1.0)]).is_err());
        assert!(h.fit(&[(vec![1.0], f64::INFINITY)]).is_err());
    }
}
