//! # mlq-baselines — the static histogram (SH) cost models
//!
//! Implements the comparison methods of the MLQ paper: the *static
//! histogram* approach of Jihad & Kinji ("Cost estimation of user-defined
//! methods in object-relational database systems", SIGMOD Record 1999), in
//! both variants evaluated by the paper:
//!
//! * **SH-W** ([`EquiWidthHistogram`]) — every dimension is divided into
//!   `N` intervals of equal length, creating `N^d` buckets;
//! * **SH-H** ([`EquiHeightHistogram`]) — every dimension is divided into
//!   `N` intervals holding (approximately) the same number of training
//!   points, so bucket resolution follows the data distribution.
//!
//! Both are **not self-tuning**: they are trained a-priori through
//! [`mlq_core::TrainableModel::fit`] with a complete training set drawn
//! from the *same* distribution as the test queries (the paper's most
//! favourable setting for SH), and they ignore feedback offered through
//! `observe`. Bucket counts are derived from the same byte budget the MLQ
//! methods get, keeping the comparison memory-fair.
//!
//! Two extras round out the baseline zoo: a trivial [`GlobalAverage`]
//! sanity floor, and [`LeoCorrected`] — a DB2-LEO-style feedback
//! corrector (paper §2.2) that bolts an adjustment table onto any base
//! model, making the paper's storage-efficiency comparison against LEO
//! executable.

//! ```
//! use mlq_baselines::EquiHeightHistogram;
//! use mlq_core::{CostModel, Space, TrainableModel};
//!
//! let space = Space::cube(2, 0.0, 1000.0)?;
//! // Sized memory-fairly from the paper's 1.8 KB budget:
//! let mut sh = EquiHeightHistogram::with_budget(space, 1800)?;
//! sh.fit(&[(vec![10.0, 10.0], 5.0), (vec![900.0, 900.0], 50.0)])?;
//! assert_eq!(sh.predict(&[12.0, 11.0])?, Some(5.0));
//! // Static: feedback is validated but ignored.
//! sh.observe(&[12.0, 11.0], 9999.0)?;
//! assert_eq!(sh.predict(&[12.0, 11.0])?, Some(5.0));
//! # Ok::<(), mlq_core::MlqError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod equiheight;
mod equiwidth;
mod global;
mod grid;
mod leo;
mod null;

pub use equiheight::EquiHeightHistogram;
pub use equiwidth::EquiWidthHistogram;
pub use global::GlobalAverage;
pub use grid::{max_intervals_for_budget, BUCKET_BYTES};
pub use leo::LeoCorrected;
pub use null::NullModel;
