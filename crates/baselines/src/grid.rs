//! Shared bucket-grid plumbing for the two histogram variants.

use mlq_core::{MlqError, Space};
use serde::{Deserialize, Serialize};

/// Accounted bytes per histogram bucket: an `f64` cost sum plus a `u32`
/// count (the average is derived). Matches the granularity of the MLQ
/// node accounting model.
pub const BUCKET_BYTES: usize = 12;

/// Accounted bytes per stored interval boundary (SH-H only).
pub const BOUNDARY_BYTES: usize = 8;

/// The largest per-dimension interval count `N` such that the histogram
/// fits in `budget` bytes: `N^d` buckets of [`BUCKET_BYTES`], plus — when
/// `with_boundaries` (SH-H) — `d·(N−1)` stored boundaries of
/// `BOUNDARY_BYTES` (8).
///
/// # Errors
///
/// Returns [`MlqError::BudgetTooSmall`] when not even `N = 1` fits.
pub fn max_intervals_for_budget(
    space: &Space,
    budget: usize,
    with_boundaries: bool,
) -> Result<usize, MlqError> {
    let d = space.dims();
    let bytes_for = |n: usize| -> Option<usize> {
        let buckets = (n as u64).checked_pow(d as u32)?;
        let bucket_bytes = usize::try_from(buckets).ok()?.checked_mul(BUCKET_BYTES)?;
        let boundary_bytes = if with_boundaries { d * (n - 1) * BOUNDARY_BYTES } else { 0 };
        bucket_bytes.checked_add(boundary_bytes)
    };
    if bytes_for(1).is_none_or(|b| b > budget) {
        return Err(MlqError::BudgetTooSmall {
            budget,
            required: bytes_for(1).unwrap_or(usize::MAX),
        });
    }
    let mut n = 1usize;
    while bytes_for(n + 1).is_some_and(|b| b <= budget) {
        n += 1;
    }
    Ok(n)
}

/// A dense `N^d` bucket grid storing per-bucket cost sums and counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketGrid {
    intervals: usize,
    dims: usize,
    sums: Vec<f64>,
    counts: Vec<u32>,
    /// Global fallback for empty buckets.
    global_sum: f64,
    global_count: u64,
}

impl BucketGrid {
    /// Creates an empty grid with `intervals` cells per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `intervals == 0` or the bucket count overflows.
    #[must_use]
    pub fn new(dims: usize, intervals: usize) -> Self {
        assert!(intervals > 0, "a histogram needs at least one interval");
        let buckets = intervals
            .checked_pow(u32::try_from(dims).expect("dims fits u32"))
            .expect("bucket count overflow");
        BucketGrid {
            intervals,
            dims,
            sums: vec![0.0; buckets],
            counts: vec![0; buckets],
            global_sum: 0.0,
            global_count: 0,
        }
    }

    /// Per-dimension interval count.
    #[must_use]
    pub fn intervals(&self) -> usize {
        self.intervals
    }

    /// Total bucket count `N^d`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// True when the grid holds no buckets (impossible by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Resets all buckets (used by `fit` on retrain).
    pub fn clear(&mut self) {
        debug_assert!(!self.is_empty(), "grids always hold at least one bucket");
        self.sums.fill(0.0);
        self.counts.fill(0);
        self.global_sum = 0.0;
        self.global_count = 0;
    }

    /// Flattens per-dimension interval indices into a bucket index.
    #[must_use]
    pub fn flat_index(&self, interval_per_dim: &[usize]) -> usize {
        debug_assert_eq!(interval_per_dim.len(), self.dims);
        let mut idx = 0usize;
        for &i in interval_per_dim.iter().rev() {
            debug_assert!(i < self.intervals);
            idx = idx * self.intervals + i;
        }
        idx
    }

    /// Adds one training value into the bucket at `flat`.
    pub fn add(&mut self, flat: usize, value: f64) {
        self.sums[flat] += value;
        self.counts[flat] += 1;
        self.global_sum += value;
        self.global_count += 1;
    }

    /// Predicted cost for the bucket at `flat`: the bucket average, or the
    /// global training average for an empty bucket, or `None` for an
    /// untrained grid.
    #[must_use]
    pub fn predict(&self, flat: usize) -> Option<f64> {
        if self.counts[flat] > 0 {
            Some(self.sums[flat] / f64::from(self.counts[flat]))
        } else if self.global_count > 0 {
            Some(self.global_sum / self.global_count as f64)
        } else {
            None
        }
    }

    /// Average of the values recorded in bucket `flat` only — no global
    /// fallback (used by the LEO adjustment table, where leaking another
    /// region's correction ratio would be wrong).
    #[must_use]
    pub fn bucket_average(&self, flat: usize) -> Option<f64> {
        (self.counts[flat] > 0).then(|| self.sums[flat] / f64::from(self.counts[flat]))
    }

    /// Number of training points absorbed.
    #[must_use]
    pub fn total_count(&self) -> u64 {
        self.global_count
    }

    /// Accounted memory of the bucket array.
    #[must_use]
    pub fn bucket_bytes(&self) -> usize {
        self.len() * BUCKET_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(d: usize) -> Space {
        Space::cube(d, 0.0, 1000.0).unwrap()
    }

    #[test]
    fn budget_sizing_matches_paper_scale() {
        // 1.8 KB, d = 4, 12-byte buckets: 3^4 = 81 buckets (972 B) fits,
        // 4^4 = 256 buckets (3072 B) does not.
        let n = max_intervals_for_budget(&space(4), 1800, false).unwrap();
        assert_eq!(n, 3);
        // SH-H additionally pays for boundaries but still fits N = 3:
        // 972 + 4*2*8 = 1036.
        let n = max_intervals_for_budget(&space(4), 1800, true).unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn budget_sizing_grows_with_budget() {
        let small = max_intervals_for_budget(&space(2), 1800, false).unwrap();
        let large = max_intervals_for_budget(&space(2), 18_000, false).unwrap();
        assert!(large > small);
        assert_eq!(small, 12); // 12^2 * 12 = 1728 <= 1800 < 13^2 * 12
    }

    #[test]
    fn budget_too_small_for_single_bucket() {
        assert!(matches!(
            max_intervals_for_budget(&space(2), BUCKET_BYTES - 1, false),
            Err(MlqError::BudgetTooSmall { .. })
        ));
    }

    #[test]
    fn grid_is_never_empty() {
        let g = BucketGrid::new(2, 1);
        assert!(!g.is_empty());
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn flat_index_is_bijective() {
        let g = BucketGrid::new(3, 4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    let flat = g.flat_index(&[i, j, k]);
                    assert!(flat < g.len());
                    assert!(seen.insert(flat), "collision at ({i},{j},{k})");
                }
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn predict_uses_bucket_then_global_then_none() {
        let mut g = BucketGrid::new(1, 4);
        assert_eq!(g.predict(0), None);
        g.add(0, 10.0);
        g.add(0, 20.0);
        g.add(1, 100.0);
        assert_eq!(g.predict(0), Some(15.0));
        assert_eq!(g.predict(1), Some(100.0));
        // Empty bucket falls back to the global average (130 / 3).
        let global = g.predict(3).unwrap();
        assert!((global - 130.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let mut g = BucketGrid::new(1, 2);
        g.add(0, 5.0);
        g.clear();
        assert_eq!(g.predict(0), None);
        assert_eq!(g.total_count(), 0);
    }
}
