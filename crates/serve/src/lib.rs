//! Concurrent sharded serving layer for MLQ cost estimators.
//!
//! The library crates model one estimator at a time; a database server
//! runs many request threads asking for costs while executions stream
//! back as feedback. This crate is that serving layer:
//!
//! * **Sharding** — one shard per registered UDF, keyed exactly like the
//!   optimizer's [`UdfCatalog`](mlq_optimizer::UdfCatalog) (see
//!   [`ConcurrentEstimator::from_catalog`]).
//! * **Snapshot-isolated reads** — readers clone an `Arc` of an immutable
//!   published [`ShardSnapshot`]; the `parking_lot::RwLock` guards only
//!   the pointer swap. Predictions never contend with model maintenance,
//!   and compression never runs on the read path.
//! * **Batched asynchronous feedback** — observations flow through a
//!   bounded MPSC queue with a pluggable [`BackpressurePolicy`] into a
//!   single maintainer thread, which applies them through the PR-1
//!   [`GuardedModel`](mlq_core::GuardedModel)s (validation, quarantine,
//!   circuit breaking all intact) and republishes snapshots.
//! * **Observability** — quarantines, breaker states, queue drops, and
//!   feedback lag surface through [`ShardCounters`] / [`QueueCounters`]
//!   rather than disappearing into the asynchronous pipeline.
//! * **Graceful shutdown** — [`ConcurrentEstimator::shutdown`] refuses
//!   new feedback, flushes everything already admitted, and returns a
//!   final [`ServeReport`].
//!
//! ```
//! use mlq_core::Space;
//! use mlq_serve::{ConcurrentEstimator, ServeConfig};
//! use mlq_udfs::ExecutionCost;
//!
//! let space = Space::cube(2, 0.0, 100.0).unwrap();
//! let service = ConcurrentEstimator::builder(ServeConfig::default())
//!     .register("WIN", &space)
//!     .unwrap()
//!     .build()
//!     .unwrap();
//!
//! service
//!     .observe("WIN", &[10.0, 20.0], ExecutionCost { cpu: 5.0, io: 1.0, results: 3 })
//!     .unwrap();
//! service.flush();
//! assert!(service.predict("WIN", &[10.0, 20.0]).unwrap().is_some());
//! let report = service.shutdown().unwrap();
//! assert_eq!(report.shards[0].1.applied, 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod estimator;
mod handle;
mod queue;
mod recovery;
mod replica;
mod snapshot;
mod wal;

pub use estimator::{
    ConcurrentEstimator, ConcurrentEstimatorBuilder, FleetArbitration, FleetConfig, MaintainerMode,
    ServeConfig, ServeReport, ShardDelta,
};
pub use handle::EstimatorHandle;
pub use queue::{BackpressurePolicy, PushOutcome, QueueCounters};
pub use recovery::{RecoveryReport, RestoreKind, ShardRecovery};
pub use replica::{
    GroupReport, ReplicaGroup, ReplicaGroupBuilder, ReplicaGroupConfig, SyncMode, SyncReport,
};
pub use snapshot::{ComponentSnapshot, ShardCounters, ShardSnapshot};
pub use wal::{CrashOp, CrashPoint, DurabilityConfig, DurabilityStatus, RetryPolicy, CRASH_OPS};
