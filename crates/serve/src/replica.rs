//! The replicated estimator tier: N independent writer replicas kept
//! convergent by periodic anti-entropy merges.
//!
//! Each replica is a full [`ConcurrentEstimator`] — its own shards,
//! guards, feedback queue, and (optionally) write-ahead journal — that
//! absorbs only the feedback stream routed to it. Because the tree's
//! summary statistics are plain sums, replicas fed disjoint stream
//! partitions merge *exactly*: an anti-entropy round
//!
//! 1. extracts every replica's per-shard delta (what it absorbed since
//!    the last round, recorded by a [`DeltaTracker`](mlq_core::DeltaTracker)
//!    tee alongside the guarded models),
//! 2. folds the deltas into the group's per-shard **merge base** via
//!    [`MemoryLimitedQuadtree::merge_from`] (re-compressing if the union
//!    exceeds the base's budget),
//! 3. ships the merged base back to every replica — by default through
//!    the CRC-32 snapshot envelope, byte-for-byte the same frames a
//!    cross-process transport would carry — and installs it, folding each
//!    replica's still-pending local delta on top so nothing it learned
//!    meanwhile is ever un-learned,
//! 4. republishes each replica's read snapshots through the usual
//!    `RwLock<Arc<_>>` pointer swap.
//!
//! After a round with no concurrent writes, every replica's models are
//! identical to a single estimator fed the union stream (bit-identical
//! while nothing compressed — the merge-equivalence invariant CI sweeps
//! across 25 seeds).
//!
//! Replicas run in [`MaintainerMode::Manual`]; under
//! [`SyncMode::Background`] the group spawns one driver thread per
//! replica (stepping its queue) plus one scheduler thread running the
//! rounds, so the whole tier needs no external pumping.

use crate::estimator::{catalog_models, MaintainerMode, ServeConfig, ServeReport};
use crate::wal::DurabilityConfig;
use crate::ConcurrentEstimator;
use mlq_core::{MemoryLimitedQuadtree, MlqError, Space, TreeSnapshot};
use mlq_obs::{labeled, Counter, Gauge, Histogram, Registry, RegistrySnapshot};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Who runs the anti-entropy rounds (and the replicas' queue pumping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// The group spawns one driver thread per replica plus a scheduler
    /// thread that runs [`ReplicaGroup::sync`] every `sync_interval`
    /// (production default).
    #[default]
    Background,
    /// No threads: the embedding code drives replicas via
    /// [`ReplicaGroup::pump`] and rounds via [`ReplicaGroup::sync`].
    /// Fully deterministic — the merge-equivalence harness builds on it.
    Manual,
}

/// Tuning of a [`ReplicaGroup`].
#[derive(Debug, Clone)]
pub struct ReplicaGroupConfig {
    /// Number of writer replicas.
    pub replicas: usize,
    /// Per-replica serving configuration. `maintainer` is forced to
    /// [`MaintainerMode::Manual`]; the group owns all threading.
    pub serve: ServeConfig,
    /// Byte budget of each shadow delta tree (per shard, per component).
    pub delta_budget: usize,
    /// Anti-entropy cadence under [`SyncMode::Background`].
    pub sync_interval: Duration,
    /// Background threads or manual stepping.
    pub mode: SyncMode,
    /// Ship merged models to replicas through the CRC-32 snapshot
    /// envelope (exercising the exact frames a cross-process transport
    /// carries) instead of cloning in memory. The envelope round-trip is
    /// value-exact, so this changes bytes moved, not results.
    pub ship_envelopes: bool,
}

impl Default for ReplicaGroupConfig {
    fn default() -> Self {
        ReplicaGroupConfig {
            replicas: 2,
            serve: ServeConfig::default(),
            delta_budget: 1 << 16,
            sync_interval: Duration::from_millis(200),
            mode: SyncMode::Background,
            ship_envelopes: true,
        }
    }
}

impl ReplicaGroupConfig {
    fn validate(&self) -> Result<(), MlqError> {
        if self.replicas == 0 {
            return Err(MlqError::InvalidConfig {
                reason: "a replica group needs at least one replica".into(),
            });
        }
        if self.mode == SyncMode::Background && self.sync_interval.is_zero() {
            return Err(MlqError::InvalidConfig {
                reason: "sync_interval must be nonzero under SyncMode::Background".into(),
            });
        }
        Ok(())
    }
}

/// Incrementally registers shards, then spawns the replica group.
pub struct ReplicaGroupBuilder {
    config: ReplicaGroupConfig,
    spaces: Vec<(String, Space)>,
    durability: BTreeMap<usize, DurabilityConfig>,
    durability_root: Option<PathBuf>,
}

impl ReplicaGroupBuilder {
    /// Starts a builder with `config`.
    #[must_use]
    pub fn new(config: ReplicaGroupConfig) -> Self {
        ReplicaGroupBuilder {
            config,
            spaces: Vec::new(),
            durability: BTreeMap::new(),
            durability_root: None,
        }
    }

    /// Registers a UDF shard over `space` on every replica (and in the
    /// group's merge base), using the standard catalog model recipe.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for duplicate names.
    pub fn register(mut self, name: &str, space: &Space) -> Result<Self, MlqError> {
        if self.spaces.iter().any(|(n, _)| n == name) {
            return Err(MlqError::InvalidConfig {
                reason: format!("UDF {name} is already registered"),
            });
        }
        self.spaces.push((name.to_string(), space.clone()));
        Ok(self)
    }

    /// Gives every replica crash-safe serving under
    /// `root/replica-<index>` with default durability settings.
    #[must_use]
    pub fn with_durability_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.durability_root = Some(root.into());
        self
    }

    /// Explicit durability settings for one replica (fault injection,
    /// checkpoint cadence, …). Overrides [`Self::with_durability_root`]
    /// for that replica.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] when `replica` is out of range.
    pub fn with_replica_durability(
        mut self,
        replica: usize,
        config: DurabilityConfig,
    ) -> Result<Self, MlqError> {
        if replica >= self.config.replicas {
            return Err(MlqError::InvalidConfig {
                reason: format!(
                    "replica {replica} out of range for a group of {}",
                    self.config.replicas
                ),
            });
        }
        self.durability.insert(replica, config);
        Ok(self)
    }

    /// Builds every replica, the merge base, and (under
    /// [`SyncMode::Background`]) the driver and scheduler threads.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] when nothing is registered or the
    /// configuration is nonsensical; propagates replica build failures.
    pub fn build(self) -> Result<ReplicaGroup, MlqError> {
        let ReplicaGroupBuilder { config, spaces, mut durability, durability_root } = self;
        config.validate()?;
        if spaces.is_empty() {
            return Err(MlqError::InvalidConfig {
                reason: "a replica group needs at least one registered UDF".into(),
            });
        }

        let registry = Arc::new(Registry::new());
        let mut serve = config.serve;
        serve.maintainer = MaintainerMode::Manual;

        let mut replicas = Vec::with_capacity(config.replicas);
        let mut replica_registries = Vec::with_capacity(config.replicas);
        for i in 0..config.replicas {
            let replica_registry = Arc::new(Registry::new());
            let mut b = ConcurrentEstimator::builder(serve)
                .with_registry(Arc::clone(&replica_registry))
                .with_delta_tracking(config.delta_budget);
            for (name, space) in &spaces {
                b = b.register(name, space)?;
            }
            if let Some(dconfig) = durability.remove(&i) {
                b = b.with_durability_config(dconfig);
            } else if let Some(root) = &durability_root {
                b = b.with_durability(root.join(format!("replica-{i}")));
            }
            replicas.push(Arc::new(b.build()?));
            replica_registries.push(replica_registry);
        }

        // The merge base: one pair of trees per shard, configured exactly
        // like the replicas' live models, in the replicas' (sorted) shard
        // order.
        let mut sorted = spaces;
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let mut base = Vec::with_capacity(sorted.len());
        for (name, space) in sorted {
            let (cpu, io) = catalog_models(&space, serve.budget_per_model)?;
            base.push(BaseShard { name, cpu, io });
        }

        let metrics = GroupMetrics::new(&registry, config.replicas);
        metrics.replica_count.set(config.replicas as f64);
        let shared = Arc::new(GroupShared {
            replicas,
            replica_registries,
            registry,
            core: Mutex::new(GroupCore { base }),
            metrics,
            ship_envelopes: config.ship_envelopes,
            stop: AtomicBool::new(false),
        });

        let threads = match config.mode {
            SyncMode::Manual => GroupThreads { drivers: Vec::new(), scheduler: None },
            SyncMode::Background => {
                let mut drivers = Vec::with_capacity(shared.replicas.len());
                for (i, replica) in shared.replicas.iter().enumerate() {
                    let replica = Arc::clone(replica);
                    let stop = Arc::clone(&shared);
                    let batch_max = serve.batch_max;
                    let handle = thread::Builder::new()
                        .name(format!("mlq-replica-{i}"))
                        .spawn(move || {
                            while !stop.stop.load(Ordering::Acquire) {
                                match replica.step(batch_max) {
                                    Ok(n) if n > 0 => {}
                                    _ => thread::sleep(Duration::from_micros(200)),
                                }
                            }
                        })
                        .map_err(|e| MlqError::IoFault {
                            reason: format!("spawning replica driver: {e}"),
                        })?;
                    drivers.push(handle);
                }
                let sched_shared = Arc::clone(&shared);
                let interval = config.sync_interval;
                let scheduler = thread::Builder::new()
                    .name("mlq-replica-sync".into())
                    .spawn(move || {
                        let tick = interval.min(Duration::from_millis(5));
                        let mut last = Instant::now();
                        while !sched_shared.stop.load(Ordering::Acquire) {
                            thread::sleep(tick);
                            if last.elapsed() >= interval {
                                let _ = sched_shared.sync();
                                last = Instant::now();
                            }
                        }
                    })
                    .map_err(|e| MlqError::IoFault {
                        reason: format!("spawning anti-entropy scheduler: {e}"),
                    })?;
                GroupThreads { drivers, scheduler: Some(scheduler) }
            }
        };

        Ok(ReplicaGroup { shared, threads: Mutex::new(Some(threads)) })
    }
}

/// One shard's merged base serialized for shipping: (name, cpu
/// envelope, io envelope).
type ShardEnvelopes = (String, Vec<u8>, Vec<u8>);

/// The group's merged view of one shard.
struct BaseShard {
    name: String,
    cpu: MemoryLimitedQuadtree,
    io: MemoryLimitedQuadtree,
}

struct GroupCore {
    base: Vec<BaseShard>,
}

/// Registry handles for the `mlq_serve_replica_*` series.
struct GroupMetrics {
    syncs: Counter,
    skipped_syncs: Counter,
    sync_nanos: Histogram,
    merged_observations: Counter,
    merge_compressions: Counter,
    envelope_bytes: Counter,
    installs: Counter,
    replica_count: Gauge,
    /// Per-replica extracted-observation tallies
    /// (`mlq_serve_replica_delta_observations{replica="<i>"}`).
    delta_observations: Vec<Counter>,
}

impl GroupMetrics {
    fn new(registry: &Registry, replicas: usize) -> Self {
        GroupMetrics {
            syncs: registry.counter("mlq_serve_replica_syncs"),
            skipped_syncs: registry.counter("mlq_serve_replica_skipped_syncs"),
            sync_nanos: registry.histogram("mlq_serve_replica_sync_nanos"),
            merged_observations: registry.counter("mlq_serve_replica_merged_observations"),
            merge_compressions: registry.counter("mlq_serve_replica_merge_compressions"),
            envelope_bytes: registry.counter("mlq_serve_replica_envelope_bytes"),
            installs: registry.counter("mlq_serve_replica_installs"),
            replica_count: registry.gauge("mlq_serve_replica_count"),
            delta_observations: (0..replicas)
                .map(|i| {
                    registry.counter(&labeled(
                        "mlq_serve_replica_delta_observations",
                        &[("replica", &i.to_string())],
                    ))
                })
                .collect(),
        }
    }
}

struct GroupShared {
    replicas: Vec<Arc<ConcurrentEstimator>>,
    replica_registries: Vec<Arc<Registry>>,
    registry: Arc<Registry>,
    core: Mutex<GroupCore>,
    metrics: GroupMetrics,
    ship_envelopes: bool,
    stop: AtomicBool,
}

impl GroupShared {
    fn sync(&self) -> Result<SyncReport, MlqError> {
        let start = Instant::now();
        let mut core = self.core.lock().unwrap_or_else(PoisonError::into_inner);

        // 1. Extract: take every replica's pending delta.
        let mut per_replica = Vec::with_capacity(self.replicas.len());
        let mut all_deltas = Vec::with_capacity(self.replicas.len());
        for (i, replica) in self.replicas.iter().enumerate() {
            let deltas = replica.take_deltas()?;
            let n: u64 = deltas.iter().map(|d| d.observations).sum();
            self.metrics.delta_observations[i].add(n);
            per_replica.push(n);
            all_deltas.push(deltas);
        }
        let merged_observations: u64 = per_replica.iter().sum();
        if merged_observations == 0 {
            self.metrics.skipped_syncs.inc();
            return Ok(SyncReport {
                merged_observations: 0,
                per_replica,
                compressions: 0,
                envelope_bytes: 0,
                skipped: true,
            });
        }

        // 2. Fold every delta into the merge base (pairwise merge_from,
        // re-compressing when the union exceeds the base's budget).
        let mut compressions = 0u64;
        for deltas in &all_deltas {
            for (shard_idx, delta) in deltas.iter().enumerate() {
                let shard = &mut core.base[shard_idx];
                debug_assert_eq!(shard.name, delta.name, "replica shard order must match base");
                if delta.cpu.root_summary().count > 0 && shard.cpu.merge_from(&delta.cpu)?.is_some()
                {
                    compressions += 1;
                }
                if delta.io.root_summary().count > 0 && shard.io.merge_from(&delta.io)?.is_some() {
                    compressions += 1;
                }
            }
        }

        // 3. Ship + install: every replica gets the merged base (its own
        // pending delta is folded on top inside install_models).
        let mut envelope_bytes = 0u64;
        let envelopes: Option<Vec<ShardEnvelopes>> = if self.ship_envelopes {
            Some(
                core.base
                    .iter()
                    .map(|shard| {
                        let cpu = shard.cpu.snapshot().to_envelope();
                        let io = shard.io.snapshot().to_envelope();
                        envelope_bytes += (cpu.len() + io.len()) as u64;
                        (shard.name.clone(), cpu, io)
                    })
                    .collect(),
            )
        } else {
            None
        };
        for replica in &self.replicas {
            let models = match &envelopes {
                Some(framed) => framed
                    .iter()
                    .map(|(name, cpu, io)| {
                        Ok((
                            name.clone(),
                            MemoryLimitedQuadtree::from_snapshot(&TreeSnapshot::from_envelope(
                                cpu,
                            )?)?,
                            MemoryLimitedQuadtree::from_snapshot(&TreeSnapshot::from_envelope(
                                io,
                            )?)?,
                        ))
                    })
                    .collect::<Result<Vec<_>, MlqError>>()?,
                None => core
                    .base
                    .iter()
                    .map(|shard| (shard.name.clone(), shard.cpu.clone(), shard.io.clone()))
                    .collect(),
            };
            replica.install_models(models)?;
            self.metrics.installs.inc();
        }

        self.metrics.syncs.inc();
        self.metrics.merged_observations.add(merged_observations);
        self.metrics.merge_compressions.add(compressions);
        self.metrics.envelope_bytes.add(envelope_bytes);
        self.metrics
            .sync_nanos
            .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        Ok(SyncReport {
            merged_observations,
            per_replica,
            compressions,
            envelope_bytes,
            skipped: false,
        })
    }
}

/// What one anti-entropy round did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncReport {
    /// Observations folded into the merge base this round.
    pub merged_observations: u64,
    /// Observations extracted per replica, group order.
    pub per_replica: Vec<u64>,
    /// Compression passes the fold triggered on the base trees.
    pub compressions: u64,
    /// Envelope bytes shipped (0 when `ship_envelopes` is off or the
    /// round was skipped).
    pub envelope_bytes: u64,
    /// True when no replica had pending feedback — nothing was merged or
    /// installed.
    pub skipped: bool,
}

/// Final accounting returned by [`ReplicaGroup::shutdown`].
#[derive(Debug)]
pub struct GroupReport {
    /// What the final anti-entropy round (after draining every queue)
    /// folded.
    pub final_sync: SyncReport,
    /// Each replica's own [`ServeReport`], group order.
    pub replicas: Vec<ServeReport>,
    /// Merged metrics view (see [`ReplicaGroup::metrics`]).
    pub metrics: RegistrySnapshot,
}

struct GroupThreads {
    drivers: Vec<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
}

/// N replicated [`ConcurrentEstimator`]s kept convergent by anti-entropy
/// merges. See the [module documentation](self).
pub struct ReplicaGroup {
    shared: Arc<GroupShared>,
    threads: Mutex<Option<GroupThreads>>,
}

impl ReplicaGroup {
    /// Shorthand for [`ReplicaGroupBuilder::new`].
    #[must_use]
    pub fn builder(config: ReplicaGroupConfig) -> ReplicaGroupBuilder {
        ReplicaGroupBuilder::new(config)
    }

    /// Number of replicas in the group.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.shared.replicas.len()
    }

    /// Replica `index` — route a client's predictions and feedback to one
    /// replica; the anti-entropy rounds spread what it learns to the
    /// rest.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    #[must_use]
    pub fn replica(&self, index: usize) -> &Arc<ConcurrentEstimator> {
        &self.shared.replicas[index]
    }

    /// Runs one anti-entropy round now: extract deltas, fold into the
    /// merge base, ship + install + republish everywhere.
    ///
    /// # Errors
    ///
    /// Propagates extraction/merge/install failures (these indicate a
    /// torn-down replica or a configuration bug, not transient state).
    pub fn sync(&self) -> Result<SyncReport, MlqError> {
        self.shared.sync()
    }

    /// One manual maintenance step on every replica (drain up to the
    /// configured batch per replica). Only meaningful under
    /// [`SyncMode::Manual`]. Returns the total observations applied.
    ///
    /// # Errors
    ///
    /// Propagates [`ConcurrentEstimator::step`] failures.
    pub fn pump(&self) -> Result<usize, MlqError> {
        let mut total = 0;
        for replica in &self.shared.replicas {
            total += replica.step(usize::MAX)?;
        }
        Ok(total)
    }

    /// Blocks until every observation admitted to any replica before this
    /// call has been applied and republished on its home replica (not
    /// necessarily synced to peers — call [`Self::sync`] for that).
    pub fn flush(&self) {
        for replica in &self.shared.replicas {
            replica.flush();
        }
    }

    /// Merged metrics view: the group's own `mlq_serve_replica_*` series
    /// plus every replica's full registry relabeled with
    /// `{replica="<index>"}`, in one exposition.
    #[must_use]
    pub fn metrics(&self) -> RegistrySnapshot {
        let mut merged = self.shared.registry.snapshot();
        for (i, registry) in self.shared.replica_registries.iter().enumerate() {
            let label = i.to_string();
            merged.merge(&registry.snapshot().with_labels(&[("replica", &label)]));
        }
        merged
    }

    /// Stops the tier: joins the driver and scheduler threads, drains
    /// every replica's queue, runs one final anti-entropy round so every
    /// replica converges to the union of all streams, and shuts each
    /// replica down. Idempotent; later calls return `None`.
    pub fn shutdown(&self) -> Option<GroupReport> {
        let threads = {
            let mut guard = self.threads.lock().unwrap_or_else(PoisonError::into_inner);
            guard.take()?
        };
        self.shared.stop.store(true, Ordering::Release);
        for handle in threads.drivers {
            let _ = handle.join();
        }
        if let Some(handle) = threads.scheduler {
            let _ = handle.join();
        }
        self.flush();
        let final_sync = self.shared.sync().unwrap_or(SyncReport {
            merged_observations: 0,
            per_replica: Vec::new(),
            compressions: 0,
            envelope_bytes: 0,
            skipped: true,
        });
        let metrics = self.metrics();
        let replicas =
            self.shared.replicas.iter().filter_map(|replica| replica.shutdown()).collect();
        Some(GroupReport { final_sync, replicas, metrics })
    }
}

impl Drop for ReplicaGroup {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ReplicaGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaGroup")
            .field("replicas", &self.shared.replicas.len())
            .finish_non_exhaustive()
    }
}
