//! The concurrent sharded estimator service.
//!
//! One [`ConcurrentEstimator`] serves cost estimates for every registered
//! UDF. Internally it is sharded per UDF — the same keying as the
//! optimizer's [`UdfCatalog`] — and split across two worlds:
//!
//! * **Readers** (any number of threads) fetch the shard's published
//!   [`ShardSnapshot`] — an `Arc` clone under a briefly held
//!   `parking_lot::RwLock` read guard — and predict against the immutable
//!   snapshot. No reader ever touches a live model.
//! * **The maintainer** (one background thread) owns the live
//!   [`GuardedModel`]s. Feedback arrives through a bounded MPSC queue
//!   ([`FeedbackQueue`]), is applied in batches (`observe`, including any
//!   compression the insert triggers — all off the read path), and every
//!   touched shard is refrozen and republished.
//!
//! Shutdown closes the queue (new feedback is refused), flushes every
//! queued observation into the models, republishes final snapshots, and
//! joins the maintainer — nothing admitted is ever dropped by shutdown.

use crate::queue::{
    BackpressurePolicy, Feedback, FeedbackQueue, PushOutcome, QueueCounters, QueueMetrics,
};
use crate::recovery::{
    prune_generations, recover_dir, wal_path, write_checkpoint, RecoveryReport, RestoreKind,
    ShardRecovery,
};
use crate::snapshot::{ComponentSnapshot, ShardCounters, ShardSnapshot};
use crate::wal::{
    shard_stem, DurabilityConfig, DurabilityIo, DurabilityShared, DurabilityStatus, WalError,
    WalRecord, WalWriter,
};
use mlq_core::{
    evict_to_global_budget, CostModel, DeltaTracker, FleetModel, FrozenTree, GuardConfig,
    GuardState, GuardedModel, InsertionStrategy, MemoryLimitedQuadtree, MlqConfig, MlqError, Space,
    TreeSnapshot, NODE_BYTES,
};
use mlq_obs::{labeled, Counter, Gauge, Histogram, Registry, RegistrySnapshot, TraceRing};
use mlq_optimizer::UdfCatalog;
use mlq_udfs::ExecutionCost;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Who drives the drain → apply → republish loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintainerMode {
    /// A dedicated background thread (production default).
    #[default]
    Background,
    /// No thread: the test or embedding code drives maintenance explicitly
    /// through [`ConcurrentEstimator::step`]. Feedback application becomes
    /// fully deterministic — nothing happens between steps — which is what
    /// the deterministic concurrency harness builds on.
    Manual,
}

/// Fleet-level memory arbitration for a [`ConcurrentEstimator`]: one
/// global byte budget shared by every shard's live models, enforced by
/// the maintainer after each feedback batch (eviction stays off the
/// read path, like compression).
///
/// Arbitration runs in rounds. Each round snapshots every shard's
/// `mlq_serve_reads` counter exactly once, turns the deltas since the
/// previous round into traffic weights, hibernates shards that stayed
/// cold for [`hibernate_after`](Self::hibernate_after) consecutive
/// rounds (their models spill to CRC-checked snapshot envelopes and a
/// stand-in snapshot is published), and — when the remaining live
/// models exceed [`global_budget`](Self::global_budget) — runs one
/// cross-model eviction pass that drops the globally smallest
/// traffic-weighted-SSEG leaves first
/// ([`evict_to_global_budget`](mlq_core::evict_to_global_budget)).
/// A prediction against a hibernated shard wakes it: the models are
/// restored bit-identically from their envelopes and republished before
/// the prediction is answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Global byte budget across every live shard's CPU and IO models.
    pub global_budget: usize,
    /// Consecutive traffic-free arbitration rounds after which a shard
    /// hibernates. `0` disables hibernation (eviction still runs).
    pub hibernate_after: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { global_budget: 1 << 20, hibernate_after: 0 }
    }
}

/// Tuning of a [`ConcurrentEstimator`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bound of the feedback queue, in observations.
    pub queue_capacity: usize,
    /// Most observations the maintainer applies before republishing.
    pub batch_max: usize,
    /// What producers do when the queue is full.
    pub backpressure: BackpressurePolicy,
    /// CPU-unit cost of one page read (see
    /// [`CostEstimator`](mlq_optimizer::CostEstimator)).
    pub io_weight: f64,
    /// Guard settings applied to every shard's CPU and IO models.
    pub guard: GuardConfig,
    /// Byte budget per model for UDFs registered through the builder.
    pub budget_per_model: usize,
    /// Whether maintenance runs on a background thread or is stepped
    /// manually.
    pub maintainer: MaintainerMode,
    /// Fleet-level budget arbitration; `None` (the default) serves every
    /// shard at its own per-model budget with no global coupling.
    pub fleet: Option<FleetConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 4096,
            batch_max: 64,
            backpressure: BackpressurePolicy::Block,
            io_weight: 100.0,
            guard: GuardConfig::default(),
            budget_per_model: 1 << 16,
            maintainer: MaintainerMode::Background,
            fleet: None,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), MlqError> {
        if self.queue_capacity == 0 || self.batch_max == 0 {
            return Err(MlqError::InvalidConfig {
                reason: "queue_capacity and batch_max must be nonzero".into(),
            });
        }
        if !self.io_weight.is_finite() || self.io_weight < 0.0 {
            return Err(MlqError::InvalidConfig {
                reason: format!(
                    "io_weight must be finite and non-negative, got {}",
                    self.io_weight
                ),
            });
        }
        if let Some(fleet) = &self.fleet {
            // Two roots (CPU + IO) per live shard can never be evicted,
            // so anything below that per shard is unsatisfiable.
            if fleet.global_budget < 2 * NODE_BYTES {
                return Err(MlqError::InvalidConfig {
                    reason: format!(
                        "fleet.global_budget must hold at least one shard's two roots \
                         ({} B), got {} B",
                        2 * NODE_BYTES,
                        fleet.global_budget
                    ),
                });
            }
        }
        self.backpressure.validate()
    }
}

/// Cached registry handles mirroring one live model's cumulative
/// [`ModelCounters`](mlq_core::ModelCounters) (series
/// `mlq_core_*{udf=...,component=...}`). Handles are resolved once at
/// shard construction so the per-publish export is pure atomic stores.
struct ModelObs {
    predictions: Counter,
    predict_nanos: Counter,
    predict_nodes_visited: Counter,
    insertions: Counter,
    insert_nanos: Counter,
    compressions: Counter,
    compress_nanos: Counter,
    sseg_evictions: Counter,
    lazy_skips: Counter,
    freezes: Counter,
    freeze_nanos: Counter,
}

impl ModelObs {
    fn new(registry: &Registry, udf: &str, component: &str) -> Self {
        let labels = [("udf", udf), ("component", component)];
        let handle = |metric: &str| registry.counter(&labeled(metric, &labels));
        ModelObs {
            predictions: handle("mlq_core_predictions"),
            predict_nanos: handle("mlq_core_predict_nanos"),
            predict_nodes_visited: handle("mlq_core_predict_nodes_visited"),
            insertions: handle("mlq_core_insertions"),
            insert_nanos: handle("mlq_core_insert_nanos"),
            compressions: handle("mlq_core_compressions"),
            compress_nanos: handle("mlq_core_compress_nanos"),
            sseg_evictions: handle("mlq_core_sseg_evictions"),
            lazy_skips: handle("mlq_core_lazy_skips"),
            freezes: handle("mlq_core_freezes"),
            freeze_nanos: handle("mlq_core_freeze_nanos"),
        }
    }

    fn export(&self, c: &mlq_core::ModelCounters) {
        self.predictions.record_total(c.predictions);
        self.predict_nanos.record_total(c.predict_nanos);
        self.predict_nodes_visited.record_total(c.predict_nodes_visited);
        self.insertions.record_total(c.insertions);
        self.insert_nanos.record_total(c.insert_nanos);
        self.compressions.record_total(c.compressions);
        self.compress_nanos.record_total(c.compress_nanos);
        self.sseg_evictions.record_total(c.sseg_evictions);
        self.lazy_skips.record_total(c.lazy_skips);
        self.freezes.record_total(c.freezes);
        self.freeze_nanos.record_total(c.freeze_nanos);
    }
}

/// A hibernated shard's spilled state: both components as CRC-checked
/// snapshot envelopes plus the guard states at hibernation time. While
/// this exists the shard's live `GuardedModel`s hold empty stand-in
/// trees; a wake restores from here bit-identically.
struct HibernatedShard {
    cpu_env: Vec<u8>,
    io_env: Vec<u8>,
    cpu_guard: GuardState,
    io_guard: GuardState,
}

/// The maintainer's live state for one shard. The apply/version tallies
/// live in the shared registry (labeled `{udf="<name>"}`); the plain
/// [`ShardCounters`] struct snapshots them as a view.
struct ShardModels {
    name: String,
    cpu: GuardedModel<MemoryLimitedQuadtree>,
    io: GuardedModel<MemoryLimitedQuadtree>,
    applied: Counter,
    apply_errors: Counter,
    version: Counter,
    cpu_obs: ModelObs,
    io_obs: ModelObs,
    /// Replication tee (CPU and IO trackers): every observation the
    /// guarded models absorb is also recorded here, so an anti-entropy
    /// round can extract exactly what this shard learned since the last
    /// sync. `None` unless the service was built with
    /// [`ConcurrentEstimatorBuilder::with_delta_tracking`].
    deltas: Option<Box<(DeltaTracker, DeltaTracker)>>,
    /// The previously published frozen trees, kept so the next
    /// publication can patch them copy-on-write instead of re-freezing
    /// from scratch. A clone is cheap: the node chunks and child slabs
    /// are `Arc`-shared with the published snapshot.
    prev_cpu: Option<FrozenTree>,
    prev_io: Option<FrozenTree>,
    /// `Some` while this shard is hibernated by fleet arbitration.
    hibernated: Option<Box<HibernatedShard>>,
}

impl ShardModels {
    fn new(
        name: String,
        cpu: GuardedModel<MemoryLimitedQuadtree>,
        io: GuardedModel<MemoryLimitedQuadtree>,
        registry: &Registry,
    ) -> Self {
        let shard_counter = |metric: &str| registry.counter(&labeled(metric, &[("udf", &name)]));
        let applied = shard_counter("mlq_serve_applied");
        let apply_errors = shard_counter("mlq_serve_apply_errors");
        let version = shard_counter("mlq_serve_snapshot_version");
        let cpu_obs = ModelObs::new(registry, &name, "cpu");
        let io_obs = ModelObs::new(registry, &name, "io");
        ShardModels {
            name,
            cpu,
            io,
            applied,
            apply_errors,
            version,
            cpu_obs,
            io_obs,
            deltas: None,
            prev_cpu: None,
            prev_io: None,
            hibernated: None,
        }
    }

    fn snapshot(&mut self, io_weight: f64) -> ShardSnapshot {
        self.version.inc();
        self.cpu_obs.export(&self.cpu.inner().counters());
        self.io_obs.export(&self.io.inner().counters());
        let counters = ShardCounters {
            version: self.version.get(),
            applied: self.applied.get(),
            apply_errors: self.apply_errors.get(),
            cpu_guard: self.cpu.counters(),
            io_guard: self.io.counters(),
            cpu_breaker: self.cpu.state(),
            io_breaker: self.io.state(),
        };
        // Republish copy-on-write when possible: a feedback batch that
        // only bumped summaries patches the previous frozen tree's
        // touched chunks instead of re-packing the whole slab. A
        // structural change (or the first publication) falls back to a
        // full freeze inside `refreeze`.
        let cpu_tree = match self.prev_cpu.take() {
            Some(prev) => self.cpu.inner().refreeze(&prev),
            None => self.cpu.inner().freeze(),
        };
        let io_tree = match self.prev_io.take() {
            Some(prev) => self.io.inner().refreeze(&prev),
            None => self.io.inner().freeze(),
        };
        self.prev_cpu = Some(cpu_tree.clone());
        self.prev_io = Some(io_tree.clone());
        let cpu =
            ComponentSnapshot::new(cpu_tree, self.cpu.is_healthy(), self.cpu.fallback_prediction());
        let io =
            ComponentSnapshot::new(io_tree, self.io.is_healthy(), self.io.fallback_prediction());
        let snap = ShardSnapshot::new(self.name.clone(), cpu, io, io_weight, counters);
        if self.hibernated.is_some() {
            snap.mark_hibernated()
        } else {
            snap
        }
    }

    /// Applies one observation to both components, mirroring
    /// [`CostEstimator::observe`](mlq_optimizer::CostEstimator::observe):
    /// both models are always fed; one component's quarantine must not
    /// starve the other.
    fn apply(&mut self, point: &[f64], cost: ExecutionCost) {
        // Absorption detection for the replication tee: the guard returns
        // `Ok` even when its breaker swallows the observation, so the only
        // reliable signal that the inner model was actually fed is its
        // root count growing.
        let before = self
            .deltas
            .is_some()
            .then(|| (self.cpu.inner().root_summary().count, self.io.inner().root_summary().count));
        let cpu = self.cpu.observe(point, cost.cpu);
        let io = self.io.observe(point, cost.io);
        if let (Some((cpu_before, io_before)), Some(trackers)) = (before, self.deltas.as_mut()) {
            let (cpu_delta, io_delta) = trackers.as_mut();
            if self.cpu.inner().root_summary().count > cpu_before
                && cpu_delta.record(point, cost.cpu).is_err()
            {
                self.apply_errors.inc();
            }
            if self.io.inner().root_summary().count > io_before
                && io_delta.record(point, cost.io).is_err()
            {
                self.apply_errors.inc();
            }
        }
        let quarantine_only = |r: &Result<(), MlqError>| {
            matches!(r, Ok(()) | Err(MlqError::FeedbackQuarantined { .. }))
        };
        if cpu.is_ok() && io.is_ok() {
            self.applied.inc();
        } else if !quarantine_only(&cpu) || !quarantine_only(&io) {
            // Quarantines are already counted by the guards themselves;
            // anything else (malformed point that slipped past the
            // producer, inner-model failure) is an apply error.
            self.apply_errors.inc();
        }
    }
}

/// Registry handles for the maintainer loop's own metrics.
struct MaintainerObs {
    /// Mirror of the `processed` atomic (`mlq_serve_processed`).
    processed_total: Counter,
    batch_size: Histogram,
    batch_nanos: Histogram,
    publishes: Counter,
    snapshot_age: Histogram,
}

impl MaintainerObs {
    fn new(registry: &Registry) -> Self {
        MaintainerObs {
            processed_total: registry.counter("mlq_serve_processed"),
            batch_size: registry.histogram("mlq_serve_batch_size"),
            batch_nanos: registry.histogram("mlq_serve_batch_apply_nanos"),
            publishes: registry.counter("mlq_serve_publishes"),
            snapshot_age: registry.histogram("mlq_serve_snapshot_age_nanos"),
        }
    }
}

/// One shard's durable-side state, index-aligned with
/// [`MaintainerCore::shards`].
struct ShardDurability {
    wal: WalWriter,
    /// Newest published checkpoint generation.
    generation: u64,
    appended: Counter,
    synced_gauge: Gauge,
    checkpoints: Counter,
}

/// The maintainer's durability engine: journals every drained batch
/// before it is applied, group-commits once per touched shard per batch,
/// checkpoints on a batch cadence, and trips a circuit breaker into
/// in-memory-only serving when persistence keeps failing.
struct DurabilityCore {
    dir: PathBuf,
    checkpoint_every: u64,
    degrade_after: u32,
    io: DurabilityIo,
    shards: Vec<ShardDurability>,
    shared: Arc<DurabilityShared>,
    commits: Counter,
    commit_retries: Counter,
    checkpoint_failures: Counter,
    degraded_gauge: Gauge,
    /// Consecutive failed durable operations (commits, checkpoints,
    /// truncations), each already retried per the [`RetryPolicy`]
    /// (crate::wal::RetryPolicy). Reset by any success.
    failure_streak: u32,
    batches_since_checkpoint: u64,
}

impl DurabilityCore {
    /// Whether durable I/O should still be attempted.
    fn active(&self) -> bool {
        !self.io.crashed() && self.shared.status() == DurabilityStatus::Active
    }

    fn degrade(&mut self) {
        self.shared.set_status(DurabilityStatus::Degraded);
        self.degraded_gauge.set(1.0);
    }

    fn crash(&mut self) {
        self.shared.set_status(DurabilityStatus::Crashed);
    }

    fn note_failure(&mut self, err: MlqError) {
        self.shared.set_error(err.to_string());
        self.failure_streak += 1;
        if self.failure_streak >= self.degrade_after {
            self.degrade();
        }
    }

    /// Journals one drained batch and group-commits every shard with
    /// pending frames — one write and one fsync per touched shard, no
    /// matter how many observations the batch held. Runs *before* the
    /// records are applied to the models.
    fn journal(&mut self, batch: &[Feedback]) {
        if !self.active() {
            return;
        }
        for fb in batch {
            if let Some(sd) = self.shards.get_mut(fb.shard) {
                sd.wal.append(&fb.point, fb.cost);
                sd.appended.inc();
            }
        }
        for idx in 0..self.shards.len() {
            if !self.active() {
                return;
            }
            if self.shards[idx].wal.has_pending() {
                self.commit_shard(idx);
            }
        }
    }

    fn commit_shard(&mut self, idx: usize) {
        let outcome = self.shards[idx].wal.commit(&mut self.io);
        self.commit_retries.add(self.io.take_retries());
        match outcome {
            Ok(()) => {
                self.commits.inc();
                self.failure_streak = 0;
                let seq = self.shards[idx].wal.synced_seq();
                self.shared.set_synced(idx, seq);
                self.shards[idx].synced_gauge.set(seq as f64);
            }
            Err(WalError::Crashed) => self.crash(),
            Err(WalError::Io(err)) => self.note_failure(err),
        }
    }

    /// Batch-cadence bookkeeping; checkpoints every shard once
    /// `checkpoint_every` batches have been applied (`0` disables the
    /// periodic cadence — startup and shutdown still checkpoint).
    fn after_batch(&mut self, shards: &[ShardModels]) {
        if self.checkpoint_every == 0 || !self.active() {
            return;
        }
        self.batches_since_checkpoint += 1;
        if self.batches_since_checkpoint < self.checkpoint_every {
            return;
        }
        self.batches_since_checkpoint = 0;
        self.checkpoint_all(shards);
    }

    fn checkpoint_all(&mut self, shards: &[ShardModels]) {
        for (idx, shard) in shards.iter().enumerate().take(self.shards.len()) {
            if !self.active() {
                return;
            }
            self.checkpoint_shard(idx, shard);
        }
    }

    /// Establishes the recovery baseline at build time: a fresh
    /// checkpoint per shard followed by journal truncation. The on-disk
    /// journal stays untouched until the checkpoint covering it has
    /// published, so a crash mid-startup still recovers from the old
    /// state. A shard that cannot establish its baseline makes journaling
    /// unsafe, so any startup failure degrades the layer immediately
    /// rather than waiting for the runtime streak.
    fn startup(&mut self, shards: &[ShardModels]) {
        self.checkpoint_all(shards);
        if self.failure_streak > 0 && self.shared.status() == DurabilityStatus::Active {
            self.degrade();
        }
    }

    fn checkpoint_shard(&mut self, idx: usize, shard: &ShardModels) {
        // A hibernated shard's live trees are empty stand-ins; its real
        // state is the spilled envelopes. Checkpointing the stand-in
        // would clobber the durable baseline with an empty model, and
        // the shard cannot have unjournaled feedback (feedback wakes it
        // before applying), so skipping is safe.
        if shard.hibernated.is_some() {
            return;
        }
        // Anything still buffered must become durable first: a checkpoint
        // must never claim a sequence number the journal could not.
        if self.shards[idx].wal.has_pending() {
            self.commit_shard(idx);
        }
        if !self.active() {
            return;
        }
        let wal = &self.shards[idx].wal;
        if wal.synced_seq() != wal.appended_seq() {
            return;
        }
        let seq = wal.synced_seq();
        let generation = self.shards[idx].generation + 1;
        let outcome = write_checkpoint(
            &mut self.io,
            &self.dir,
            &shard.name,
            generation,
            seq,
            shard.cpu.inner(),
            shard.io.inner(),
            &shard.cpu.export_state(),
            &shard.io.export_state(),
        );
        self.commit_retries.add(self.io.take_retries());
        match outcome {
            Ok(()) => {
                self.shards[idx].generation = generation;
                self.shards[idx].checkpoints.inc();
                self.failure_streak = 0;
                match self.shards[idx].wal.truncate(&mut self.io) {
                    Ok(()) => prune_generations(&self.dir, &shard.name, generation),
                    Err(WalError::Crashed) => self.crash(),
                    Err(WalError::Io(err)) => self.note_failure(err),
                }
            }
            Err(WalError::Crashed) => self.crash(),
            Err(WalError::Io(err)) => {
                self.checkpoint_failures.inc();
                self.note_failure(err);
            }
        }
    }
}

/// Registry handles for the fleet arbiter's `mlq_catalog_*` series —
/// named after the optimizer-catalog arbiter they mirror, so a fleet
/// served either way exposes one metric surface.
struct FleetObs {
    global_budget: Gauge,
    live_bytes: Gauge,
    cold_bytes: Gauge,
    hibernated_models: Gauge,
    arbitrations: Counter,
    evicted_leaves: Counter,
    evicted_bytes: Counter,
    hibernations: Counter,
    restores: Counter,
    budget_overruns: Counter,
}

impl FleetObs {
    fn new(registry: &Registry, global_budget: usize) -> Self {
        let obs = FleetObs {
            global_budget: registry.gauge("mlq_catalog_global_budget_bytes"),
            live_bytes: registry.gauge("mlq_catalog_live_bytes"),
            cold_bytes: registry.gauge("mlq_catalog_cold_bytes"),
            hibernated_models: registry.gauge("mlq_catalog_hibernated_models"),
            arbitrations: registry.counter("mlq_catalog_arbitrations"),
            evicted_leaves: registry.counter("mlq_catalog_evicted_leaves"),
            evicted_bytes: registry.counter("mlq_catalog_evicted_bytes"),
            hibernations: registry.counter("mlq_catalog_hibernations"),
            restores: registry.counter("mlq_catalog_restores"),
            budget_overruns: registry.counter("mlq_catalog_budget_overruns"),
        };
        obs.global_budget.set(global_budget as f64);
        obs
    }
}

/// What one fleet arbitration round did. Exposed through
/// [`ConcurrentEstimator::last_arbitration`] so a deterministic harness
/// can assert the budget invariant after every step.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetArbitration {
    /// Arbitration round number (1 = the first round after build).
    pub round: u64,
    /// Per-shard read-counter deltas since the previous round, in shard
    /// name order — the traffic that weighted this round's eviction.
    pub traffic: Vec<u64>,
    /// Sum of [`traffic`](Self::traffic).
    pub traffic_total: u64,
    /// Shards hibernated during this round, by name.
    pub hibernated: Vec<String>,
    /// Leaves evicted by this round's cross-model pass.
    pub evicted_leaves: usize,
    /// Bytes freed by this round's cross-model pass.
    pub evicted_bytes: usize,
    /// Summed accounted bytes of all live (non-hibernated) models after
    /// the round.
    pub live_bytes: usize,
    /// Whether `live_bytes <= global_budget` held after the round.
    pub fit: bool,
}

/// The maintainer-side state of fleet arbitration.
struct FleetCore {
    config: FleetConfig,
    /// Clones of the service's per-shard `mlq_serve_reads` handles,
    /// index-aligned with [`MaintainerCore::shards`].
    reads: Vec<Counter>,
    /// The previous round's traffic snapshot (read-counter totals).
    last_reads: Vec<u64>,
    /// Consecutive traffic-free rounds per shard.
    cold_rounds: Vec<u32>,
    /// Reader-side wake requests (set by a predict call that hit a
    /// hibernated stand-in under [`MaintainerMode::Background`]);
    /// serviced at the start of every arbitration round.
    wake: Arc<Vec<AtomicBool>>,
    round: u64,
    last: Option<FleetArbitration>,
    obs: FleetObs,
}

/// Everything one drain → apply → republish step needs. Owned by the
/// background thread under [`MaintainerMode::Background`], or parked
/// inside the estimator and driven by [`ConcurrentEstimator::step`] under
/// [`MaintainerMode::Manual`].
struct MaintainerCore {
    shards: Vec<ShardModels>,
    touched: Vec<bool>,
    last_publish: Vec<Instant>,
    io_weight: f64,
    batch_max: usize,
    processed: Arc<AtomicU64>,
    obs: MaintainerObs,
    trace: Option<Arc<TraceRing>>,
    durability: Option<DurabilityCore>,
    fleet: Option<FleetCore>,
}

impl MaintainerCore {
    /// Applies one drained batch and republishes every touched shard.
    /// Returns the number of observations consumed.
    fn apply_batch(
        &mut self,
        batch: Vec<Feedback>,
        published: &[RwLock<Arc<ShardSnapshot>>],
    ) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let trace = self.trace.clone();
        let _span = trace.as_ref().map(|ring| ring.span("serve.apply_batch"));
        let start = Instant::now();
        let n = batch.len();
        self.obs.batch_size.record(n as u64);
        // Write-ahead: the batch is journaled and group-committed before
        // any of it reaches a model. A crash from here on loses only
        // what the journal never acknowledged.
        if let Some(dur) = self.durability.as_mut() {
            dur.journal(&batch);
        }
        for fb in batch {
            // Feedback for a hibernated shard wakes it first: the
            // stand-in trees must never absorb observations the real
            // (spilled) models would miss on restore.
            if self.shards.get(fb.shard).is_some_and(|s| s.hibernated.is_some()) {
                self.wake_one(fb.shard, published);
            }
            if let Some(shard) = self.shards.get_mut(fb.shard) {
                shard.apply(&fb.point, fb.cost);
                self.touched[fb.shard] = true;
            }
        }
        for idx in 0..self.touched.len() {
            if self.touched[idx] {
                self.publish(idx, published);
                self.touched[idx] = false;
            }
        }
        if let Some(dur) = self.durability.as_mut() {
            dur.after_batch(&self.shards);
        }
        self.obs.batch_nanos.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        // Republish-then-count: once `processed` covers an observation,
        // its effect is visible to readers (the flush contract).
        let total = self.processed.fetch_add(n as u64, Ordering::Release) + n as u64;
        self.obs.processed_total.record_total(total);
        n
    }

    fn publish(&mut self, idx: usize, published: &[RwLock<Arc<ShardSnapshot>>]) {
        // How stale the outgoing snapshot had become by the time it was
        // replaced.
        let age = self.last_publish[idx].elapsed();
        *published[idx].write() = Arc::new(self.shards[idx].snapshot(self.io_weight));
        self.obs.publishes.inc();
        self.obs.snapshot_age.record(u64::try_from(age.as_nanos()).unwrap_or(u64::MAX));
        self.last_publish[idx] = Instant::now();
    }

    /// Final publication so shutdown reports the very last counters,
    /// plus the shutdown checkpoint so a clean restart replays nothing.
    fn final_publish(&mut self, published: &[RwLock<Arc<ShardSnapshot>>]) {
        // Hibernated shards come back first: the final snapshots (and
        // the shutdown checkpoint) must reflect the real models, not the
        // stand-ins.
        for idx in 0..self.shards.len() {
            self.wake_one(idx, published);
        }
        for idx in 0..self.shards.len() {
            self.publish(idx, published);
        }
        if let Some(dur) = self.durability.as_mut() {
            dur.checkpoint_all(&self.shards);
        }
    }

    /// Summed accounted bytes of every live (non-hibernated) shard's
    /// CPU and IO models — what the global budget constrains.
    fn live_bytes(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.hibernated.is_none())
            .map(|s| s.cpu.inner().bytes_used() + s.io.inner().bytes_used())
            .sum()
    }

    /// Summed envelope bytes of every hibernated shard.
    fn cold_bytes(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|s| s.hibernated.as_deref())
            .map(|h| h.cpu_env.len() + h.io_env.len())
            .sum()
    }

    /// Restores shard `idx` from hibernation (no-op when live). Safe to
    /// call whether or not fleet arbitration is configured.
    fn wake_one(&mut self, idx: usize, published: &[RwLock<Arc<ShardSnapshot>>]) {
        let Some(mut fleet) = self.fleet.take() else { return };
        self.restore_shard(idx, published, &mut fleet);
        self.fleet = Some(fleet);
    }

    /// Spills shard `idx`'s models to snapshot envelopes, installs empty
    /// stand-in trees, and publishes the hibernated stand-in snapshot.
    fn hibernate_shard(
        &mut self,
        idx: usize,
        published: &[RwLock<Arc<ShardSnapshot>>],
        fleet: &mut FleetCore,
    ) {
        let shard = &mut self.shards[idx];
        if shard.hibernated.is_some() {
            return;
        }
        let stub = |m: &GuardedModel<MemoryLimitedQuadtree>| {
            MemoryLimitedQuadtree::new(m.inner().config().clone())
        };
        let (Ok(cpu_stub), Ok(io_stub)) = (stub(&shard.cpu), stub(&shard.io)) else {
            // A live model's config is valid by construction, so this
            // cannot fail; stay live rather than lose state if it ever
            // does.
            shard.apply_errors.inc();
            return;
        };
        shard.hibernated = Some(Box::new(HibernatedShard {
            cpu_env: shard.cpu.inner().snapshot().to_envelope(),
            io_env: shard.io.inner().snapshot().to_envelope(),
            cpu_guard: shard.cpu.export_state(),
            io_guard: shard.io.export_state(),
        }));
        *shard.cpu.inner_mut() = cpu_stub;
        *shard.io.inner_mut() = io_stub;
        // The stand-ins carry fresh tree identities: the previous frozen
        // snapshots can never be patched against them.
        shard.prev_cpu = None;
        shard.prev_io = None;
        fleet.obs.hibernations.inc();
        self.publish(idx, published);
    }

    /// Restores shard `idx`'s models bit-identically from its hibernation
    /// envelopes and republishes a live snapshot. No-op when live.
    fn restore_shard(
        &mut self,
        idx: usize,
        published: &[RwLock<Arc<ShardSnapshot>>],
        fleet: &mut FleetCore,
    ) {
        let Some(shard) = self.shards.get_mut(idx) else { return };
        let Some(h) = shard.hibernated.take() else { return };
        let restore = |bytes: &[u8]| -> Result<MemoryLimitedQuadtree, MlqError> {
            MemoryLimitedQuadtree::from_snapshot(&TreeSnapshot::from_envelope(bytes)?)
        };
        match (restore(&h.cpu_env), restore(&h.io_env)) {
            (Ok(cpu), Ok(io)) => {
                *shard.cpu.inner_mut() = cpu;
                *shard.io.inner_mut() = io;
                shard.cpu.import_state(h.cpu_guard);
                shard.io.import_state(h.io_guard);
                shard.prev_cpu = None;
                shard.prev_io = None;
                fleet.cold_rounds[idx] = 0;
                fleet.obs.restores.inc();
                self.publish(idx, published);
            }
            _ => {
                // The envelopes were produced by this process from live
                // models, so decoding cannot fail; should it ever, keep
                // the envelopes for the next attempt and count the error.
                shard.hibernated = Some(h);
                shard.apply_errors.inc();
            }
        }
    }

    /// One fleet arbitration round (no-op without a fleet budget): wake
    /// requests, a single traffic snapshot, cold-shard hibernation, and
    /// — if the live models exceed the global budget — one cross-model
    /// traffic-weighted eviction pass. Runs on the maintainer thread
    /// after every applied batch, so eviction and hibernation stay off
    /// the read path.
    fn arbitrate(&mut self, published: &[RwLock<Arc<ShardSnapshot>>]) {
        let Some(mut fleet) = self.fleet.take() else { return };
        fleet.round += 1;
        // Reader wake requests first, so a woken shard's pending reads
        // count as this round's traffic below.
        for idx in 0..self.shards.len() {
            if fleet.wake[idx].swap(false, Ordering::AcqRel) {
                self.restore_shard(idx, published, &mut fleet);
            }
        }
        // One consistent traffic snapshot per round. Reading the live
        // atomics again mid-scan would hand later shards a longer
        // accounting window than earlier ones (the stale-counter bug
        // class `feedback_lag` fixed): a burst landing mid-arbitration
        // could make a genuinely hot shard look cold relative to shards
        // scanned later. Serve read counters are registry-owned and
        // monotonic across hibernation, so plain subtraction is exact.
        let now: Vec<u64> = fleet.reads.iter().map(Counter::get).collect();
        let traffic: Vec<u64> =
            now.iter().zip(&fleet.last_reads).map(|(n, l)| n.saturating_sub(*l)).collect();
        let traffic_total: u64 = traffic.iter().sum();
        fleet.last_reads = now;
        // Cold-streak bookkeeping, then hibernation of shards cold for
        // `hibernate_after` consecutive rounds.
        let mut hibernated = Vec::new();
        for (idx, &delta) in traffic.iter().enumerate() {
            if delta == 0 {
                fleet.cold_rounds[idx] = fleet.cold_rounds[idx].saturating_add(1);
            } else {
                fleet.cold_rounds[idx] = 0;
            }
            if fleet.config.hibernate_after > 0
                && fleet.cold_rounds[idx] >= fleet.config.hibernate_after
                && self.shards[idx].hibernated.is_none()
            {
                self.hibernate_shard(idx, published, &mut fleet);
                hibernated.push(self.shards[idx].name.clone());
            }
        }
        // Cross-model eviction over whatever is still live.
        let mut evicted_leaves = 0;
        let mut evicted_bytes = 0;
        let mut fit = true;
        if self.live_bytes() > fleet.config.global_budget {
            // All-cold rounds fall back to uniform weights: zeroing every
            // weight would collapse the eviction key and lose the SSEG
            // ordering entirely.
            let weight_of = |idx: usize| {
                if traffic_total == 0 {
                    1.0
                } else {
                    traffic[idx] as f64 / traffic_total as f64
                }
            };
            // Model slot -> shard index, for republication below.
            let mut slots = Vec::new();
            let mut models = Vec::new();
            for (idx, shard) in self.shards.iter_mut().enumerate() {
                if shard.hibernated.is_some() {
                    continue;
                }
                slots.push(idx);
                models.push(FleetModel { weight: weight_of(idx), model: shard.cpu.inner_mut() });
                slots.push(idx);
                models.push(FleetModel { weight: weight_of(idx), model: shard.io.inner_mut() });
            }
            match evict_to_global_budget(&mut models, fleet.config.global_budget) {
                Ok(report) => {
                    evicted_leaves = report.nodes_freed;
                    evicted_bytes = report.bytes_freed;
                    fit = report.fit;
                    drop(models);
                    let mut touched = vec![false; self.shards.len()];
                    for (slot, pm) in report.per_model.iter().enumerate() {
                        if pm.nodes_freed > 0 {
                            touched[slots[slot]] = true;
                        }
                    }
                    for (idx, shrunk) in touched.into_iter().enumerate() {
                        if shrunk {
                            self.publish(idx, published);
                        }
                    }
                }
                // Weights are finite fractions by construction; treat a
                // rejection as an overrun rather than dropping state.
                Err(_) => fit = false,
            }
        }
        let live_bytes = self.live_bytes();
        fit = fit && live_bytes <= fleet.config.global_budget;
        if !fit {
            fleet.obs.budget_overruns.inc();
        }
        fleet.obs.arbitrations.inc();
        fleet.obs.evicted_leaves.add(evicted_leaves as u64);
        fleet.obs.evicted_bytes.add(evicted_bytes as u64);
        fleet.obs.live_bytes.set(live_bytes as f64);
        fleet.obs.cold_bytes.set(self.cold_bytes() as f64);
        fleet
            .obs
            .hibernated_models
            .set(self.shards.iter().filter(|s| s.hibernated.is_some()).count() as f64);
        fleet.last = Some(FleetArbitration {
            round: fleet.round,
            traffic,
            traffic_total,
            hibernated,
            evicted_leaves,
            evicted_bytes,
            live_bytes,
            fit,
        });
        self.fleet = Some(fleet);
    }
}

/// A shard about to be built: registered fresh, or reconstructed from
/// the durability directory.
struct PendingShard {
    name: String,
    cpu: MemoryLimitedQuadtree,
    io: MemoryLimitedQuadtree,
    guards: Option<(GuardState, GuardState)>,
    replay: Vec<WalRecord>,
    checkpoint_seq: u64,
    recovered_seq: u64,
    generation: u64,
    kind: RestoreKind,
    detail: String,
}

impl PendingShard {
    fn fresh(name: String, cpu: MemoryLimitedQuadtree, io: MemoryLimitedQuadtree) -> Self {
        PendingShard {
            name,
            cpu,
            io,
            guards: None,
            replay: Vec::new(),
            checkpoint_seq: 0,
            recovered_seq: 0,
            generation: 0,
            kind: RestoreKind::Fresh,
            detail: String::new(),
        }
    }
}

/// The builder's standard model recipe (`β = 1` CPU, `β = 10` IO, lazy
/// insertion), shared with the replication layer so a replica group's
/// merge base is configured identically to its replicas' live models.
pub(crate) fn catalog_models(
    space: &Space,
    budget_per_model: usize,
) -> Result<(MemoryLimitedQuadtree, MemoryLimitedQuadtree), MlqError> {
    let build = |beta: u64| -> Result<MemoryLimitedQuadtree, MlqError> {
        let floor = MlqConfig::min_budget(space, 6);
        let config = MlqConfig::builder(space.clone())
            .memory_budget(budget_per_model.max(floor))
            .strategy(InsertionStrategy::Lazy { alpha: 0.05 })
            .beta(beta)
            .build()?;
        MemoryLimitedQuadtree::new(config)
    };
    Ok((build(1)?, build(10)?))
}

/// Incrementally registers UDF shards, then spawns the service.
pub struct ConcurrentEstimatorBuilder {
    config: ServeConfig,
    models: Vec<(String, MemoryLimitedQuadtree, MemoryLimitedQuadtree)>,
    registry: Option<Arc<Registry>>,
    trace: Option<Arc<TraceRing>>,
    durability: Option<DurabilityConfig>,
    delta_budget: Option<usize>,
}

impl ConcurrentEstimatorBuilder {
    /// Starts a builder with `config`.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        ConcurrentEstimatorBuilder {
            config,
            models: Vec::new(),
            registry: None,
            trace: None,
            durability: None,
            delta_budget: None,
        }
    }

    /// Enables crash-safe serving under `dir` with default
    /// [`DurabilityConfig`] settings: [`build`](Self::build) recovers
    /// whatever the directory holds, and the maintainer journals feedback
    /// and checkpoints from then on.
    #[must_use]
    pub fn with_durability(self, dir: impl Into<PathBuf>) -> Self {
        self.with_durability_config(DurabilityConfig::new(dir))
    }

    /// Enables crash-safe serving with explicit durability settings
    /// (checkpoint cadence, retry policy, fault injection, crash hooks).
    #[must_use]
    pub fn with_durability_config(mut self, config: DurabilityConfig) -> Self {
        self.durability = Some(config);
        self
    }

    /// Records metrics into `registry` instead of a private one — lets an
    /// embedding application (or the bench harness) aggregate serving
    /// metrics with its own in a single exposition.
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Traces maintainer batches (span `serve.apply_batch`) into `ring`.
    #[must_use]
    pub fn with_trace_ring(mut self, ring: Arc<TraceRing>) -> Self {
        self.trace = Some(ring);
        self
    }

    /// Enables per-shard delta tracking for replication: every absorbed
    /// observation is also recorded into a shadow
    /// [`DeltaTracker`] (per component, each with
    /// `delta_budget` bytes), so an anti-entropy round can extract what
    /// this service learned since the last sync via
    /// [`ConcurrentEstimator::take_deltas`] and install merged models via
    /// [`ConcurrentEstimator::install_models`]. Both require
    /// [`MaintainerMode::Manual`].
    ///
    /// Observations replayed from a durability directory at build time
    /// are *not* recorded — a recovered replica's pre-crash state counts
    /// as already synced (see DESIGN.md §12 for the trade-off).
    #[must_use]
    pub fn with_delta_tracking(mut self, delta_budget: usize) -> Self {
        self.delta_budget = Some(delta_budget);
        self
    }

    /// Registers a fresh UDF shard over `space`, using the catalog's model
    /// recipe (`β = 1` CPU, `β = 10` IO, lazy insertion).
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for duplicate names; propagates model
    /// construction failures.
    pub fn register(self, name: &str, space: &Space) -> Result<Self, MlqError> {
        let (cpu, io) = catalog_models(space, self.config.budget_per_model)?;
        self.register_models(name, cpu, io)
    }

    /// Registers a UDF shard seeded with already-learned models (e.g.
    /// handed over from a [`UdfCatalog`]).
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for duplicate names.
    pub fn register_models(
        mut self,
        name: &str,
        cpu: MemoryLimitedQuadtree,
        io: MemoryLimitedQuadtree,
    ) -> Result<Self, MlqError> {
        if self.models.iter().any(|(n, _, _)| n == name) {
            return Err(MlqError::InvalidConfig {
                reason: format!("UDF {name} is already registered"),
            });
        }
        self.models.push((name.to_string(), cpu, io));
        Ok(self)
    }

    /// Wraps every model in its guard, publishes initial snapshots, and
    /// spawns the maintainer thread.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] when nothing is registered or the
    /// configuration is nonsensical.
    pub fn build(self) -> Result<ConcurrentEstimator, MlqError> {
        let ConcurrentEstimatorBuilder {
            config,
            models,
            registry,
            trace,
            durability,
            delta_budget,
        } = self;
        config.validate()?;
        if let Some(dconfig) = &durability {
            dconfig.validate()?;
        }
        let registry = registry.unwrap_or_else(|| Arc::new(Registry::new()));

        let mut pending: Vec<PendingShard> =
            models.into_iter().map(|(name, cpu, io)| PendingShard::fresh(name, cpu, io)).collect();
        let mut report = RecoveryReport::default();

        // Recovery: disk state replaces (or adds to) same-name registered
        // shards; the checkpointed trees carry their own configuration.
        let mut dur_io = None;
        if let Some(dconfig) = &durability {
            std::fs::create_dir_all(&dconfig.dir).map_err(|e| MlqError::IoFault {
                reason: format!("durability dir create {}: {e}", dconfig.dir.display()),
            })?;
            dur_io = Some(DurabilityIo::new(dconfig)?);
            let recovered = recover_dir(&dconfig.dir)?;
            for shard in recovered.shards {
                let replayed = shard.records.len() as u64;
                let p = PendingShard {
                    name: shard.name,
                    cpu: shard.cpu,
                    io: shard.io,
                    guards: Some((shard.cpu_guard, shard.io_guard)),
                    replay: shard.records,
                    checkpoint_seq: shard.checkpoint_seq,
                    recovered_seq: shard.checkpoint_seq + replayed,
                    generation: shard.generation,
                    kind: shard.kind,
                    detail: shard.detail,
                };
                match pending.iter_mut().find(|e| e.name == p.name) {
                    Some(existing) => *existing = p,
                    None => pending.push(p),
                }
            }
            for (stem, reason) in recovered.unreadable {
                match pending.iter_mut().find(|e| shard_stem(&e.name) == stem) {
                    Some(existing) => {
                        existing.kind = RestoreKind::CorruptRecovered;
                        existing.detail = format!(
                            "every generation failed verification ({reason}); serving fresh"
                        );
                    }
                    None => report.shards.push(ShardRecovery {
                        name: stem,
                        kind: RestoreKind::CorruptRecovered,
                        checkpoint_seq: 0,
                        replayed: 0,
                        recovered_seq: 0,
                        detail: format!("unreadable and not registered; not serving ({reason})"),
                    }),
                }
            }
        }

        if pending.is_empty() {
            return Err(MlqError::InvalidConfig {
                reason: "a concurrent estimator needs at least one registered UDF".into(),
            });
        }
        // Shards are ordered by name, like the catalog.
        pending.sort_by(|a, b| a.name.cmp(&b.name));

        let mut shards = Vec::with_capacity(pending.len());
        let mut names = BTreeMap::new();
        let mut reads = Vec::with_capacity(pending.len());
        let mut dur_shards = Vec::new();
        for (idx, p) in pending.into_iter().enumerate() {
            names.insert(p.name.clone(), idx);
            reads.push(registry.counter(&labeled("mlq_serve_reads", &[("udf", &p.name)])));
            let mut cpu = GuardedModel::for_quadtree(p.cpu, config.guard)?;
            let mut io = GuardedModel::for_quadtree(p.io, config.guard)?;
            if let Some((cpu_state, io_state)) = p.guards {
                cpu.import_state(cpu_state);
                io.import_state(io_state);
            }
            let mut shard = ShardModels::new(p.name.clone(), cpu, io, &registry);
            // Replay runs through the normal guarded-apply path with the
            // imported guard states, so every quarantine and breaker
            // decision repeats exactly as it happened live.
            for rec in &p.replay {
                shard.apply(&rec.point, rec.cost);
            }
            // Trackers attach only after replay: recovered observations
            // count as already synced to the replica group.
            if let Some(budget) = delta_budget {
                shard.deltas = Some(Box::new((
                    DeltaTracker::for_model(shard.cpu.inner(), budget)?,
                    DeltaTracker::for_model(shard.io.inner(), budget)?,
                )));
            }
            if let Some(dconfig) = &durability {
                registry
                    .counter(&labeled(
                        "mlq_serve_restore_outcome",
                        &[("udf", &p.name), ("outcome", p.kind.label())],
                    ))
                    .inc();
                report.shards.push(ShardRecovery {
                    name: p.name.clone(),
                    kind: p.kind,
                    checkpoint_seq: p.checkpoint_seq,
                    replayed: p.replay.len() as u64,
                    recovered_seq: p.recovered_seq,
                    detail: if p.detail.is_empty() {
                        "no durable state found".to_string()
                    } else {
                        p.detail
                    },
                });
                let wal_labels = [("udf", p.name.as_str())];
                dur_shards.push(ShardDurability {
                    wal: WalWriter::open_preserving(
                        wal_path(&dconfig.dir, &p.name),
                        p.recovered_seq,
                    )?,
                    generation: p.generation,
                    appended: registry
                        .counter(&labeled("mlq_serve_wal_appended_records", &wal_labels)),
                    synced_gauge: registry.gauge(&labeled("mlq_serve_wal_synced_seq", &wal_labels)),
                    checkpoints: registry.counter(&labeled("mlq_serve_checkpoints", &wal_labels)),
                });
            }
            shards.push(shard);
        }
        report.shards.sort_by(|a, b| a.name.cmp(&b.name));

        let mut shared = None;
        let durability_core = match (durability, dur_io) {
            (Some(dconfig), Some(io)) => {
                let core_shared = Arc::new(DurabilityShared::new(shards.len()));
                shared = Some(Arc::clone(&core_shared));
                let degraded_gauge = registry.gauge("mlq_serve_durability_degraded");
                degraded_gauge.set(0.0);
                let mut core = DurabilityCore {
                    dir: dconfig.dir,
                    checkpoint_every: dconfig.checkpoint_every,
                    degrade_after: dconfig.degrade_after,
                    io,
                    shards: dur_shards,
                    shared: core_shared,
                    commits: registry.counter("mlq_serve_wal_commits"),
                    commit_retries: registry.counter("mlq_serve_wal_commit_retries"),
                    checkpoint_failures: registry.counter("mlq_serve_checkpoint_failures"),
                    degraded_gauge,
                    failure_streak: 0,
                    batches_since_checkpoint: 0,
                };
                for (idx, sd) in core.shards.iter().enumerate() {
                    core.shared.set_synced(idx, sd.wal.synced_seq());
                    sd.synced_gauge.set(sd.wal.synced_seq() as f64);
                }
                core.startup(&shards);
                Some(core)
            }
            _ => None,
        };

        let published: Arc<Vec<RwLock<Arc<ShardSnapshot>>>> = Arc::new(
            shards
                .iter_mut()
                .map(|s| RwLock::new(Arc::new(s.snapshot(config.io_weight))))
                .collect(),
        );
        let queue =
            Arc::new(FeedbackQueue::new(config.queue_capacity, QueueMetrics::new(&registry)));
        let processed = Arc::new(AtomicU64::new(0));

        let shard_count = shards.len();
        let wake: Option<Arc<Vec<AtomicBool>>> = config
            .fleet
            .map(|_| Arc::new((0..shard_count).map(|_| AtomicBool::new(false)).collect()));
        let fleet_core = config.fleet.map(|fleet| FleetCore {
            config: fleet,
            reads: reads.clone(),
            last_reads: vec![0; shard_count],
            cold_rounds: vec![0; shard_count],
            wake: Arc::clone(wake.as_ref().expect("wake flags exist whenever fleet does")),
            round: 0,
            last: None,
            obs: FleetObs::new(&registry, fleet.global_budget),
        });
        let mut core = MaintainerCore {
            shards,
            touched: vec![false; shard_count],
            last_publish: vec![Instant::now(); shard_count],
            io_weight: config.io_weight,
            batch_max: config.batch_max,
            processed: Arc::clone(&processed),
            obs: MaintainerObs::new(&registry),
            trace,
            durability: durability_core,
            fleet: fleet_core,
        };
        // The initial publications above bypass `core.publish`, so
        // `mlq_serve_publishes` counts only feedback-driven republications.

        let state = match config.maintainer {
            MaintainerMode::Background => {
                let queue = Arc::clone(&queue);
                let published = Arc::clone(&published);
                let handle = thread::Builder::new()
                    .name("mlq-serve-maintainer".into())
                    .spawn(move || {
                        loop {
                            let (batch, finished) =
                                queue.drain(core.batch_max, Duration::from_millis(20));
                            if finished {
                                break;
                            }
                            core.apply_batch(batch, &published);
                            // Arbitration runs every loop iteration, not
                            // just after non-empty batches: idle rounds
                            // must tick so cold streaks accumulate and
                            // reader wake requests are serviced promptly
                            // (each within one ≤20 ms drain timeout).
                            core.arbitrate(&published);
                        }
                        core.final_publish(&published);
                    })
                    .map_err(|e| MlqError::IoFault {
                        reason: format!("spawning maintainer thread: {e}"),
                    })?;
                MaintainerState::Background(handle)
            }
            MaintainerMode::Manual => MaintainerState::Manual(Box::new(core)),
        };

        Ok(ConcurrentEstimator {
            names,
            published,
            reads,
            queue,
            processed,
            backpressure: config.backpressure,
            registry,
            maintainer: Mutex::new(Some(state)),
            durability: shared,
            recovery: report,
            wake,
        })
    }
}

/// Where maintenance runs for a live service.
enum MaintainerState {
    Background(JoinHandle<()>),
    Manual(Box<MaintainerCore>),
}

/// A sharded, concurrently readable estimator service over every
/// registered UDF. See the [module documentation](self).
pub struct ConcurrentEstimator {
    names: BTreeMap<String, usize>,
    published: Arc<Vec<RwLock<Arc<ShardSnapshot>>>>,
    /// Per-shard `mlq_serve_reads{udf=...}` counters: predictions served
    /// from published snapshots. Bumped once per call on the single-point
    /// path and once per *batch* on the batched path.
    reads: Vec<Counter>,
    queue: Arc<FeedbackQueue>,
    /// Observations fully applied and republished by the maintainer.
    processed: Arc<AtomicU64>,
    backpressure: BackpressurePolicy,
    registry: Arc<Registry>,
    maintainer: Mutex<Option<MaintainerState>>,
    /// Shared durability state (`None` when built without durability).
    durability: Option<Arc<DurabilityShared>>,
    /// What startup recovery did, per shard (empty without durability).
    recovery: RecoveryReport,
    /// Per-shard wake flags (`None` without a fleet budget): a reader
    /// hitting a hibernated stand-in sets its shard's flag and the
    /// maintainer restores the shard on its next arbitration round.
    wake: Option<Arc<Vec<AtomicBool>>>,
}

/// One shard's extracted feedback delta: everything the service absorbed
/// for that shard since the previous [`ConcurrentEstimator::take_deltas`]
/// call (or since build). Returned in shard name order.
#[derive(Debug)]
pub struct ShardDelta {
    /// Shard (UDF) name.
    pub name: String,
    /// Delta over the CPU component.
    pub cpu: MemoryLimitedQuadtree,
    /// Delta over the IO component.
    pub io: MemoryLimitedQuadtree,
    /// Observations the delta holds (max over the two components — they
    /// only diverge when a guard quarantined one component but not the
    /// other).
    pub observations: u64,
}

/// Final accounting returned by [`ConcurrentEstimator::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-shard counters at shutdown, in name order.
    pub shards: Vec<(String, ShardCounters)>,
    /// Queue counters at shutdown.
    pub queue: QueueCounters,
    /// Full registry snapshot at shutdown — every `mlq_serve_*` metric
    /// (plus whatever else shares the registry).
    pub metrics: RegistrySnapshot,
}

impl ConcurrentEstimator {
    /// Shorthand for [`ConcurrentEstimatorBuilder::new`].
    #[must_use]
    pub fn builder(config: ServeConfig) -> ConcurrentEstimatorBuilder {
        ConcurrentEstimatorBuilder::new(config)
    }

    /// Builds the service from an optimizer catalog, taking ownership of
    /// its learned per-UDF models — the serving layer's shards are keyed
    /// exactly like the catalog.
    ///
    /// # Errors
    ///
    /// Propagates builder errors (e.g. an empty catalog).
    pub fn from_catalog(catalog: UdfCatalog, config: ServeConfig) -> Result<Self, MlqError> {
        let mut builder = ConcurrentEstimatorBuilder::new(config);
        for (name, cpu, io) in catalog.into_models() {
            builder = builder.register_models(&name, cpu, io)?;
        }
        builder.build()
    }

    /// Builds a service by recovering everything a durability directory
    /// holds: per shard, the newest valid checkpoint plus the journal
    /// tail replayed on top. Shorthand for
    /// `builder(config).with_durability(dir).build()`; use the builder
    /// form to also register shards the directory does not know yet.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] when the directory yields no shard
    /// (nothing was ever checkpointed there); propagates I/O errors
    /// listing the directory. Corrupt content is not an error — it
    /// surfaces in the [`recovery_report`](Self::recovery_report).
    pub fn recover(dir: impl Into<PathBuf>, config: ServeConfig) -> Result<Self, MlqError> {
        Self::builder(config).with_durability(dir).build()
    }

    /// Health of the durability layer: [`DurabilityStatus::Disabled`]
    /// when the service was built without one.
    #[must_use]
    pub fn durability_status(&self) -> DurabilityStatus {
        self.durability.as_ref().map_or(DurabilityStatus::Disabled, |s| s.status())
    }

    /// The most recent persistence failure, if any — what tripped (or is
    /// about to trip) the durability circuit breaker.
    #[must_use]
    pub fn durability_error(&self) -> Option<String> {
        self.durability.as_ref().and_then(|s| s.error())
    }

    /// Highest sequence number of `name`'s feedback known durable: every
    /// observation up to it survives a crash. Always `0` without
    /// durability.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for unknown names.
    pub fn durable_seq(&self, name: &str) -> Result<u64, MlqError> {
        let idx = self.shard_index(name)?;
        Ok(self.durability.as_ref().map_or(0, |s| s.synced(idx)))
    }

    /// What startup recovery did, per shard. Empty without durability.
    #[must_use]
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Registered UDF names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.names.keys().map(String::as_str).collect()
    }

    fn shard_index(&self, name: &str) -> Result<usize, MlqError> {
        self.names.get(name).copied().ok_or_else(|| MlqError::InvalidConfig {
            reason: format!("no UDF named {name} is registered"),
        })
    }

    pub(crate) fn snapshot_at(&self, shard: usize) -> Arc<ShardSnapshot> {
        Arc::clone(&self.published[shard].read())
    }

    /// [`Self::snapshot_at`], waking the shard first if fleet arbitration
    /// hibernated it. Callers must bump the shard's read counter *before*
    /// calling: the wake itself is the traffic signal that keeps the
    /// restored shard from being counted cold again next round.
    fn live_snapshot_at(&self, shard: usize) -> Arc<ShardSnapshot> {
        let snap = self.snapshot_at(shard);
        if self.wake.is_none() || !snap.is_hibernated() {
            return snap;
        }
        self.wake_shard(shard);
        self.snapshot_at(shard)
    }

    /// Blocks until `shard` is restored from hibernation. Under
    /// [`MaintainerMode::Manual`] the calling thread restores it inline;
    /// under [`MaintainerMode::Background`] it raises the shard's wake
    /// flag and waits for the maintainer (which services flags at least
    /// once per ≤20 ms drain timeout) to republish a live snapshot.
    fn wake_shard(&self, shard: usize) {
        loop {
            {
                let mut guard = self.maintainer.lock().unwrap_or_else(PoisonError::into_inner);
                match guard.as_mut() {
                    Some(MaintainerState::Manual(core)) => {
                        core.wake_one(shard, &self.published);
                        return;
                    }
                    Some(MaintainerState::Background(_)) => {
                        if let Some(wake) = &self.wake {
                            wake[shard].store(true, Ordering::Release);
                        }
                    }
                    // Shut down: final_publish already restored every
                    // shard, so the published snapshot is live.
                    None => return,
                }
            }
            if !self.snapshot_at(shard).is_hibernated() {
                return;
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// True when fleet arbitration currently has `name` hibernated.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for unknown names.
    pub fn is_hibernated(&self, name: &str) -> Result<bool, MlqError> {
        Ok(self.snapshot_at(self.shard_index(name)?).is_hibernated())
    }

    /// The most recent fleet arbitration round's report, or `None`
    /// before the first round.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] unless the service was built with
    /// [`MaintainerMode::Manual`] and a [`FleetConfig`], and is still
    /// live.
    pub fn last_arbitration(&self) -> Result<Option<FleetArbitration>, MlqError> {
        let mut guard = self.maintainer.lock().unwrap_or_else(PoisonError::into_inner);
        match guard.as_mut() {
            Some(MaintainerState::Manual(core)) => match &core.fleet {
                Some(fleet) => Ok(fleet.last.clone()),
                None => Err(MlqError::InvalidConfig {
                    reason: "last_arbitration() requires a fleet budget at build time".into(),
                }),
            },
            _ => Err(MlqError::InvalidConfig {
                reason: "last_arbitration() requires MaintainerMode::Manual on a live service"
                    .into(),
            }),
        }
    }

    /// Exact summed accounted bytes of every live (non-hibernated)
    /// shard's models, read under the maintainer lock — the quantity the
    /// fleet budget constrains.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] unless the service was built with
    /// [`MaintainerMode::Manual`] and is still live.
    pub fn fleet_live_bytes(&self) -> Result<usize, MlqError> {
        let mut guard = self.maintainer.lock().unwrap_or_else(PoisonError::into_inner);
        match guard.as_mut() {
            Some(MaintainerState::Manual(core)) => Ok(core.live_bytes()),
            _ => Err(MlqError::InvalidConfig {
                reason: "fleet_live_bytes() requires MaintainerMode::Manual on a live service"
                    .into(),
            }),
        }
    }

    /// The current published snapshot for `name`. Readers that predict
    /// many points in a row should fetch once and reuse the `Arc` — the
    /// snapshot stays internally consistent however long it is held.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for unknown names.
    pub fn snapshot(&self, name: &str) -> Result<Arc<ShardSnapshot>, MlqError> {
        Ok(self.snapshot_at(self.shard_index(name)?))
    }

    /// Predicted combined cost for `name` at `point` from the current
    /// snapshot.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for unknown names; propagates
    /// malformed-point errors.
    pub fn predict(&self, name: &str, point: &[f64]) -> Result<Option<f64>, MlqError> {
        let shard = self.shard_index(name)?;
        self.reads[shard].inc();
        self.live_snapshot_at(shard).predict(point)
    }

    pub(crate) fn predict_batch_at<P: AsRef<[f64]>>(
        &self,
        shard: usize,
        points: &[P],
    ) -> Result<Vec<Option<f64>>, MlqError> {
        // One Arc load and one metrics update cover the whole batch —
        // the per-call overhead the single-point path pays per prediction.
        self.reads[shard].add(points.len() as u64);
        self.live_snapshot_at(shard).predict_batch(points)
    }

    /// Predicted combined costs for `name` at every point in `points`,
    /// all answered from one consistent snapshot. The snapshot `Arc` is
    /// loaded and the read metrics updated once per batch rather than
    /// once per call, and the packed trees are walked while hot in cache
    /// — this is the fast path for ranking many candidate plans.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for unknown names; fails on the first
    /// malformed point.
    pub fn predict_batch<P: AsRef<[f64]>>(
        &self,
        name: &str,
        points: &[P],
    ) -> Result<Vec<Option<f64>>, MlqError> {
        self.predict_batch_at(self.shard_index(name)?, points)
    }

    pub(crate) fn predict_batch_into_at<P: AsRef<[f64]>>(
        &self,
        shard: usize,
        points: &[P],
        out: &mut Vec<Option<f64>>,
    ) -> Result<(), MlqError> {
        self.reads[shard].add(points.len() as u64);
        self.live_snapshot_at(shard).predict_batch_into(points, out)
    }

    /// [`Self::predict_batch`] into a caller-owned buffer (cleared first;
    /// left empty on error), so a driver issuing batch after batch reuses
    /// one output allocation per call site.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for unknown names; fails on the first
    /// malformed point.
    pub fn predict_batch_into<P: AsRef<[f64]>>(
        &self,
        name: &str,
        points: &[P],
        out: &mut Vec<Option<f64>>,
    ) -> Result<(), MlqError> {
        self.predict_batch_into_at(self.shard_index(name)?, points, out)
    }

    pub(crate) fn observe_at(
        &self,
        shard: usize,
        point: &[f64],
        cost: ExecutionCost,
    ) -> Result<PushOutcome, MlqError> {
        self.queue.push(Feedback { shard, point: point.to_vec(), cost }, self.backpressure)
    }

    /// Offers an observed execution of `name` as feedback. Returns
    /// immediately (or blocks under [`BackpressurePolicy::Block`] while
    /// the queue is full); the maintainer applies it asynchronously.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for unknown names or after shutdown.
    pub fn observe(
        &self,
        name: &str,
        point: &[f64],
        cost: ExecutionCost,
    ) -> Result<PushOutcome, MlqError> {
        self.observe_at(self.shard_index(name)?, point, cost)
    }

    /// Counters snapshot for `name`: guard quarantines, breaker states,
    /// applied/error totals — everything the asynchronous feedback path
    /// would otherwise swallow.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for unknown names.
    pub fn counters(&self, name: &str) -> Result<ShardCounters, MlqError> {
        Ok(*self.snapshot(name)?.counters())
    }

    /// Queue accounting (drops, samples, blocks, peak depth).
    #[must_use]
    pub fn queue_counters(&self) -> QueueCounters {
        self.queue.counters()
    }

    /// The metrics registry this service records into.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A point-in-time snapshot of every metric in the registry.
    #[must_use]
    pub fn metrics(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Current feedback lag: observations admitted but not yet applied
    /// and republished.
    #[must_use]
    pub fn feedback_lag(&self) -> u64 {
        // Read `processed` *before* `enqueued`: both only grow, so this
        // order can only overstate the lag. The reverse order raced with
        // concurrent maintenance — an observation admitted and applied
        // between the two reads underflowed the subtraction.
        let processed = self.processed.load(Ordering::Acquire);
        let enqueued = self.queue.counters().enqueued;
        enqueued.saturating_sub(processed)
    }

    /// Runs one manual maintenance step: drains up to `max` queued
    /// observations, applies them, and republishes touched shards on the
    /// calling thread. Returns how many observations were applied (zero
    /// when the queue was empty).
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] unless the service was built with
    /// [`MaintainerMode::Manual`] and is still live.
    pub fn step(&self, max: usize) -> Result<usize, MlqError> {
        let mut guard = self.maintainer.lock().unwrap_or_else(PoisonError::into_inner);
        match guard.as_mut() {
            Some(MaintainerState::Manual(core)) => {
                let (batch, _finished) = self.queue.drain(max.max(1), Duration::ZERO);
                let n = core.apply_batch(batch, &self.published);
                // One arbitration round per step, batch or not — manual
                // mode's deterministic mirror of the background loop.
                core.arbitrate(&self.published);
                Ok(n)
            }
            _ => Err(MlqError::InvalidConfig {
                reason: "step() requires MaintainerMode::Manual on a live service".into(),
            }),
        }
    }

    /// Extracts every shard's feedback delta — what this service absorbed
    /// since the previous extraction — leaving the trackers empty. The
    /// anti-entropy half-step a [`ReplicaGroup`](crate::ReplicaGroup)
    /// runs against each replica before folding deltas into its merge
    /// base.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] unless the service was built with
    /// [`MaintainerMode::Manual`] *and*
    /// [`ConcurrentEstimatorBuilder::with_delta_tracking`], and is still
    /// live.
    pub fn take_deltas(&self) -> Result<Vec<ShardDelta>, MlqError> {
        let mut guard = self.maintainer.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(MaintainerState::Manual(core)) = guard.as_mut() else {
            return Err(MlqError::InvalidConfig {
                reason: "take_deltas() requires MaintainerMode::Manual on a live service".into(),
            });
        };
        let mut out = Vec::with_capacity(core.shards.len());
        for shard in &mut core.shards {
            let trackers = shard.deltas.as_mut().ok_or_else(|| MlqError::InvalidConfig {
                reason: "take_deltas() requires with_delta_tracking() at build time".into(),
            })?;
            let (cpu_delta, io_delta) = trackers.as_mut();
            let (cpu, cpu_n) = cpu_delta.take()?;
            let (io, io_n) = io_delta.take()?;
            out.push(ShardDelta {
                name: shard.name.clone(),
                cpu,
                io,
                observations: cpu_n.max(io_n),
            });
        }
        Ok(out)
    }

    /// Installs externally merged models as each named shard's new live
    /// state and republishes its snapshot — the anti-entropy half-step
    /// that brings a replica up to the group's merged view.
    ///
    /// Any feedback this service absorbed *after* the extraction the
    /// merge was computed from (the pending delta) is folded into the
    /// incoming models first, so local observations are never lost or
    /// temporarily un-learned; they simply stay pending until the next
    /// extraction ships them to peers.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for unknown shard names or unless the
    /// service was built with [`MaintainerMode::Manual`] and
    /// [`ConcurrentEstimatorBuilder::with_delta_tracking`]; propagates
    /// merge errors (mismatched spaces).
    pub fn install_models(
        &self,
        models: Vec<(String, MemoryLimitedQuadtree, MemoryLimitedQuadtree)>,
    ) -> Result<(), MlqError> {
        let mut guard = self.maintainer.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(MaintainerState::Manual(core)) = guard.as_mut() else {
            return Err(MlqError::InvalidConfig {
                reason: "install_models() requires MaintainerMode::Manual on a live service".into(),
            });
        };
        if core.shards.iter().any(|shard| shard.deltas.is_none()) {
            return Err(MlqError::InvalidConfig {
                reason: "install_models() requires with_delta_tracking() at build time".into(),
            });
        }
        for (name, mut cpu, mut io) in models {
            let idx = *self.names.get(&name).ok_or_else(|| MlqError::InvalidConfig {
                reason: format!("no UDF named {name} is registered"),
            })?;
            {
                let shard = &mut core.shards[idx];
                let trackers = shard.deltas.as_ref().ok_or_else(|| MlqError::InvalidConfig {
                    reason: "install_models() requires with_delta_tracking() at build time".into(),
                })?;
                let (cpu_delta, io_delta) = &**trackers;
                if !cpu_delta.is_empty() {
                    cpu.merge_from(cpu_delta.tree())?;
                }
                if !io_delta.is_empty() {
                    io.merge_from(io_delta.tree())?;
                }
                *shard.cpu.inner_mut() = cpu;
                *shard.io.inner_mut() = io;
                // Fresh trees carry fresh identities, so the previous
                // frozen snapshots can never be patched against them;
                // drop them so the next publication freezes from scratch.
                shard.prev_cpu = None;
                shard.prev_io = None;
                // The merged models supersede whatever was spilled at
                // hibernation time; dropping the envelopes also makes
                // the published snapshot live again.
                shard.hibernated = None;
            }
            core.publish(idx, &self.published);
        }
        Ok(())
    }

    /// Blocks until every observation admitted *before this call* has
    /// been applied and republished. Under [`MaintainerMode::Manual`] the
    /// calling thread performs the maintenance itself.
    pub fn flush(&self) {
        let target = self.queue.counters().enqueued;
        while self.processed.load(Ordering::Acquire) < target {
            if self.step(usize::MAX).is_err() {
                thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Stops the service: refuses new feedback, flushes everything queued
    /// into the models, republishes final snapshots, and joins the
    /// maintainer. Idempotent; later calls return `None`.
    pub fn shutdown(&self) -> Option<ServeReport> {
        let state = {
            let mut guard = self.maintainer.lock().unwrap_or_else(PoisonError::into_inner);
            guard.take()?
        };
        self.queue.close();
        match state {
            // A panicked maintainer already surfaced its panic; the report
            // below still reflects the last published snapshots.
            MaintainerState::Background(handle) => {
                let _ = handle.join();
            }
            MaintainerState::Manual(mut core) => {
                loop {
                    let (batch, finished) = self.queue.drain(core.batch_max, Duration::ZERO);
                    if finished {
                        break;
                    }
                    core.apply_batch(batch, &self.published);
                }
                core.final_publish(&self.published);
            }
        }
        Some(ServeReport {
            shards: self
                .names
                .iter()
                .map(|(name, &idx)| (name.clone(), *self.snapshot_at(idx).counters()))
                .collect(),
            queue: self.queue.counters(),
            metrics: self.registry.snapshot(),
        })
    }
}

impl Drop for ConcurrentEstimator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ConcurrentEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentEstimator")
            .field("shards", &self.names.len())
            .field("feedback_lag", &self.feedback_lag())
            .finish_non_exhaustive()
    }
}
