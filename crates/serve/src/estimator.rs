//! The concurrent sharded estimator service.
//!
//! One [`ConcurrentEstimator`] serves cost estimates for every registered
//! UDF. Internally it is sharded per UDF — the same keying as the
//! optimizer's [`UdfCatalog`] — and split across two worlds:
//!
//! * **Readers** (any number of threads) fetch the shard's published
//!   [`ShardSnapshot`] — an `Arc` clone under a briefly held
//!   `parking_lot::RwLock` read guard — and predict against the immutable
//!   snapshot. No reader ever touches a live model.
//! * **The maintainer** (one background thread) owns the live
//!   [`GuardedModel`]s. Feedback arrives through a bounded MPSC queue
//!   ([`FeedbackQueue`]), is applied in batches (`observe`, including any
//!   compression the insert triggers — all off the read path), and every
//!   touched shard is refrozen and republished.
//!
//! Shutdown closes the queue (new feedback is refused), flushes every
//! queued observation into the models, republishes final snapshots, and
//! joins the maintainer — nothing admitted is ever dropped by shutdown.

use crate::queue::{BackpressurePolicy, Feedback, FeedbackQueue, PushOutcome, QueueCounters};
use crate::snapshot::{ComponentSnapshot, ShardCounters, ShardSnapshot};
use mlq_core::{
    CostModel, GuardConfig, GuardedModel, InsertionStrategy, MemoryLimitedQuadtree, MlqConfig,
    MlqError, Space,
};
use mlq_optimizer::UdfCatalog;
use mlq_udfs::ExecutionCost;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning of a [`ConcurrentEstimator`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bound of the feedback queue, in observations.
    pub queue_capacity: usize,
    /// Most observations the maintainer applies before republishing.
    pub batch_max: usize,
    /// What producers do when the queue is full.
    pub backpressure: BackpressurePolicy,
    /// CPU-unit cost of one page read (see
    /// [`CostEstimator`](mlq_optimizer::CostEstimator)).
    pub io_weight: f64,
    /// Guard settings applied to every shard's CPU and IO models.
    pub guard: GuardConfig,
    /// Byte budget per model for UDFs registered through the builder.
    pub budget_per_model: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 4096,
            batch_max: 64,
            backpressure: BackpressurePolicy::Block,
            io_weight: 100.0,
            guard: GuardConfig::default(),
            budget_per_model: 1 << 16,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), MlqError> {
        if self.queue_capacity == 0 || self.batch_max == 0 {
            return Err(MlqError::InvalidConfig {
                reason: "queue_capacity and batch_max must be nonzero".into(),
            });
        }
        if !self.io_weight.is_finite() || self.io_weight < 0.0 {
            return Err(MlqError::InvalidConfig {
                reason: format!(
                    "io_weight must be finite and non-negative, got {}",
                    self.io_weight
                ),
            });
        }
        self.backpressure.validate()
    }
}

/// The maintainer's live state for one shard.
struct ShardModels {
    name: String,
    cpu: GuardedModel<MemoryLimitedQuadtree>,
    io: GuardedModel<MemoryLimitedQuadtree>,
    applied: u64,
    apply_errors: u64,
    version: u64,
}

impl ShardModels {
    fn snapshot(&mut self, io_weight: f64) -> ShardSnapshot {
        self.version += 1;
        let counters = ShardCounters {
            version: self.version,
            applied: self.applied,
            apply_errors: self.apply_errors,
            cpu_guard: self.cpu.counters(),
            io_guard: self.io.counters(),
            cpu_breaker: self.cpu.state(),
            io_breaker: self.io.state(),
        };
        let cpu = ComponentSnapshot::new(
            self.cpu.inner().freeze(),
            self.cpu.is_healthy(),
            self.cpu.fallback_prediction(),
        );
        let io = ComponentSnapshot::new(
            self.io.inner().freeze(),
            self.io.is_healthy(),
            self.io.fallback_prediction(),
        );
        ShardSnapshot::new(self.name.clone(), cpu, io, io_weight, counters)
    }

    /// Applies one observation to both components, mirroring
    /// [`CostEstimator::observe`](mlq_optimizer::CostEstimator::observe):
    /// both models are always fed; one component's quarantine must not
    /// starve the other.
    fn apply(&mut self, point: &[f64], cost: ExecutionCost) {
        let cpu = self.cpu.observe(point, cost.cpu);
        let io = self.io.observe(point, cost.io);
        let quarantine_only = |r: &Result<(), MlqError>| {
            matches!(r, Ok(()) | Err(MlqError::FeedbackQuarantined { .. }))
        };
        if cpu.is_ok() && io.is_ok() {
            self.applied += 1;
        } else if !quarantine_only(&cpu) || !quarantine_only(&io) {
            // Quarantines are already counted by the guards themselves;
            // anything else (malformed point that slipped past the
            // producer, inner-model failure) is an apply error.
            self.apply_errors += 1;
        }
    }
}

/// Incrementally registers UDF shards, then spawns the service.
pub struct ConcurrentEstimatorBuilder {
    config: ServeConfig,
    models: Vec<(String, MemoryLimitedQuadtree, MemoryLimitedQuadtree)>,
}

impl ConcurrentEstimatorBuilder {
    /// Starts a builder with `config`.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        ConcurrentEstimatorBuilder { config, models: Vec::new() }
    }

    /// Registers a fresh UDF shard over `space`, using the catalog's model
    /// recipe (`β = 1` CPU, `β = 10` IO, lazy insertion).
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for duplicate names; propagates model
    /// construction failures.
    pub fn register(self, name: &str, space: &Space) -> Result<Self, MlqError> {
        let build = |beta: u64| -> Result<MemoryLimitedQuadtree, MlqError> {
            let floor = MlqConfig::min_budget(space, 6);
            let config = MlqConfig::builder(space.clone())
                .memory_budget(self.config.budget_per_model.max(floor))
                .strategy(InsertionStrategy::Lazy { alpha: 0.05 })
                .beta(beta)
                .build()?;
            MemoryLimitedQuadtree::new(config)
        };
        let (cpu, io) = (build(1)?, build(10)?);
        self.register_models(name, cpu, io)
    }

    /// Registers a UDF shard seeded with already-learned models (e.g.
    /// handed over from a [`UdfCatalog`]).
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for duplicate names.
    pub fn register_models(
        mut self,
        name: &str,
        cpu: MemoryLimitedQuadtree,
        io: MemoryLimitedQuadtree,
    ) -> Result<Self, MlqError> {
        if self.models.iter().any(|(n, _, _)| n == name) {
            return Err(MlqError::InvalidConfig {
                reason: format!("UDF {name} is already registered"),
            });
        }
        self.models.push((name.to_string(), cpu, io));
        Ok(self)
    }

    /// Wraps every model in its guard, publishes initial snapshots, and
    /// spawns the maintainer thread.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] when nothing is registered or the
    /// configuration is nonsensical.
    pub fn build(self) -> Result<ConcurrentEstimator, MlqError> {
        let ConcurrentEstimatorBuilder { config, mut models } = self;
        config.validate()?;
        if models.is_empty() {
            return Err(MlqError::InvalidConfig {
                reason: "a concurrent estimator needs at least one registered UDF".into(),
            });
        }
        // Shards are ordered by name, like the catalog.
        models.sort_by(|a, b| a.0.cmp(&b.0));

        let mut shards = Vec::with_capacity(models.len());
        let mut names = BTreeMap::new();
        for (idx, (name, cpu, io)) in models.into_iter().enumerate() {
            names.insert(name.clone(), idx);
            shards.push(ShardModels {
                name,
                cpu: GuardedModel::for_quadtree(cpu, config.guard)?,
                io: GuardedModel::for_quadtree(io, config.guard)?,
                applied: 0,
                apply_errors: 0,
                version: 0,
            });
        }

        let published: Arc<Vec<RwLock<Arc<ShardSnapshot>>>> = Arc::new(
            shards
                .iter_mut()
                .map(|s| RwLock::new(Arc::new(s.snapshot(config.io_weight))))
                .collect(),
        );
        let queue = Arc::new(FeedbackQueue::new(config.queue_capacity));
        let processed = Arc::new(AtomicU64::new(0));

        let maintainer = {
            let queue = Arc::clone(&queue);
            let published = Arc::clone(&published);
            let processed = Arc::clone(&processed);
            let io_weight = config.io_weight;
            let batch_max = config.batch_max;
            thread::Builder::new()
                .name("mlq-serve-maintainer".into())
                .spawn(move || {
                    maintain(shards, &queue, &published, &processed, io_weight, batch_max)
                })
                .map_err(|e| MlqError::IoFault {
                    reason: format!("spawning maintainer thread: {e}"),
                })?
        };

        Ok(ConcurrentEstimator {
            names,
            published,
            queue,
            processed,
            backpressure: config.backpressure,
            maintainer: Mutex::new(Some(maintainer)),
        })
    }
}

/// The maintainer loop: drain → apply → republish, until the queue is
/// closed and empty.
fn maintain(
    mut shards: Vec<ShardModels>,
    queue: &FeedbackQueue,
    published: &[RwLock<Arc<ShardSnapshot>>],
    processed: &AtomicU64,
    io_weight: f64,
    batch_max: usize,
) {
    let mut touched = vec![false; shards.len()];
    loop {
        let (batch, finished) = queue.drain(batch_max, Duration::from_millis(20));
        if finished {
            break;
        }
        if batch.is_empty() {
            continue;
        }
        let n = batch.len() as u64;
        for fb in batch {
            if let Some(shard) = shards.get_mut(fb.shard) {
                shard.apply(&fb.point, fb.cost);
                touched[fb.shard] = true;
            }
        }
        for (idx, flag) in touched.iter_mut().enumerate() {
            if *flag {
                *published[idx].write() = Arc::new(shards[idx].snapshot(io_weight));
                *flag = false;
            }
        }
        // Republish-then-count: once `processed` covers an observation,
        // its effect is visible to readers (the flush contract).
        processed.fetch_add(n, Ordering::Release);
    }
    // Final publication so shutdown reports the very last counters.
    for (idx, shard) in shards.iter_mut().enumerate() {
        *published[idx].write() = Arc::new(shard.snapshot(io_weight));
    }
}

/// A sharded, concurrently readable estimator service over every
/// registered UDF. See the [module documentation](self).
pub struct ConcurrentEstimator {
    names: BTreeMap<String, usize>,
    published: Arc<Vec<RwLock<Arc<ShardSnapshot>>>>,
    queue: Arc<FeedbackQueue>,
    /// Observations fully applied and republished by the maintainer.
    processed: Arc<AtomicU64>,
    backpressure: BackpressurePolicy,
    maintainer: Mutex<Option<JoinHandle<()>>>,
}

/// Final accounting returned by [`ConcurrentEstimator::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-shard counters at shutdown, in name order.
    pub shards: Vec<(String, ShardCounters)>,
    /// Queue counters at shutdown.
    pub queue: QueueCounters,
}

impl ConcurrentEstimator {
    /// Shorthand for [`ConcurrentEstimatorBuilder::new`].
    #[must_use]
    pub fn builder(config: ServeConfig) -> ConcurrentEstimatorBuilder {
        ConcurrentEstimatorBuilder::new(config)
    }

    /// Builds the service from an optimizer catalog, taking ownership of
    /// its learned per-UDF models — the serving layer's shards are keyed
    /// exactly like the catalog.
    ///
    /// # Errors
    ///
    /// Propagates builder errors (e.g. an empty catalog).
    pub fn from_catalog(catalog: UdfCatalog, config: ServeConfig) -> Result<Self, MlqError> {
        let mut builder = ConcurrentEstimatorBuilder::new(config);
        for (name, cpu, io) in catalog.into_models() {
            builder = builder.register_models(&name, cpu, io)?;
        }
        builder.build()
    }

    /// Registered UDF names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.names.keys().map(String::as_str).collect()
    }

    fn shard_index(&self, name: &str) -> Result<usize, MlqError> {
        self.names.get(name).copied().ok_or_else(|| MlqError::InvalidConfig {
            reason: format!("no UDF named {name} is registered"),
        })
    }

    pub(crate) fn snapshot_at(&self, shard: usize) -> Arc<ShardSnapshot> {
        Arc::clone(&self.published[shard].read())
    }

    /// The current published snapshot for `name`. Readers that predict
    /// many points in a row should fetch once and reuse the `Arc` — the
    /// snapshot stays internally consistent however long it is held.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for unknown names.
    pub fn snapshot(&self, name: &str) -> Result<Arc<ShardSnapshot>, MlqError> {
        Ok(self.snapshot_at(self.shard_index(name)?))
    }

    /// Predicted combined cost for `name` at `point` from the current
    /// snapshot.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for unknown names; propagates
    /// malformed-point errors.
    pub fn predict(&self, name: &str, point: &[f64]) -> Result<Option<f64>, MlqError> {
        self.snapshot(name)?.predict(point)
    }

    pub(crate) fn observe_at(
        &self,
        shard: usize,
        point: &[f64],
        cost: ExecutionCost,
    ) -> Result<PushOutcome, MlqError> {
        self.queue.push(Feedback { shard, point: point.to_vec(), cost }, self.backpressure)
    }

    /// Offers an observed execution of `name` as feedback. Returns
    /// immediately (or blocks under [`BackpressurePolicy::Block`] while
    /// the queue is full); the maintainer applies it asynchronously.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for unknown names or after shutdown.
    pub fn observe(
        &self,
        name: &str,
        point: &[f64],
        cost: ExecutionCost,
    ) -> Result<PushOutcome, MlqError> {
        self.observe_at(self.shard_index(name)?, point, cost)
    }

    /// Counters snapshot for `name`: guard quarantines, breaker states,
    /// applied/error totals — everything the asynchronous feedback path
    /// would otherwise swallow.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for unknown names.
    pub fn counters(&self, name: &str) -> Result<ShardCounters, MlqError> {
        Ok(*self.snapshot(name)?.counters())
    }

    /// Queue accounting (drops, samples, blocks, peak depth).
    #[must_use]
    pub fn queue_counters(&self) -> QueueCounters {
        self.queue.counters()
    }

    /// Current feedback lag: observations admitted but not yet applied
    /// and republished.
    #[must_use]
    pub fn feedback_lag(&self) -> u64 {
        self.queue.counters().enqueued - self.processed.load(Ordering::Acquire)
    }

    /// Blocks until every observation admitted *before this call* has
    /// been applied and republished.
    pub fn flush(&self) {
        let target = self.queue.counters().enqueued;
        while self.processed.load(Ordering::Acquire) < target {
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops the service: refuses new feedback, flushes everything queued
    /// into the models, republishes final snapshots, and joins the
    /// maintainer. Idempotent; later calls return `None`.
    pub fn shutdown(&self) -> Option<ServeReport> {
        let handle = {
            let mut guard = self.maintainer.lock().unwrap_or_else(PoisonError::into_inner);
            guard.take()?
        };
        self.queue.close();
        // A panicked maintainer already surfaced its panic; the report
        // below still reflects the last published snapshots.
        let _ = handle.join();
        Some(ServeReport {
            shards: self
                .names
                .iter()
                .map(|(name, &idx)| (name.clone(), *self.snapshot_at(idx).counters()))
                .collect(),
            queue: self.queue.counters(),
        })
    }
}

impl Drop for ConcurrentEstimator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ConcurrentEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentEstimator")
            .field("shards", &self.names.len())
            .field("feedback_lag", &self.feedback_lag())
            .finish_non_exhaustive()
    }
}
