//! Per-UDF handles that plug the concurrent service into the optimizer.
//!
//! The optimizer's [`FeedbackExecutor`](mlq_optimizer::FeedbackExecutor)
//! drives anything implementing [`Estimator`]; an [`EstimatorHandle`] is
//! that implementation for one shard of a [`ConcurrentEstimator`]. Each
//! handle holds an `Arc` of the service, so executors, request threads,
//! and the maintainer all share one set of models without a dependency
//! from the optimizer onto this crate.

use crate::estimator::ConcurrentEstimator;
use crate::queue::PushOutcome;
use crate::snapshot::ShardSnapshot;
use mlq_core::MlqError;
use mlq_optimizer::Estimator;
use mlq_udfs::ExecutionCost;
use std::sync::Arc;

/// One UDF's view of a shared [`ConcurrentEstimator`].
#[derive(Debug, Clone)]
pub struct EstimatorHandle {
    service: Arc<ConcurrentEstimator>,
    shard: usize,
    name: String,
}

impl ConcurrentEstimator {
    /// A cloneable per-UDF handle onto this service, suitable for the
    /// optimizer's [`Estimator`] seam.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] for unknown names.
    pub fn handle(self: &Arc<Self>, name: &str) -> Result<EstimatorHandle, MlqError> {
        let shard = self.names().iter().position(|n| *n == name).ok_or_else(|| {
            MlqError::InvalidConfig { reason: format!("no UDF named {name} is registered") }
        })?;
        Ok(EstimatorHandle { service: Arc::clone(self), shard, name: name.to_string() })
    }
}

impl EstimatorHandle {
    /// The current published snapshot for this handle's UDF.
    #[must_use]
    pub fn snapshot(&self) -> Arc<ShardSnapshot> {
        self.service.snapshot_at(self.shard)
    }

    /// The service this handle points into.
    #[must_use]
    pub fn service(&self) -> &Arc<ConcurrentEstimator> {
        &self.service
    }

    /// The UDF this handle serves.
    #[must_use]
    pub fn udf_name(&self) -> &str {
        &self.name
    }

    /// Enqueues feedback, reporting how backpressure admitted it.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] after the service shuts down.
    pub fn offer(&self, point: &[f64], cost: ExecutionCost) -> Result<PushOutcome, MlqError> {
        self.service.observe_at(self.shard, point, cost)
    }
}

impl Estimator for EstimatorHandle {
    fn predict(&self, point: &[f64]) -> Result<Option<f64>, MlqError> {
        self.snapshot().predict(point)
    }

    fn predict_batch(&self, points: &[Vec<f64>]) -> Result<Vec<Option<f64>>, MlqError> {
        // One snapshot load and one metrics update for the whole batch.
        self.service.predict_batch_at(self.shard, points)
    }

    fn predict_batch_into(
        &self,
        points: &[Vec<f64>],
        out: &mut Vec<Option<f64>>,
    ) -> Result<(), MlqError> {
        // The true buffer-reusing path: the caller's output buffer plus
        // the service's per-thread descent scratch, no per-call `Vec`s.
        self.service.predict_batch_into_at(self.shard, points, out)
    }

    fn observe(&mut self, point: &[f64], cost: ExecutionCost) -> Result<(), MlqError> {
        self.offer(point, cost).map(|_| ())
    }

    fn combine(&self, cost: ExecutionCost) -> f64 {
        self.snapshot().combine(cost)
    }

    fn memory_used(&self) -> usize {
        // The read path serves from the published packed snapshot; its
        // bytes are the model state a reader actually pays for.
        let snapshot = self.snapshot();
        let (cpu, io) = snapshot.components();
        cpu.tree().bytes() + io.tree().bytes()
    }

    fn name(&self) -> String {
        format!("serve({})", self.name)
    }
}
