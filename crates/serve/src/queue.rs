//! The bounded multi-producer feedback queue between request threads and
//! the maintainer.
//!
//! Producers are request threads reporting observed UDF execution costs;
//! the single consumer is the maintainer thread, which drains batches,
//! applies them to the live models, and republishes snapshots. The queue
//! is deliberately bounded: an unbounded queue would turn a slow
//! maintainer into unbounded memory growth. What happens at the bound is
//! the serving layer's [`BackpressurePolicy`].

use mlq_core::MlqError;
use mlq_obs::{Counter, Gauge, Registry};
use mlq_udfs::ExecutionCost;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// What producers do when the feedback queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the producer until the maintainer frees space. No feedback is
    /// lost; request latency absorbs the lag.
    #[default]
    Block,
    /// Drop the oldest queued observation to admit the new one. Bounded
    /// lag; the model always learns from the freshest executions.
    DropOldest,
    /// Admit only every `keep_one_in`-th observation while full (each
    /// admission evicts the oldest), dropping the rest. A uniform thinning
    /// of the feedback stream under sustained overload.
    Sample {
        /// Admit one in this many overflowing observations (≥ 1; a value
        /// of 1 behaves like [`BackpressurePolicy::DropOldest`]).
        keep_one_in: u32,
    },
}

impl BackpressurePolicy {
    pub(crate) fn validate(self) -> Result<(), MlqError> {
        if let BackpressurePolicy::Sample { keep_one_in: 0 } = self {
            return Err(MlqError::InvalidConfig {
                reason: "Sample backpressure needs keep_one_in >= 1".into(),
            });
        }
        Ok(())
    }
}

/// How a single [`push`](FeedbackQueue::push) was admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued without displacing anything.
    Enqueued,
    /// Enqueued after evicting the oldest queued observation.
    DroppedOldest,
    /// Not enqueued: thinned out by [`BackpressurePolicy::Sample`].
    SampledOut,
}

/// Monotonic counters describing the queue's life so far.
///
/// Since the observability rework this is a *view* assembled from the
/// shared [`mlq_obs::Registry`] (metrics `mlq_serve_queue_*`), kept as a
/// plain struct so call sites and reports keep their shape.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueueCounters {
    /// Observations admitted into the queue.
    pub enqueued: u64,
    /// Oldest-entry evictions under `DropOldest` (and `Sample` admits).
    pub dropped_oldest: u64,
    /// Observations thinned out by `Sample`.
    pub sampled_out: u64,
    /// Times a producer blocked on a full queue under `Block`.
    pub block_waits: u64,
    /// Deepest the queue has ever been.
    pub max_depth: usize,
}

/// Registry handles behind the queue's accounting. Every mutation happens
/// under the queue mutex, so the individual instruments stay mutually
/// consistent at any quiesce point.
#[derive(Debug, Clone)]
pub(crate) struct QueueMetrics {
    enqueued: Counter,
    dropped_oldest: Counter,
    sampled_out: Counter,
    block_waits: Counter,
    depth: Gauge,
    max_depth: Gauge,
}

impl QueueMetrics {
    pub(crate) fn new(registry: &Registry) -> Self {
        QueueMetrics {
            enqueued: registry.counter("mlq_serve_queue_enqueued"),
            dropped_oldest: registry.counter("mlq_serve_queue_dropped_oldest"),
            sampled_out: registry.counter("mlq_serve_queue_sampled_out"),
            block_waits: registry.counter("mlq_serve_queue_block_waits"),
            depth: registry.gauge("mlq_serve_queue_depth"),
            max_depth: registry.gauge("mlq_serve_queue_max_depth"),
        }
    }

    /// Assembles the classic [`QueueCounters`] view from the registry
    /// handles.
    pub(crate) fn view(&self) -> QueueCounters {
        QueueCounters {
            enqueued: self.enqueued.get(),
            dropped_oldest: self.dropped_oldest.get(),
            sampled_out: self.sampled_out.get(),
            block_waits: self.block_waits.get(),
            max_depth: self.max_depth.get() as usize,
        }
    }
}

/// One queued observation, bound for `shard`.
#[derive(Debug, Clone)]
pub(crate) struct Feedback {
    pub shard: usize,
    pub point: Vec<f64>,
    pub cost: ExecutionCost,
}

#[derive(Debug)]
struct Inner {
    items: VecDeque<Feedback>,
    closed: bool,
    /// Ticks once per overflow decision under `Sample`.
    sample_tick: u64,
}

/// Bounded MPSC queue: any number of producers, one maintainer.
#[derive(Debug)]
pub(crate) struct FeedbackQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    not_full: Condvar,
    not_empty: Condvar,
    metrics: QueueMetrics,
}

fn stopped() -> MlqError {
    MlqError::InvalidConfig { reason: "concurrent estimator is shut down".into() }
}

impl FeedbackQueue {
    pub(crate) fn new(capacity: usize, metrics: QueueMetrics) -> Self {
        FeedbackQueue {
            capacity,
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                sample_tick: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            metrics,
        }
    }

    /// Admits `item` under `policy`.
    ///
    /// # Errors
    ///
    /// Fails only after [`close`](Self::close) — feedback offered to a
    /// shut-down estimator is refused, never silently dropped.
    pub(crate) fn push(
        &self,
        item: Feedback,
        policy: BackpressurePolicy,
    ) -> Result<PushOutcome, MlqError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut outcome = PushOutcome::Enqueued;
        loop {
            if inner.closed {
                return Err(stopped());
            }
            if inner.items.len() < self.capacity {
                break;
            }
            match policy {
                BackpressurePolicy::Block => {
                    self.metrics.block_waits.inc();
                    inner = self.not_full.wait(inner).unwrap_or_else(PoisonError::into_inner);
                }
                BackpressurePolicy::DropOldest => {
                    inner.items.pop_front();
                    self.metrics.dropped_oldest.inc();
                    outcome = PushOutcome::DroppedOldest;
                    break;
                }
                BackpressurePolicy::Sample { keep_one_in } => {
                    inner.sample_tick += 1;
                    if inner.sample_tick.is_multiple_of(u64::from(keep_one_in)) {
                        inner.items.pop_front();
                        self.metrics.dropped_oldest.inc();
                        outcome = PushOutcome::DroppedOldest;
                        break;
                    }
                    self.metrics.sampled_out.inc();
                    return Ok(PushOutcome::SampledOut);
                }
            }
        }
        inner.items.push_back(item);
        self.metrics.enqueued.inc();
        let depth = inner.items.len() as f64;
        self.metrics.depth.set(depth);
        self.metrics.max_depth.set_max(depth);
        drop(inner);
        self.not_empty.notify_one();
        Ok(outcome)
    }

    /// Takes up to `max` queued observations, waiting up to `wait` for the
    /// first one. Returns `(batch, finished)`; `finished` is true exactly
    /// once the queue is closed *and* fully drained, so a consumer looping
    /// until `finished` processes every admitted observation.
    pub(crate) fn drain(&self, max: usize, wait: Duration) -> (Vec<Feedback>, bool) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        while inner.items.is_empty() {
            if inner.closed {
                return (Vec::new(), true);
            }
            let (guard, timeout) =
                self.not_empty.wait_timeout(inner, wait).unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if timeout.timed_out() && inner.items.is_empty() && !inner.closed {
                return (Vec::new(), false);
            }
        }
        let n = max.min(inner.items.len());
        let batch: Vec<Feedback> = inner.items.drain(..n).collect();
        self.metrics.depth.set(inner.items.len() as f64);
        drop(inner);
        // Several producers may be blocked; space for `n` opened up.
        self.not_full.notify_all();
        (batch, false)
    }

    /// Current queue depth (the feedback lag, in observations).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).items.len()
    }

    /// Counters snapshot (a view over the shared registry).
    pub(crate) fn counters(&self) -> QueueCounters {
        self.metrics.view()
    }

    /// Refuses new feedback and wakes everyone; queued items remain for
    /// the consumer to flush.
    pub(crate) fn close(&self) {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(shard: usize) -> Feedback {
        Feedback { shard, point: vec![1.0, 2.0], cost: ExecutionCost::default() }
    }

    fn queue(capacity: usize) -> FeedbackQueue {
        FeedbackQueue::new(capacity, QueueMetrics::new(&Registry::new()))
    }

    #[test]
    fn fifo_through_push_and_drain() {
        let q = queue(8);
        for i in 0..5 {
            assert_eq!(q.push(fb(i), BackpressurePolicy::Block).unwrap(), PushOutcome::Enqueued);
        }
        assert_eq!(q.len(), 5);
        let (batch, finished) = q.drain(3, Duration::from_millis(1));
        assert!(!finished);
        assert_eq!(batch.iter().map(|f| f.shard).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drop_oldest_evicts_head() {
        let q = queue(2);
        q.push(fb(0), BackpressurePolicy::DropOldest).unwrap();
        q.push(fb(1), BackpressurePolicy::DropOldest).unwrap();
        assert_eq!(
            q.push(fb(2), BackpressurePolicy::DropOldest).unwrap(),
            PushOutcome::DroppedOldest
        );
        let (batch, _) = q.drain(10, Duration::from_millis(1));
        assert_eq!(batch.iter().map(|f| f.shard).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(q.counters().dropped_oldest, 1);
    }

    #[test]
    fn sample_thins_overflow_uniformly() {
        let q = queue(1);
        let policy = BackpressurePolicy::Sample { keep_one_in: 4 };
        q.push(fb(0), policy).unwrap();
        let mut admitted = 0;
        let mut thinned = 0;
        for i in 1..=16 {
            match q.push(fb(i), policy).unwrap() {
                PushOutcome::DroppedOldest => admitted += 1,
                PushOutcome::SampledOut => thinned += 1,
                PushOutcome::Enqueued => unreachable!("queue is full"),
            }
        }
        assert_eq!(admitted, 4);
        assert_eq!(thinned, 12);
        assert_eq!(q.counters().sampled_out, 12);
    }

    #[test]
    fn closed_queue_refuses_pushes_and_finishes_drains() {
        let q = queue(4);
        q.push(fb(0), BackpressurePolicy::Block).unwrap();
        q.close();
        assert!(q.push(fb(1), BackpressurePolicy::Block).is_err());
        // The queued item is still flushed before `finished`.
        let (batch, finished) = q.drain(10, Duration::from_millis(1));
        assert_eq!(batch.len(), 1);
        assert!(!finished);
        let (batch, finished) = q.drain(10, Duration::from_millis(1));
        assert!(batch.is_empty());
        assert!(finished);
    }

    #[test]
    fn sample_policy_validates() {
        assert!(BackpressurePolicy::Sample { keep_one_in: 0 }.validate().is_err());
        assert!(BackpressurePolicy::Sample { keep_one_in: 1 }.validate().is_ok());
        assert!(BackpressurePolicy::Block.validate().is_ok());
    }
}
