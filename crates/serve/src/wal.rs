//! The per-shard write-ahead feedback journal.
//!
//! Absorbed feedback is the serving tier's only irreplaceable state: the
//! published snapshots can always be refrozen from the live models, but
//! the models themselves exist only in memory. The journal makes the
//! feedback stream durable *before* it is applied, so a crash loses at
//! most the observations of the batch in flight — never anything the
//! journal has acknowledged.
//!
//! ## Record format
//!
//! A journal file is a sequence of self-checking frames, no file header:
//!
//! ```text
//! offset  size   field
//! 0       4      payload length, little-endian u32
//! 4       4      CRC-32 (IEEE) over the payload
//! 8       n      payload
//!
//! payload:
//! 0       8      sequence number, little-endian u64
//! 8       4      dimension count d, little-endian u32
//! 12      8·d    point coordinates, f64 bit patterns
//! 12+8d   8      cpu cost, f64 bit pattern
//! 20+8d   8      io cost, f64 bit pattern
//! 28+8d   8      result count, little-endian u64
//! ```
//!
//! Sequence numbers are per shard, start at 1, and never repeat — they
//! survive checkpoint truncation, so replay after recovery can tell
//! exactly which records a checkpoint already covers. Recovery scans the
//! file front to back and stops at the first frame that fails its length
//! or checksum — a torn tail (the signature of a crash mid-write) is
//! truncated, not an error.
//!
//! ## Group commit
//!
//! [`WalWriter::append`] only buffers in memory; [`WalWriter::commit`]
//! writes the whole buffer and fsyncs once. The maintainer commits once
//! per touched shard per batch, so journal I/O amortizes across the
//! batch and the read path never touches a file.
//!
//! ## Failure taxonomy
//!
//! Every disk operation is screened by a [`DurabilityIo`], which carries
//! a seeded [`FaultInjector`] (transient write/fsync/rename faults, torn
//! writes — retried with bounded backoff) and an optional [`CrashPoint`]
//! ("die here" hook). A fired crash point halts **all** further journal
//! and checkpoint I/O permanently, modeling a process death: anything
//! unsynced at that moment is deliberately rolled back so the on-disk
//! state is exactly what a real crash would leave.

use mlq_core::MlqError;
use mlq_storage::fault::WriteFault;
use mlq_storage::{FaultConfig, FaultInjector, MetaFault};
use mlq_udfs::ExecutionCost;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Largest frame a scan will believe. Points are at most
/// [`MAX_DIMS`](mlq_core::MAX_DIMS) coordinates, so real frames are a few
/// hundred bytes; anything claiming more is corruption, not data.
const MAX_FRAME_LEN: u32 = 1 << 20;

/// Fixed payload bytes besides the coordinates: seq + dims + cpu + io +
/// results.
const FIXED_PAYLOAD: usize = 8 + 4 + 8 + 8 + 8;

/// One durable feedback observation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WalRecord {
    /// Per-shard sequence number, starting at 1.
    pub seq: u64,
    /// Model-space coordinates of the execution.
    pub point: Vec<f64>,
    /// Observed execution cost.
    pub cost: ExecutionCost,
}

fn encode_record(out: &mut Vec<u8>, seq: u64, point: &[f64], cost: ExecutionCost) {
    let payload_len = FIXED_PAYLOAD + 8 * point.len();
    let mut payload = Vec::with_capacity(payload_len);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&(point.len() as u32).to_le_bytes());
    for &c in point {
        payload.extend_from_slice(&c.to_bits().to_le_bytes());
    }
    payload.extend_from_slice(&cost.cpu.to_bits().to_le_bytes());
    payload.extend_from_slice(&cost.io.to_bits().to_le_bytes());
    payload.extend_from_slice(&cost.results.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&mlq_core::crc32_ieee(&[&payload]).to_le_bytes());
    out.extend_from_slice(&payload);
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, String> {
    if payload.len() < FIXED_PAYLOAD {
        return Err(format!("record payload too short: {} bytes", payload.len()));
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().expect("length checked"));
    let dims = u32::from_le_bytes(payload[8..12].try_into().expect("length checked")) as usize;
    if dims > mlq_core::MAX_DIMS {
        return Err(format!("record claims {dims} dimensions"));
    }
    if payload.len() != FIXED_PAYLOAD + 8 * dims {
        return Err(format!(
            "record length mismatch: {} bytes for {dims} dimensions",
            payload.len()
        ));
    }
    let f64_at = |off: usize| {
        f64::from_bits(u64::from_le_bytes(payload[off..off + 8].try_into().expect("in bounds")))
    };
    let point: Vec<f64> = (0..dims).map(|i| f64_at(12 + 8 * i)).collect();
    let tail = 12 + 8 * dims;
    let cost = ExecutionCost {
        cpu: f64_at(tail),
        io: f64_at(tail + 8),
        results: u64::from_le_bytes(payload[tail + 16..tail + 24].try_into().expect("in bounds")),
    };
    Ok(WalRecord { seq, point, cost })
}

/// Result of scanning one journal file front to back.
#[derive(Debug)]
pub(crate) struct WalScan {
    /// Every record in the valid prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
    /// Why the scan stopped early, if it did — a torn or corrupt tail.
    pub torn: Option<String>,
}

/// Scans the journal at `path`. A missing file reads as an empty journal;
/// a torn or corrupt tail ends the scan at the last valid frame.
///
/// # Errors
///
/// [`MlqError::IoFault`] only when the file exists but cannot be read.
pub(crate) fn read_wal(path: &Path) -> Result<WalScan, MlqError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan { records: Vec::new(), valid_len: 0, torn: None });
        }
        Err(e) => {
            return Err(MlqError::IoFault {
                reason: format!("journal read {}: {e}", path.display()),
            });
        }
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut torn = None;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + 8) else {
            torn = Some(format!("torn frame header at byte {pos}"));
            break;
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("length checked"));
        let stored_crc = u32::from_le_bytes(header[4..8].try_into().expect("length checked"));
        if len > MAX_FRAME_LEN {
            torn = Some(format!("frame at byte {pos} claims {len} bytes"));
            break;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            torn = Some(format!("torn frame payload at byte {pos}"));
            break;
        };
        if mlq_core::crc32_ieee(&[payload]) != stored_crc {
            torn = Some(format!("frame checksum mismatch at byte {pos}"));
            break;
        }
        match decode_record(payload) {
            Ok(record) => records.push(record),
            Err(reason) => {
                torn = Some(format!("frame at byte {pos}: {reason}"));
                break;
            }
        }
        pos += 8 + len as usize;
    }
    Ok(WalScan { records, valid_len: pos as u64, torn })
}

/// A filesystem-safe stem for a shard name: ASCII alphanumerics and `-`
/// pass through, every other byte (including `_`, the escape character)
/// becomes `_xx` hex. The encoding is injective, so distinct UDF names
/// never collide on disk.
pub(crate) fn shard_stem(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' => out.push(b as char),
            _ => {
                out.push('_');
                out.push_str(&format!("{b:02x}"));
            }
        }
    }
    out
}

/// Which durable operation a [`CrashPoint`] targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashOp {
    /// The group-commit write of buffered journal records.
    WalWrite,
    /// The fsync that makes a group commit durable.
    WalSync,
    /// Writing the CPU-component checkpoint file.
    CheckpointCpu,
    /// Writing the IO-component checkpoint file.
    CheckpointIo,
    /// The atomic rename that publishes the checkpoint metadata.
    CheckpointMeta,
    /// Truncating the journal after a published checkpoint.
    WalTruncate,
}

/// Every crash operation, for harnesses that sweep them all.
pub const CRASH_OPS: [CrashOp; 6] = [
    CrashOp::WalWrite,
    CrashOp::WalSync,
    CrashOp::CheckpointCpu,
    CrashOp::CheckpointIo,
    CrashOp::CheckpointMeta,
    CrashOp::WalTruncate,
];

impl CrashOp {
    fn index(self) -> usize {
        match self {
            CrashOp::WalWrite => 0,
            CrashOp::WalSync => 1,
            CrashOp::CheckpointCpu => 2,
            CrashOp::CheckpointIo => 3,
            CrashOp::CheckpointMeta => 4,
            CrashOp::WalTruncate => 5,
        }
    }
}

/// A deterministic "die here" hook: the process is considered dead at the
/// `at`-th occurrence of `op`, after which every durable operation fails
/// permanently while in-memory serving continues. What a real crash
/// would leave on disk is modeled faithfully: a [`CrashOp::WalWrite`]
/// crash persists only `torn_bytes` of the buffered group, and a
/// [`CrashOp::WalSync`] crash loses the written-but-unsynced bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// The operation to die in.
    pub op: CrashOp,
    /// Which occurrence of `op` dies, 1-based.
    pub at: u32,
    /// For [`CrashOp::WalWrite`]: how many bytes of the group reach the
    /// disk before the cut (clamped to the group length).
    pub torn_bytes: usize,
}

/// Retry discipline for transient persistence faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure before the operation is abandoned.
    pub max_retries: u32,
    /// Sleep between attempts.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, backoff: Duration::from_micros(500) }
    }
}

/// Configuration of the durability layer.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding journals and checkpoints, created if absent.
    pub dir: PathBuf,
    /// Maintainer batches between periodic checkpoints; `0` checkpoints
    /// only at startup and shutdown.
    pub checkpoint_every: u64,
    /// Retry discipline for transient persistence faults.
    pub retry: RetryPolicy,
    /// Consecutive failed group commits or checkpoints (each already
    /// retried per [`RetryPolicy`]) before the layer degrades to
    /// in-memory-only serving.
    pub degrade_after: u32,
    /// Seeded fault injection on journal and checkpoint I/O.
    pub fault: Option<FaultConfig>,
    /// Deterministic crash hook for the crash-point harness.
    pub crash: Option<CrashPoint>,
}

impl DurabilityConfig {
    /// Durability under `dir` with production defaults: checkpoint every
    /// 32 batches, 3 retries with 500 µs backoff, degrade after 3
    /// consecutive failures, no injected faults.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_every: 32,
            retry: RetryPolicy::default(),
            degrade_after: 3,
            fault: None,
            crash: None,
        }
    }

    pub(crate) fn validate(&self) -> Result<(), MlqError> {
        if self.degrade_after == 0 {
            return Err(MlqError::InvalidConfig {
                reason: "durability degrade_after must be nonzero".into(),
            });
        }
        if let Some(fault) = &self.fault {
            fault.validate().map_err(|e| MlqError::InvalidConfig {
                reason: format!("durability fault config: {e}"),
            })?;
        }
        Ok(())
    }
}

/// Health of the durability layer, readable while serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityStatus {
    /// The service was built without durability.
    Disabled,
    /// Journaling and checkpointing normally.
    Active,
    /// The circuit breaker tripped after repeated persistence failures;
    /// serving continues in-memory-only.
    Degraded,
    /// A crash hook fired (harness only); all durable I/O has stopped.
    Crashed,
}

/// State shared between the estimator handle and the maintainer: layer
/// status and the highest durable sequence number per shard.
#[derive(Debug)]
pub(crate) struct DurabilityShared {
    status: std::sync::atomic::AtomicU8,
    synced: Vec<std::sync::atomic::AtomicU64>,
    /// The most recent persistence failure, for post-mortem inspection
    /// once the layer has degraded.
    error: parking_lot::Mutex<Option<String>>,
}

impl DurabilityShared {
    pub(crate) fn new(shards: usize) -> Self {
        DurabilityShared {
            status: std::sync::atomic::AtomicU8::new(1),
            synced: (0..shards).map(|_| std::sync::atomic::AtomicU64::new(0)).collect(),
            error: parking_lot::Mutex::new(None),
        }
    }

    pub(crate) fn status(&self) -> DurabilityStatus {
        match self.status.load(std::sync::atomic::Ordering::Acquire) {
            2 => DurabilityStatus::Degraded,
            3 => DurabilityStatus::Crashed,
            _ => DurabilityStatus::Active,
        }
    }

    pub(crate) fn set_status(&self, status: DurabilityStatus) {
        let code = match status {
            DurabilityStatus::Disabled | DurabilityStatus::Active => 1,
            DurabilityStatus::Degraded => 2,
            DurabilityStatus::Crashed => 3,
        };
        self.status.store(code, std::sync::atomic::Ordering::Release);
    }

    pub(crate) fn set_synced(&self, shard: usize, seq: u64) {
        self.synced[shard].store(seq, std::sync::atomic::Ordering::Release);
    }

    pub(crate) fn synced(&self, shard: usize) -> u64 {
        self.synced[shard].load(std::sync::atomic::Ordering::Acquire)
    }

    pub(crate) fn set_error(&self, reason: String) {
        *self.error.lock() = Some(reason);
    }

    pub(crate) fn error(&self) -> Option<String> {
        self.error.lock().clone()
    }
}

/// Error surface of durable operations, internal to the maintainer.
#[derive(Debug)]
pub(crate) enum WalError {
    /// A crash hook fired: all durable I/O is over, permanently.
    Crashed,
    /// A transient or permanent I/O failure after exhausting retries.
    /// Counts toward the degradation breaker.
    Io(MlqError),
}

/// The screened I/O layer every durable operation goes through: real
/// filesystem calls behind the seeded fault injector and the crash hook.
#[derive(Debug)]
pub(crate) struct DurabilityIo {
    fault: Option<FaultInjector>,
    crash: Option<CrashPoint>,
    counts: [u32; 6],
    crashed: bool,
    retry: RetryPolicy,
    /// Transient-fault retries performed, drained into metrics.
    retries: u64,
}

impl DurabilityIo {
    pub(crate) fn new(config: &DurabilityConfig) -> Result<Self, MlqError> {
        let fault = match &config.fault {
            Some(fc) => Some(FaultInjector::new(*fc).map_err(|e| MlqError::InvalidConfig {
                reason: format!("durability fault config: {e}"),
            })?),
            None => None,
        };
        Ok(DurabilityIo {
            fault,
            crash: config.crash,
            counts: [0; 6],
            crashed: false,
            retry: config.retry,
            retries: 0,
        })
    }

    pub(crate) fn crashed(&self) -> bool {
        self.crashed
    }

    pub(crate) fn take_retries(&mut self) -> u64 {
        std::mem::take(&mut self.retries)
    }

    /// Counts one occurrence of `op`; returns true when the configured
    /// crash point fires here, marking the process dead for all further
    /// durable I/O.
    fn arm(&mut self, op: CrashOp) -> bool {
        let Some(crash) = self.crash else { return false };
        if self.crashed {
            return true;
        }
        let idx = op.index();
        self.counts[idx] += 1;
        if crash.op == op && self.counts[idx] == crash.at {
            self.crashed = true;
            return true;
        }
        false
    }

    fn torn_bytes(&self) -> usize {
        self.crash.map_or(0, |c| c.torn_bytes)
    }

    fn write_fault(&mut self, len: usize) -> WriteFault {
        match &mut self.fault {
            Some(inj) => inj.on_write(len),
            None => WriteFault::None,
        }
    }

    fn sync_fault(&mut self) -> MetaFault {
        match &mut self.fault {
            Some(inj) => inj.on_sync(),
            None => MetaFault::None,
        }
    }

    fn rename_fault(&mut self) -> MetaFault {
        match &mut self.fault {
            Some(inj) => inj.on_rename(),
            None => MetaFault::None,
        }
    }

    fn backoff(&mut self, attempt: &mut u32) -> bool {
        if *attempt >= self.retry.max_retries {
            return false;
        }
        *attempt += 1;
        self.retries += 1;
        if !self.retry.backoff.is_zero() {
            std::thread::sleep(self.retry.backoff);
        }
        true
    }
}

/// The buffered journal writer for one shard.
///
/// `append` costs a memory copy; `commit` costs one write and one fsync
/// for everything appended since the last commit. The writer tracks the
/// durable byte length so injected torn writes and failed syncs can be
/// rolled back before a retry, keeping the on-disk prefix always a clean
/// frame boundary.
#[derive(Debug)]
pub(crate) struct WalWriter {
    path: PathBuf,
    file: File,
    /// Frames appended since the last successful commit.
    buf: Vec<u8>,
    /// File length known to be durable (synced).
    durable_len: u64,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Highest sequence number known durable.
    synced_seq: u64,
    /// Last sequence number sitting in `buf`.
    pending_last_seq: u64,
}

impl WalWriter {
    /// Creates (truncating) the journal at `path`, continuing the
    /// sequence after `last_seq`. Test fixture; production always goes
    /// through [`WalWriter::open_preserving`] so recovery state survives
    /// until its covering checkpoint publishes.
    #[cfg(test)]
    pub(crate) fn create(path: PathBuf, last_seq: u64) -> Result<Self, MlqError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| MlqError::IoFault {
                reason: format!("journal create {}: {e}", path.display()),
            })?;
        Ok(WalWriter {
            path,
            file,
            buf: Vec::new(),
            durable_len: 0,
            next_seq: last_seq + 1,
            synced_seq: last_seq,
            pending_last_seq: last_seq,
        })
    }

    /// Opens the journal at `path` without touching its contents,
    /// continuing the sequence after `last_seq`. Used at startup, where
    /// the on-disk journal must stay intact until the recovery checkpoint
    /// has published — only a successful [`WalWriter::truncate`] makes
    /// the file writable again.
    pub(crate) fn open_preserving(path: PathBuf, last_seq: u64) -> Result<Self, MlqError> {
        let io_err = |stage: &str, path: &Path, e: std::io::Error| MlqError::IoFault {
            reason: format!("journal {stage} {}: {e}", path.display()),
        };
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open", &path, e))?;
        let durable_len = file.metadata().map_err(|e| io_err("stat", &path, e))?.len();
        Ok(WalWriter {
            path,
            file,
            buf: Vec::new(),
            durable_len,
            next_seq: last_seq + 1,
            synced_seq: last_seq,
            pending_last_seq: last_seq,
        })
    }

    /// Buffers one observation; no I/O. Returns its sequence number.
    pub(crate) fn append(&mut self, point: &[f64], cost: ExecutionCost) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending_last_seq = seq;
        encode_record(&mut self.buf, seq, point, cost);
        seq
    }

    /// Highest sequence number known durable.
    pub(crate) fn synced_seq(&self) -> u64 {
        self.synced_seq
    }

    /// Last sequence number handed out (durable or not).
    pub(crate) fn appended_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Whether any appended frames still await a commit (including frames
    /// whose previous commit failed and rolled back).
    pub(crate) fn has_pending(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Rolls the file back to the durable prefix, dropping bytes from a
    /// torn or unsynced write so a retry starts clean.
    fn rollback(&mut self) -> std::io::Result<()> {
        self.file.set_len(self.durable_len)
    }

    /// Group commit: writes every buffered frame and fsyncs once.
    pub(crate) fn commit(&mut self, io: &mut DurabilityIo) -> Result<(), WalError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        if io.crashed {
            return Err(WalError::Crashed);
        }
        let io_err = |stage: &str, path: &Path, detail: String| {
            WalError::Io(MlqError::IoFault {
                reason: format!("journal {stage} {}: {detail}", path.display()),
            })
        };
        if io.arm(CrashOp::WalWrite) {
            // Power cut mid-write: a prefix of the group reaches the
            // platter, nothing is synced, the process is gone.
            let keep = io.torn_bytes().min(self.buf.len());
            let _ = self.file.write_all(&self.buf[..keep]);
            let _ = self.file.sync_all();
            return Err(WalError::Crashed);
        }
        let mut attempt = 0u32;
        loop {
            use std::io::Seek;
            let outcome = match io.write_fault(self.buf.len()) {
                WriteFault::None => self
                    .file
                    .seek(std::io::SeekFrom::Start(self.durable_len))
                    .and_then(|_| self.file.write_all(&self.buf))
                    .map_err(|e| e.to_string()),
                WriteFault::Error => Err("injected write fault".to_string()),
                WriteFault::Torn { keep } => {
                    let keep = keep % self.buf.len().max(1);
                    let _ = self.file.seek(std::io::SeekFrom::Start(self.durable_len));
                    let _ = self.file.write_all(&self.buf[..keep]);
                    Err("injected torn write".to_string())
                }
            };
            match outcome {
                Ok(()) => break,
                Err(detail) => {
                    let _ = self.rollback();
                    if !io.backoff(&mut attempt) {
                        return Err(io_err("write", &self.path, detail));
                    }
                }
            }
        }
        if io.arm(CrashOp::WalSync) {
            // Power cut before the fsync: the written-but-unsynced bytes
            // are lost. Model the loss by rolling them back.
            let _ = self.rollback();
            let _ = self.file.sync_all();
            return Err(WalError::Crashed);
        }
        let mut attempt = 0u32;
        loop {
            let outcome = match io.sync_fault() {
                MetaFault::None => self.file.sync_all().map_err(|e| e.to_string()),
                MetaFault::Error => Err("injected sync fault".to_string()),
            };
            match outcome {
                Ok(()) => break,
                Err(detail) => {
                    if !io.backoff(&mut attempt) {
                        // Durability of the written bytes is unknown; roll
                        // them back so the next commit rewrites the whole
                        // buffer from the durable prefix.
                        let _ = self.rollback();
                        return Err(io_err("sync", &self.path, detail));
                    }
                }
            }
        }
        self.durable_len += self.buf.len() as u64;
        self.synced_seq = self.pending_last_seq;
        self.buf.clear();
        Ok(())
    }

    /// Truncates the journal after a published checkpoint made its
    /// records redundant. Sequence numbers keep counting.
    pub(crate) fn truncate(&mut self, io: &mut DurabilityIo) -> Result<(), WalError> {
        if io.crashed {
            return Err(WalError::Crashed);
        }
        if io.arm(CrashOp::WalTruncate) {
            return Err(WalError::Crashed);
        }
        self.file.set_len(0).and_then(|_| self.file.sync_all()).map_err(|e| {
            WalError::Io(MlqError::IoFault {
                reason: format!("journal truncate {}: {e}", self.path.display()),
            })
        })?;
        self.durable_len = 0;
        Ok(())
    }
}

/// Writes `bytes` to `path` through a sibling temporary and an atomic
/// rename, screened by the fault injector and the crash hooks:
/// `write_crash` fires before anything is written (the file never
/// appears), `rename_crash` fires after the temporary is durable but
/// before the rename (the target keeps its old content).
pub(crate) fn write_file_durable(
    io: &mut DurabilityIo,
    path: &Path,
    bytes: &[u8],
    write_crash: Option<CrashOp>,
    rename_crash: Option<CrashOp>,
) -> Result<(), WalError> {
    if io.crashed {
        return Err(WalError::Crashed);
    }
    if let Some(op) = write_crash {
        if io.arm(op) {
            return Err(WalError::Crashed);
        }
    }
    let io_err = |stage: &str, detail: String| {
        WalError::Io(MlqError::IoFault {
            reason: format!("checkpoint {stage} {}: {detail}", path.display()),
        })
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut attempt = 0u32;
    loop {
        let outcome = (|| -> Result<(), String> {
            let mut file = File::create(&tmp).map_err(|e| e.to_string())?;
            match io.write_fault(bytes.len()) {
                WriteFault::None => {
                    file.write_all(bytes).map_err(|e| e.to_string())?;
                }
                WriteFault::Error => {
                    return Err("injected write fault".to_string());
                }
                WriteFault::Torn { keep } => {
                    let _ = file.write_all(&bytes[..keep % bytes.len().max(1)]);
                    return Err("injected torn write".to_string());
                }
            }
            match io.sync_fault() {
                MetaFault::None => file.sync_all().map_err(|e| e.to_string()),
                MetaFault::Error => Err("injected sync fault".to_string()),
            }
        })();
        match outcome {
            Ok(()) => break,
            Err(detail) => {
                if !io.backoff(&mut attempt) {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(io_err("write", detail));
                }
            }
        }
    }
    if let Some(op) = rename_crash {
        if io.arm(op) {
            let _ = std::fs::remove_file(&tmp);
            return Err(WalError::Crashed);
        }
    }
    let mut attempt = 0u32;
    loop {
        let outcome = match io.rename_fault() {
            MetaFault::None => std::fs::rename(&tmp, path).map_err(|e| e.to_string()),
            MetaFault::Error => Err("injected rename fault".to_string()),
        };
        match outcome {
            Ok(()) => return Ok(()),
            Err(detail) => {
                if !io.backoff(&mut attempt) {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(io_err("rename", detail));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mlq_wal_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quiet_io() -> DurabilityIo {
        DurabilityIo::new(&DurabilityConfig::new("unused")).unwrap()
    }

    fn cost(cpu: f64, io: f64) -> ExecutionCost {
        ExecutionCost { cpu, io, results: 1 }
    }

    #[test]
    fn records_roundtrip_bit_exactly() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("s.wal");
        let mut wal = WalWriter::create(path.clone(), 0).unwrap();
        let mut io = quiet_io();
        let points = [vec![1.5, -0.25], vec![f64::MIN_POSITIVE, 1e300]];
        for (i, p) in points.iter().enumerate() {
            let seq = wal.append(p, cost(i as f64 + 0.125, 7.75));
            assert_eq!(seq, i as u64 + 1);
        }
        assert_eq!(wal.synced_seq(), 0);
        wal.commit(&mut io).unwrap();
        assert_eq!(wal.synced_seq(), 2);

        let scan = read_wal(&path).unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(scan.records.len(), 2);
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64 + 1);
            assert_eq!(rec.point, points[i]);
            assert_eq!(rec.cost.cpu.to_bits(), (i as f64 + 0.125).to_bits());
            assert_eq!(rec.cost.io.to_bits(), 7.75f64.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_to_last_valid_frame() {
        let dir = temp_dir("torn");
        let path = dir.join("s.wal");
        let mut wal = WalWriter::create(path.clone(), 0).unwrap();
        let mut io = quiet_io();
        for i in 0..5 {
            wal.append(&[f64::from(i)], cost(1.0, 1.0));
        }
        wal.commit(&mut io).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Chop the file at every byte boundary: the scan must recover a
        // clean prefix of whole records, never error, never panic.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = read_wal(&path).unwrap();
            assert!(scan.valid_len <= cut as u64);
            for (i, rec) in scan.records.iter().enumerate() {
                assert_eq!(rec.seq, i as u64 + 1);
            }
            if cut < full.len() {
                assert!(scan.records.len() < 5 || scan.torn.is_none());
            }
        }
        // Corrupt a middle byte: the scan stops there.
        std::fs::write(&path, &full).unwrap();
        let mut corrupt = full.clone();
        corrupt[full.len() / 2] ^= 0x10;
        std::fs::write(&path, &corrupt).unwrap();
        let scan = read_wal(&path).unwrap();
        assert!(scan.torn.is_some());
        assert!(scan.records.len() < 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_journal_reads_empty() {
        let scan = read_wal(Path::new("/nonexistent/never/s.wal")).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(scan.torn.is_none());
    }

    #[test]
    fn injected_write_faults_are_retried_and_leave_clean_frames() {
        let dir = temp_dir("faults");
        let path = dir.join("s.wal");
        let mut config = DurabilityConfig::new(&dir);
        config.fault = Some(FaultConfig {
            seed: 9,
            write_error_rate: 0.3,
            torn_write_rate: 0.2,
            sync_error_rate: 0.2,
            ..FaultConfig::none()
        });
        config.retry = RetryPolicy { max_retries: 50, backoff: Duration::ZERO };
        let mut io = DurabilityIo::new(&config).unwrap();
        let mut wal = WalWriter::create(path.clone(), 0).unwrap();
        for i in 0..200u32 {
            wal.append(&[f64::from(i)], cost(f64::from(i), 2.0));
            wal.commit(&mut io).unwrap();
        }
        assert_eq!(wal.synced_seq(), 200);
        assert!(io.take_retries() > 0, "faults at 30% never triggered a retry");
        let scan = read_wal(&path).unwrap();
        assert!(scan.torn.is_none(), "retried commits left a torn frame: {:?}", scan.torn);
        assert_eq!(scan.records.len(), 200);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_retries_surface_io_error_and_file_stays_consistent() {
        let dir = temp_dir("exhaust");
        let path = dir.join("s.wal");
        let mut config = DurabilityConfig::new(&dir);
        config.fault = Some(FaultConfig { seed: 1, write_error_rate: 1.0, ..FaultConfig::none() });
        config.retry = RetryPolicy { max_retries: 2, backoff: Duration::ZERO };
        let mut io = DurabilityIo::new(&config).unwrap();
        let mut wal = WalWriter::create(path.clone(), 0).unwrap();
        wal.append(&[1.0], cost(1.0, 1.0));
        assert!(matches!(wal.commit(&mut io), Err(WalError::Io(_))));
        assert_eq!(wal.synced_seq(), 0);
        let scan = read_wal(&path).unwrap();
        assert!(scan.records.is_empty(), "failed commit left visible records");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_sync_crash_loses_unsynced_bytes_and_halts_io() {
        let dir = temp_dir("synccrash");
        let path = dir.join("s.wal");
        let mut config = DurabilityConfig::new(&dir);
        config.crash = Some(CrashPoint { op: CrashOp::WalSync, at: 2, torn_bytes: 0 });
        let mut io = DurabilityIo::new(&config).unwrap();
        let mut wal = WalWriter::create(path.clone(), 0).unwrap();
        wal.append(&[1.0], cost(1.0, 1.0));
        wal.commit(&mut io).unwrap();
        wal.append(&[2.0], cost(2.0, 2.0));
        assert!(matches!(wal.commit(&mut io), Err(WalError::Crashed)));
        assert!(io.crashed());
        // The first commit survived; the second is gone entirely.
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn.is_none());
        // All further durable I/O is refused.
        wal.append(&[3.0], cost(3.0, 3.0));
        assert!(matches!(wal.commit(&mut io), Err(WalError::Crashed)));
        assert!(matches!(wal.truncate(&mut io), Err(WalError::Crashed)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_write_crash_leaves_a_torn_recoverable_prefix() {
        let dir = temp_dir("writecrash");
        let path = dir.join("s.wal");
        let mut config = DurabilityConfig::new(&dir);
        config.crash = Some(CrashPoint { op: CrashOp::WalWrite, at: 2, torn_bytes: 13 });
        let mut io = DurabilityIo::new(&config).unwrap();
        let mut wal = WalWriter::create(path.clone(), 0).unwrap();
        wal.append(&[1.0], cost(1.0, 1.0));
        wal.commit(&mut io).unwrap();
        wal.append(&[2.0], cost(2.0, 2.0));
        assert!(matches!(wal.commit(&mut io), Err(WalError::Crashed)));
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1, "torn group leaked a whole record");
        assert!(scan.torn.is_some(), "13 torn bytes should scan as a torn tail");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_file_writes_survive_faults_and_respect_rename_crash() {
        let dir = temp_dir("filewrite");
        let path = dir.join("ck.bin");
        let mut config = DurabilityConfig::new(&dir);
        config.fault = Some(FaultConfig {
            seed: 4,
            write_error_rate: 0.3,
            torn_write_rate: 0.2,
            sync_error_rate: 0.2,
            rename_error_rate: 0.3,
            ..FaultConfig::none()
        });
        config.retry = RetryPolicy { max_retries: 64, backoff: Duration::ZERO };
        let mut io = DurabilityIo::new(&config).unwrap();
        for round in 0..20u8 {
            let bytes = vec![round; 100];
            write_file_durable(&mut io, &path, &bytes, None, None).unwrap();
            assert_eq!(std::fs::read(&path).unwrap(), bytes);
        }

        // A rename crash leaves the previous content intact.
        let mut config = DurabilityConfig::new(&dir);
        config.crash = Some(CrashPoint { op: CrashOp::CheckpointMeta, at: 1, torn_bytes: 0 });
        let mut io = DurabilityIo::new(&config).unwrap();
        let before = std::fs::read(&path).unwrap();
        let err =
            write_file_durable(&mut io, &path, b"new content", None, Some(CrashOp::CheckpointMeta));
        assert!(matches!(err, Err(WalError::Crashed)));
        assert_eq!(std::fs::read(&path).unwrap(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_stems_are_injective_and_filesystem_safe() {
        let names = ["WIN", "win", "a_b", "a_5fb", "π/υ", "..", "a-b", ""];
        let stems: Vec<String> = names.iter().map(|n| shard_stem(n)).collect();
        for (i, a) in stems.iter().enumerate() {
            assert!(a.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_'));
            for (j, b) in stems.iter().enumerate() {
                assert_eq!(i == j, a == b, "stem collision: {:?} vs {:?}", names[i], names[j]);
            }
        }
    }

    #[test]
    fn crash_occurrence_counting_is_per_op() {
        let mut config = DurabilityConfig::new("unused");
        config.crash = Some(CrashPoint { op: CrashOp::WalTruncate, at: 2, torn_bytes: 0 });
        let mut io = DurabilityIo::new(&config).unwrap();
        assert!(!io.arm(CrashOp::WalTruncate));
        assert!(!io.arm(CrashOp::WalSync));
        assert!(!io.arm(CrashOp::WalSync));
        assert!(io.arm(CrashOp::WalTruncate));
        assert!(io.crashed());
        assert!(io.arm(CrashOp::WalWrite), "post-crash ops must keep failing");
    }
}
