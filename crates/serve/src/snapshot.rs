//! Published, immutable per-shard snapshots — what reader threads see.
//!
//! The maintainer thread owns the live guarded models; after absorbing a
//! feedback batch it freezes each touched shard into a [`ShardSnapshot`]
//! and swaps it behind the shard's `RwLock<Arc<ShardSnapshot>>`. Readers
//! clone the `Arc` (the lock is held only for the pointer copy) and then
//! predict against a structure nothing will ever mutate — snapshot
//! isolation, not read locking.
//!
//! The snapshot carries more than the trees: it embeds the guard's
//! breaker state and counters at publication time. That is the serving
//! layer's *counters snapshot API* — quarantined feedback and circuit
//! trips that happen on the maintainer thread surface to any reader
//! through [`ShardSnapshot::counters`], instead of being swallowed by the
//! asynchronous feedback path.

use std::cell::RefCell;

use mlq_core::{BatchPlan, BreakerState, FrozenTree, GuardCounters, MlqError};
use mlq_udfs::{CostKind, ExecutionCost};

/// Per-thread scratch for [`ShardSnapshot::predict_batch_into`]: the
/// quantization plan plus the two component output buffers.
type ShardScratch = (BatchPlan, Vec<Option<f64>>, Vec<Option<f64>>);

thread_local! {
    /// Reader threads issuing batch after batch reuse these allocations
    /// across calls and across snapshots (a plan over a space is valid
    /// for any tree over that space).
    static SHARD_SCRATCH: RefCell<ShardScratch> =
        RefCell::new((BatchPlan::new(), Vec::new(), Vec::new()));
}

/// One cost component (CPU or IO) frozen for reading.
#[derive(Debug, Clone)]
pub struct ComponentSnapshot {
    tree: FrozenTree,
    /// Breaker closed at publication time: predictions come from the tree.
    healthy: bool,
    /// The guard's running-average fallback at publication time.
    fallback: Option<f64>,
}

impl ComponentSnapshot {
    pub(crate) fn new(tree: FrozenTree, healthy: bool, fallback: Option<f64>) -> Self {
        ComponentSnapshot { tree, healthy, fallback }
    }

    /// Predicts this component's cost, mirroring the guarded model's read
    /// path: the tree answers while the breaker was closed, the running
    /// average covers open breakers and uninformed regions.
    ///
    /// # Errors
    ///
    /// Propagates malformed-point errors.
    pub fn predict(&self, point: &[f64]) -> Result<Option<f64>, MlqError> {
        // The tree walk also validates and clamps the point, exactly like
        // the live prediction path.
        let learned = self.tree.predict(point)?;
        if self.healthy {
            if let Some(v) = learned {
                return Ok(Some(v));
            }
        }
        Ok(self.fallback)
    }

    /// Batched [`Self::predict`]: one result per point, appended to
    /// `out` (cleared first). The whole batch runs against the packed
    /// tree in one pass; the healthy/fallback policy is applied as a
    /// fix-up afterwards so the descent loop stays branch-light.
    ///
    /// # Errors
    ///
    /// Fails on the first malformed point; `out` is left empty then.
    pub fn predict_batch_into<P: AsRef<[f64]>>(
        &self,
        points: &[P],
        out: &mut Vec<Option<f64>>,
    ) -> Result<(), MlqError> {
        self.tree.predict_batch_into(points, out)?;
        self.apply_policy(out);
        Ok(())
    }

    /// The guarded read policy over a batch of raw tree answers: healthy
    /// components fall back only where the tree was uninformed, an open
    /// breaker routes every query to the running average.
    fn apply_policy(&self, out: &mut [Option<f64>]) {
        if self.healthy {
            if self.fallback.is_some() {
                for slot in out.iter_mut() {
                    if slot.is_none() {
                        *slot = self.fallback;
                    }
                }
            }
        } else {
            // Open breaker: the running average covers every query, but
            // the tree pass already validated/clamped the points.
            out.iter_mut().for_each(|slot| *slot = self.fallback);
        }
    }

    /// [`Self::predict`] for a pre-quantized query: the guarded read
    /// policy over [`FrozenTree::predict_quantized`]. The shard batch
    /// path uses this to quantize each point once for both components.
    #[must_use]
    pub fn predict_quantized(&self, grid: &mlq_core::GridPoint) -> Option<f64> {
        if self.healthy {
            if let Some(v) = self.tree.predict_quantized(grid) {
                return Some(v);
            }
        }
        self.fallback
    }

    /// The frozen tree backing this component.
    #[must_use]
    pub fn tree(&self) -> &FrozenTree {
        &self.tree
    }

    /// True when the component's breaker was closed at publication.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.healthy
    }
}

/// Guard and feedback accounting for one shard, as of the snapshot's
/// publication. All counters are monotonic across a shard's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCounters {
    /// Publication sequence number (1 = the initial empty snapshot).
    pub version: u64,
    /// Feedback observations fully absorbed (both components accepted).
    pub applied: u64,
    /// Observations where at least one component returned a
    /// non-quarantine error.
    pub apply_errors: u64,
    /// The CPU guard's own counters (quarantines, trips, probes, ...).
    pub cpu_guard: GuardCounters,
    /// The IO guard's own counters.
    pub io_guard: GuardCounters,
    /// CPU breaker state at publication.
    pub cpu_breaker: BreakerState,
    /// IO breaker state at publication.
    pub io_breaker: BreakerState,
}

impl ShardCounters {
    /// Total quarantined observations across both components.
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.cpu_guard.quarantined + self.io_guard.quarantined
    }

    /// True when both breakers were closed at publication.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.cpu_breaker == BreakerState::Closed && self.io_breaker == BreakerState::Closed
    }
}

impl Default for ShardCounters {
    fn default() -> Self {
        ShardCounters {
            version: 0,
            applied: 0,
            apply_errors: 0,
            cpu_guard: GuardCounters::default(),
            io_guard: GuardCounters::default(),
            cpu_breaker: BreakerState::Closed,
            io_breaker: BreakerState::Closed,
        }
    }
}

/// An immutable published view of one UDF's estimator pair.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    name: String,
    cpu: ComponentSnapshot,
    io: ComponentSnapshot,
    io_weight: f64,
    counters: ShardCounters,
    /// True when this is the stand-in published for a hibernated shard:
    /// the live models were spilled to snapshot envelopes by fleet
    /// arbitration. The service's own predict paths never answer from a
    /// hibernated stub (they wake the shard first); the flag lets
    /// callers holding a raw snapshot detect the state.
    hibernated: bool,
}

impl ShardSnapshot {
    pub(crate) fn new(
        name: String,
        cpu: ComponentSnapshot,
        io: ComponentSnapshot,
        io_weight: f64,
        counters: ShardCounters,
    ) -> Self {
        ShardSnapshot { name, cpu, io, io_weight, counters, hibernated: false }
    }

    /// Marks this snapshot as a hibernated shard's stand-in.
    pub(crate) fn mark_hibernated(mut self) -> Self {
        self.hibernated = true;
        self
    }

    /// True when this snapshot is the stand-in for a hibernated shard
    /// (see [`FleetConfig`](crate::FleetConfig)). Predictions through
    /// the service wake the shard instead of answering from the stub.
    #[must_use]
    pub fn is_hibernated(&self) -> bool {
        self.hibernated
    }

    /// Predicted combined cost at `point` (CPU + `io_weight` × IO);
    /// `None` while both components are uninformed.
    ///
    /// # Errors
    ///
    /// Propagates malformed-point errors.
    pub fn predict(&self, point: &[f64]) -> Result<Option<f64>, MlqError> {
        let cpu = self.cpu.predict(point)?;
        let io = self.io.predict(point)?;
        Ok(match (cpu, io) {
            (None, None) => None,
            (c, i) => Some(c.unwrap_or(0.0) + self.io_weight * i.unwrap_or(0.0)),
        })
    }

    /// Batched [`Self::predict`]: every point is validated and quantized
    /// exactly once (both component trees share the shard's space), then
    /// one pass descends the CPU and IO packed slabs back to back and
    /// combines in place. Exactly equivalent to calling [`Self::predict`]
    /// per point, but the per-point overhead — validation, quantization,
    /// component dispatch, intermediate buffers — is paid once per batch.
    ///
    /// # Errors
    ///
    /// Fails on the first malformed point, before any descent runs.
    pub fn predict_batch<P: AsRef<[f64]>>(
        &self,
        points: &[P],
    ) -> Result<Vec<Option<f64>>, MlqError> {
        let mut out = Vec::with_capacity(points.len());
        self.predict_batch_into(points, &mut out)?;
        Ok(out)
    }

    /// [`Self::predict_batch`] into a caller-owned buffer (cleared first;
    /// left empty on error). All scratch — the descent plan and both
    /// component buffers — lives in a per-thread cache, so a reader
    /// issuing batch after batch allocates nothing in steady state.
    ///
    /// # Errors
    ///
    /// Fails on the first malformed point, before any descent runs.
    pub fn predict_batch_into<P: AsRef<[f64]>>(
        &self,
        points: &[P],
        out: &mut Vec<Option<f64>>,
    ) -> Result<(), MlqError> {
        out.clear();
        let space = &self.cpu.tree().config().space;
        debug_assert!(
            *space == self.io.tree().config().space,
            "shard components must share a space"
        );
        let levels = self.cpu.tree().packed_levels().max(self.io.tree().packed_levels());
        SHARD_SCRATCH.with(|scratch| {
            let (plan, cpu_out, io_out) = &mut *scratch.borrow_mut();
            plan.prepare(space, levels, points)?;
            // One fused pass walks both component slabs: the plan is read
            // once and the two trees' record loads overlap in the memory
            // system.
            FrozenTree::predict_planned_pair_into(
                self.cpu.tree(),
                self.io.tree(),
                plan,
                cpu_out,
                io_out,
            );
            // Guarded read policy and CPU + weight × IO combination in a
            // single pass (same per-component semantics as
            // `apply_policy`, fused so the batch is touched once).
            let (cpu_healthy, cpu_fb) = (self.cpu.healthy, self.cpu.fallback);
            let (io_healthy, io_fb) = (self.io.healthy, self.io.fallback);
            out.extend(cpu_out.iter().zip(io_out.iter()).map(|(&cpu_raw, &io_raw)| {
                let cpu = if cpu_healthy { cpu_raw.or(cpu_fb) } else { cpu_fb };
                let io = if io_healthy { io_raw.or(io_fb) } else { io_fb };
                match (cpu, io) {
                    (None, None) => None,
                    (c, i) => Some(c.unwrap_or(0.0) + self.io_weight * i.unwrap_or(0.0)),
                }
            }));
            Ok(())
        })
    }

    /// Predicts one cost component.
    ///
    /// # Errors
    ///
    /// Propagates malformed-point errors.
    pub fn predict_component(
        &self,
        point: &[f64],
        kind: CostKind,
    ) -> Result<Option<f64>, MlqError> {
        match kind {
            CostKind::Cpu => self.cpu.predict(point),
            CostKind::DiskIo => self.io.predict(point),
        }
    }

    /// The combined cost of an observed execution under this shard's
    /// weighting.
    #[must_use]
    pub fn combine(&self, cost: ExecutionCost) -> f64 {
        cost.cpu + self.io_weight * cost.io
    }

    /// The UDF this shard serves.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Guard and feedback accounting as of this snapshot's publication.
    #[must_use]
    pub fn counters(&self) -> &ShardCounters {
        &self.counters
    }

    /// Publication sequence number.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.counters.version
    }

    /// Component views (CPU, IO).
    #[must_use]
    pub fn components(&self) -> (&ComponentSnapshot, &ComponentSnapshot) {
        (&self.cpu, &self.io)
    }
}
