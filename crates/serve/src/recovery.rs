//! Checkpointing and crash recovery for the serving tier.
//!
//! A checkpoint captures one shard's *complete* mutable state — both
//! component trees through the PR-1 snapshot envelope, plus both guards'
//! [`GuardState`] — so a restored shard is behaviorally bit-identical to
//! the live shard at the captured sequence number: same predictions
//! (including the running-average fallback for uninformed regions) and
//! the same future quarantine and breaker decisions during replay.
//!
//! ## On-disk layout
//!
//! Checkpoints are *generation* numbered; per shard, generation `G`
//! consists of three files under the durability directory:
//!
//! ```text
//! {stem}.{G}.cpu.mlqs   CPU tree, PR-1 snapshot envelope
//! {stem}.{G}.io.mlqs    IO tree, PR-1 snapshot envelope
//! {stem}.{G}.meta       sealed frame: name, generation, sequence
//!                       number, both guard states
//! {stem}.wal            the feedback journal (see wal.rs)
//! ```
//!
//! The meta file is written last, through a temporary and an atomic
//! rename — it *publishes* the generation. A crash between the tree
//! files and the meta leaves a headless generation that recovery never
//! looks at. Recovery tries generations newest first and settles on the
//! first one whose meta and both tree files all verify; the previous
//! generation is retained after every checkpoint precisely so that bit
//! rot in the newest one degrades recovery ("corrupt-recovered") instead
//! of losing the shard. Anything older is pruned.
//!
//! ## Recovery protocol
//!
//! 1. Discover shards by their `{stem}.{G}.meta` files.
//! 2. Per shard, load the newest fully valid generation.
//! 3. Scan the journal's valid prefix; keep the contiguous run of
//!    records with sequence numbers greater than the checkpoint's.
//! 4. Replay that run through the normal guarded-apply path (the caller
//!    does this, with the imported guard states, so replay decisions are
//!    exactly the live decisions).
//! 5. Write a fresh checkpoint and truncate the journal, so a crash
//!    during recovery itself still recovers from the old state.

use crate::wal::WalRecord;
use crate::wal::{read_wal, shard_stem, write_file_durable, CrashOp, DurabilityIo, WalError};
use mlq_core::{
    open_frame, seal_frame, BreakerState, GuardCounters, GuardState, MemoryLimitedQuadtree,
    MlqError, Summary, TreeSnapshot,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Magic bytes of the checkpoint metadata frame.
const META_MAGIC: [u8; 4] = *b"MLQM";

/// Metadata frame version written by this build.
const META_VERSION: u32 = 2;

/// Sanity bound on the shard-name field of a meta frame.
const MAX_NAME_LEN: usize = 4096;

/// Sanity bound on a persisted guard window.
const MAX_WINDOW_LEN: usize = 1 << 20;

/// How a shard came back at startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreKind {
    /// The newest checkpoint generation verified and was restored.
    Restored,
    /// No durable state existed; the shard started fresh.
    Fresh,
    /// The newest durable state failed verification; an older generation
    /// (or a fresh model) served as the fallback.
    CorruptRecovered,
}

impl RestoreKind {
    /// Stable label used for the `mlq_serve_restore_outcome` metric.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RestoreKind::Restored => "restored",
            RestoreKind::Fresh => "fresh",
            RestoreKind::CorruptRecovered => "corrupt_recovered",
        }
    }
}

/// What recovery did for one shard.
#[derive(Debug, Clone)]
pub struct ShardRecovery {
    /// Shard (UDF) name.
    pub name: String,
    /// How the shard came back.
    pub kind: RestoreKind,
    /// Sequence number the restored checkpoint covered.
    pub checkpoint_seq: u64,
    /// Journal records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Highest sequence number reflected in the recovered models.
    pub recovered_seq: u64,
    /// Human-readable notes: which generation, journal tail state.
    pub detail: String,
}

/// Full account of one recovery pass, in shard-name order.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Per-shard outcomes.
    pub shards: Vec<ShardRecovery>,
}

/// A shard reconstructed from disk, before guard wrapping and replay.
pub(crate) struct RecoveredShard {
    pub name: String,
    pub cpu: MemoryLimitedQuadtree,
    pub io: MemoryLimitedQuadtree,
    pub cpu_guard: GuardState,
    pub io_guard: GuardState,
    pub checkpoint_seq: u64,
    pub generation: u64,
    /// Contiguous journal tail to replay, sequence numbers ascending
    /// from `checkpoint_seq + 1`.
    pub records: Vec<WalRecord>,
    pub kind: RestoreKind,
    pub detail: String,
}

/// Everything a durability directory yielded.
pub(crate) struct DirRecovery {
    pub shards: Vec<RecoveredShard>,
    /// Stems whose every generation failed verification: no model or
    /// configuration could be reconstructed. `(stem, reason)`.
    pub unreadable: Vec<(String, String)>,
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn encode_guard(out: &mut Vec<u8>, g: &GuardState) {
    out.push(match g.breaker {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    });
    out.extend_from_slice(&(g.window.len() as u32).to_le_bytes());
    for &v in &g.window {
        put_f64(out, v);
    }
    put_f64(out, g.fallback.sum);
    out.extend_from_slice(&g.fallback.count.to_le_bytes());
    put_f64(out, g.fallback.sum_sq);
    out.extend_from_slice(&g.consecutive_failures.to_le_bytes());
    out.extend_from_slice(&g.open_ops.to_le_bytes());
    out.extend_from_slice(&g.half_open_successes.to_le_bytes());
    out.extend_from_slice(&g.accepted.to_le_bytes());
    for c in [
        g.counters.quarantined,
        g.counters.clamped_points,
        g.counters.rejected_points,
        g.counters.inner_errors,
        g.counters.trips,
        g.counters.probes,
        g.counters.fallback_predictions,
        g.counters.invariant_failures,
        g.counters.regime_resets,
    ] {
        out.extend_from_slice(&c.to_le_bytes());
    }
    out.extend_from_slice(&g.pending_predict_failures.to_le_bytes());
    out.extend_from_slice(&g.fallback_predictions.to_le_bytes());
    out.extend_from_slice(&g.consecutive_quarantined.to_le_bytes());
}

/// A panic-free little-endian cursor over untrusted meta bytes.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or_else(|| "length overflow".to_string())?;
        let slice =
            self.buf.get(self.pos..end).ok_or_else(|| format!("truncated at byte {}", self.pos))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length taken")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length taken")))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_guard(r: &mut ByteReader<'_>) -> Result<GuardState, String> {
    let breaker = match r.u8()? {
        0 => BreakerState::Closed,
        1 => BreakerState::Open,
        2 => BreakerState::HalfOpen,
        other => return Err(format!("unknown breaker state {other}")),
    };
    let window_len = r.u32()? as usize;
    if window_len > MAX_WINDOW_LEN {
        return Err(format!("guard window claims {window_len} entries"));
    }
    let mut window = Vec::with_capacity(window_len);
    for _ in 0..window_len {
        window.push(r.f64()?);
    }
    let fallback = Summary { sum: r.f64()?, count: r.u64()?, sum_sq: r.f64()? };
    let consecutive_failures = r.u32()?;
    let open_ops = r.u32()?;
    let half_open_successes = r.u32()?;
    let accepted = r.u64()?;
    let counters = GuardCounters {
        quarantined: r.u64()?,
        clamped_points: r.u64()?,
        rejected_points: r.u64()?,
        inner_errors: r.u64()?,
        trips: r.u64()?,
        probes: r.u64()?,
        fallback_predictions: r.u64()?,
        invariant_failures: r.u64()?,
        regime_resets: r.u64()?,
    };
    let pending_predict_failures = r.u32()?;
    let fallback_predictions = r.u64()?;
    let consecutive_quarantined = r.u32()?;
    Ok(GuardState {
        breaker,
        window,
        fallback,
        consecutive_failures,
        consecutive_quarantined,
        open_ops,
        half_open_successes,
        accepted,
        counters,
        pending_predict_failures,
        fallback_predictions,
    })
}

struct Meta {
    name: String,
    generation: u64,
    seq: u64,
    cpu_guard: GuardState,
    io_guard: GuardState,
}

fn encode_meta(meta: &Meta) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(meta.name.len() as u32).to_le_bytes());
    payload.extend_from_slice(meta.name.as_bytes());
    payload.extend_from_slice(&meta.generation.to_le_bytes());
    payload.extend_from_slice(&meta.seq.to_le_bytes());
    encode_guard(&mut payload, &meta.cpu_guard);
    encode_guard(&mut payload, &meta.io_guard);
    seal_frame(META_MAGIC, META_VERSION, &payload)
}

fn decode_meta(bytes: &[u8]) -> Result<Meta, String> {
    let payload = open_frame(META_MAGIC, META_VERSION, bytes).map_err(|e| e.to_string())?;
    let mut r = ByteReader::new(payload);
    let name_len = r.u32()? as usize;
    if name_len > MAX_NAME_LEN {
        return Err(format!("meta name claims {name_len} bytes"));
    }
    let name = String::from_utf8(r.take(name_len)?.to_vec())
        .map_err(|_| "meta name is not UTF-8".to_string())?;
    let generation = r.u64()?;
    let seq = r.u64()?;
    let cpu_guard = decode_guard(&mut r)?;
    let io_guard = decode_guard(&mut r)?;
    if !r.done() {
        return Err("meta frame has trailing bytes".to_string());
    }
    Ok(Meta { name, generation, seq, cpu_guard, io_guard })
}

fn gen_path(dir: &Path, stem: &str, generation: u64, suffix: &str) -> PathBuf {
    dir.join(format!("{stem}.{generation}.{suffix}"))
}

/// Path of a shard's journal file.
pub(crate) fn wal_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{}.wal", shard_stem(name)))
}

/// Writes checkpoint generation `generation` for one shard: both tree
/// envelopes first, then the meta frame whose atomic rename publishes
/// the generation. Screened by `io` for fault injection and crash hooks.
#[allow(clippy::too_many_arguments)]
pub(crate) fn write_checkpoint(
    io: &mut DurabilityIo,
    dir: &Path,
    name: &str,
    generation: u64,
    seq: u64,
    cpu: &MemoryLimitedQuadtree,
    io_model: &MemoryLimitedQuadtree,
    cpu_guard: &GuardState,
    io_guard: &GuardState,
) -> Result<(), WalError> {
    let stem = shard_stem(name);
    write_file_durable(
        io,
        &gen_path(dir, &stem, generation, "cpu.mlqs"),
        &cpu.snapshot().to_envelope(),
        Some(CrashOp::CheckpointCpu),
        None,
    )?;
    write_file_durable(
        io,
        &gen_path(dir, &stem, generation, "io.mlqs"),
        &io_model.snapshot().to_envelope(),
        Some(CrashOp::CheckpointIo),
        None,
    )?;
    let meta = Meta {
        name: name.to_string(),
        generation,
        seq,
        cpu_guard: cpu_guard.clone(),
        io_guard: io_guard.clone(),
    };
    write_file_durable(
        io,
        &gen_path(dir, &stem, generation, "meta"),
        &encode_meta(&meta),
        None,
        Some(CrashOp::CheckpointMeta),
    )
}

/// Deletes generations older than `generation - 1` for `name`: the
/// current and previous generations are the corrupt-recovered safety
/// net, anything older is dead weight. Best-effort; removal failures
/// are ignored (they cost disk, not correctness).
pub(crate) fn prune_generations(dir: &Path, name: &str, generation: u64) {
    let stem = shard_stem(name);
    let keep_from = generation.saturating_sub(1);
    for (gen_found, _) in list_generations(dir, &stem) {
        if gen_found < keep_from {
            for suffix in ["cpu.mlqs", "io.mlqs", "meta"] {
                let _ = std::fs::remove_file(gen_path(dir, &stem, gen_found, suffix));
            }
        }
    }
}

/// All `(generation, meta path)` pairs on disk for `stem`, unordered.
fn list_generations(dir: &Path, stem: &str) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return found };
    for entry in entries.flatten() {
        let file_name = entry.file_name();
        let Some(name) = file_name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(stem) else { continue };
        let Some(rest) = rest.strip_prefix('.') else { continue };
        let Some(gen_str) = rest.strip_suffix(".meta") else { continue };
        if let Ok(generation) = gen_str.parse::<u64>() {
            found.push((generation, entry.path()));
        }
    }
    found
}

/// Tries to load one full generation: meta plus both tree envelopes.
fn load_generation(dir: &Path, stem: &str, meta_path: &Path) -> Result<RecoveredShard, String> {
    let bytes = std::fs::read(meta_path).map_err(|e| format!("meta read: {e}"))?;
    let meta = decode_meta(&bytes)?;
    if shard_stem(&meta.name) != stem {
        return Err(format!("meta names shard {:?}, which does not match stem {stem}", meta.name));
    }
    let load_tree = |suffix: &str| -> Result<MemoryLimitedQuadtree, String> {
        let path = gen_path(dir, stem, meta.generation, suffix);
        let bytes =
            std::fs::read(&path).map_err(|e| format!("tree read {}: {e}", path.display()))?;
        let snapshot = TreeSnapshot::from_envelope(&bytes)
            .map_err(|e| format!("tree envelope {}: {e}", path.display()))?;
        MemoryLimitedQuadtree::from_snapshot(&snapshot)
            .map_err(|e| format!("tree rebuild {}: {e}", path.display()))
    };
    let cpu = load_tree("cpu.mlqs")?;
    let io = load_tree("io.mlqs")?;
    Ok(RecoveredShard {
        name: meta.name,
        cpu,
        io,
        cpu_guard: meta.cpu_guard,
        io_guard: meta.io_guard,
        checkpoint_seq: meta.seq,
        generation: meta.generation,
        records: Vec::new(),
        kind: RestoreKind::Restored,
        detail: String::new(),
    })
}

/// Recovers every shard a durability directory holds: newest valid
/// generation per shard plus the contiguous journal tail to replay. A
/// missing directory recovers nothing (first boot).
///
/// # Errors
///
/// [`MlqError::IoFault`] when the directory exists but cannot be listed,
/// or a journal exists but cannot be read. Corrupt *content* is never an
/// error — it degrades to an older generation or lands in `unreadable`.
pub(crate) fn recover_dir(dir: &Path) -> Result<DirRecovery, MlqError> {
    let mut stems: BTreeMap<String, Vec<(u64, PathBuf)>> = BTreeMap::new();
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries.flatten() {
                let file_name = entry.file_name();
                let Some(name) = file_name.to_str() else { continue };
                let Some(prefix) = name.strip_suffix(".meta") else { continue };
                // `{stem}.{gen}` — split at the last dot.
                let Some((stem, gen_str)) = prefix.rsplit_once('.') else { continue };
                let Ok(generation) = gen_str.parse::<u64>() else { continue };
                stems.entry(stem.to_string()).or_default().push((generation, entry.path()));
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(DirRecovery { shards: Vec::new(), unreadable: Vec::new() });
        }
        Err(e) => {
            return Err(MlqError::IoFault {
                reason: format!("durability dir read {}: {e}", dir.display()),
            });
        }
    }

    let mut shards = Vec::new();
    let mut unreadable = Vec::new();
    for (stem, mut generations) in stems {
        generations.sort_by_key(|g| std::cmp::Reverse(g.0));
        let mut chosen: Option<RecoveredShard> = None;
        let mut failures: Vec<String> = Vec::new();
        for (i, (generation, meta_path)) in generations.iter().enumerate() {
            match load_generation(dir, &stem, meta_path) {
                Ok(mut shard) => {
                    shard.kind =
                        if i == 0 { RestoreKind::Restored } else { RestoreKind::CorruptRecovered };
                    shard.detail = if failures.is_empty() {
                        format!("generation {generation}")
                    } else {
                        format!(
                            "generation {generation} after rejecting newer: {}",
                            failures.join("; ")
                        )
                    };
                    chosen = Some(shard);
                    break;
                }
                Err(reason) => failures.push(format!("gen {generation}: {reason}")),
            }
        }
        let Some(mut shard) = chosen else {
            unreadable.push((stem, failures.join("; ")));
            continue;
        };

        // The journal tail: records past the checkpoint, contiguous.
        let scan = read_wal(&wal_path(dir, &shard.name))?;
        let mut expected = shard.checkpoint_seq + 1;
        for rec in scan.records {
            if rec.seq < expected {
                continue; // already covered by the checkpoint
            }
            if rec.seq == expected {
                expected += 1;
                shard.records.push(rec);
            } else {
                shard
                    .detail
                    .push_str(&format!("; journal gap at seq {expected} (found {})", rec.seq));
                break;
            }
        }
        if let Some(torn) = scan.torn {
            shard.detail.push_str(&format!(
                "; journal tail: {torn} (valid prefix {} bytes)",
                scan.valid_len
            ));
        }
        shards.push(shard);
    }
    Ok(DirRecovery { shards, unreadable })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{DurabilityConfig, WalWriter};
    use mlq_core::{CostModel, GuardConfig, GuardedModel, InsertionStrategy, MlqConfig, Space};
    use mlq_udfs::ExecutionCost;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mlq_rec_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quiet_io() -> DurabilityIo {
        DurabilityIo::new(&DurabilityConfig::new("unused")).unwrap()
    }

    fn trained_pair() -> (MemoryLimitedQuadtree, MemoryLimitedQuadtree, GuardState, GuardState) {
        let config = MlqConfig::builder(Space::cube(2, 0.0, 100.0).unwrap())
            .memory_budget(4096)
            .strategy(InsertionStrategy::Lazy { alpha: 0.05 })
            .build()
            .unwrap();
        let mut cpu = GuardedModel::for_quadtree(
            MemoryLimitedQuadtree::new(config.clone()).unwrap(),
            GuardConfig::default(),
        )
        .unwrap();
        let mut io = GuardedModel::for_quadtree(
            MemoryLimitedQuadtree::new(config).unwrap(),
            GuardConfig::default(),
        )
        .unwrap();
        for i in 0..150u32 {
            let p = [f64::from(i.wrapping_mul(13) % 100), f64::from(i.wrapping_mul(7) % 100)];
            cpu.observe(&p, f64::from(i % 11) + 0.5).unwrap();
            io.observe(&p, f64::from(i % 5) + 0.25).unwrap();
        }
        let (cs, is) = (cpu.export_state(), io.export_state());
        (cpu.into_inner(), io.into_inner(), cs, is)
    }

    #[test]
    fn checkpoint_roundtrips_models_and_guard_states() {
        let dir = temp_dir("roundtrip");
        let (cpu, io_model, cpu_guard, io_guard) = trained_pair();
        let mut io = quiet_io();
        write_checkpoint(&mut io, &dir, "WIN", 3, 150, &cpu, &io_model, &cpu_guard, &io_guard)
            .unwrap();

        let rec = recover_dir(&dir).unwrap();
        assert!(rec.unreadable.is_empty());
        assert_eq!(rec.shards.len(), 1);
        let shard = &rec.shards[0];
        assert_eq!(shard.name, "WIN");
        assert_eq!(shard.kind, RestoreKind::Restored);
        assert_eq!(shard.checkpoint_seq, 150);
        assert_eq!(shard.generation, 3);
        assert!(shard.records.is_empty());
        assert_eq!(shard.cpu_guard, cpu_guard);
        assert_eq!(shard.io_guard, io_guard);
        for i in 0..50u32 {
            let p = [f64::from(i * 3 % 100), f64::from(i * 17 % 100)];
            assert_eq!(shard.cpu.predict(&p).unwrap(), cpu.predict(&p).unwrap());
            assert_eq!(shard.io.predict(&p).unwrap(), io_model.predict(&p).unwrap());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_generation_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        let (cpu, io_model, cpu_guard, io_guard) = trained_pair();
        let mut io = quiet_io();
        for generation in [1, 2] {
            write_checkpoint(
                &mut io,
                &dir,
                "WIN",
                generation,
                generation * 100,
                &cpu,
                &io_model,
                &cpu_guard,
                &io_guard,
            )
            .unwrap();
        }
        // Rot the newest generation's CPU tree.
        let cpu_path = dir.join(format!("{}.2.cpu.mlqs", shard_stem("WIN")));
        let mut bytes = std::fs::read(&cpu_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&cpu_path, &bytes).unwrap();

        let rec = recover_dir(&dir).unwrap();
        assert_eq!(rec.shards.len(), 1);
        let shard = &rec.shards[0];
        assert_eq!(shard.kind, RestoreKind::CorruptRecovered);
        assert_eq!(shard.generation, 1);
        assert_eq!(shard.checkpoint_seq, 100);
        assert!(
            shard.detail.contains("gen 2"),
            "detail should cite the rejected gen: {}",
            shard.detail
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_generation_corrupt_is_unreadable_not_an_error() {
        let dir = temp_dir("unreadable");
        let (cpu, io_model, cpu_guard, io_guard) = trained_pair();
        let mut io = quiet_io();
        write_checkpoint(&mut io, &dir, "WIN", 1, 10, &cpu, &io_model, &cpu_guard, &io_guard)
            .unwrap();
        let meta_path = dir.join(format!("{}.1.meta", shard_stem("WIN")));
        std::fs::write(&meta_path, b"garbage").unwrap();

        let rec = recover_dir(&dir).unwrap();
        assert!(rec.shards.is_empty());
        assert_eq!(rec.unreadable.len(), 1);
        assert_eq!(rec.unreadable[0].0, shard_stem("WIN"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_tail_replays_contiguously_and_skips_covered_records() {
        let dir = temp_dir("tail");
        let (cpu, io_model, cpu_guard, io_guard) = trained_pair();
        let mut io = quiet_io();
        write_checkpoint(&mut io, &dir, "WIN", 1, 2, &cpu, &io_model, &cpu_guard, &io_guard)
            .unwrap();
        // Journal holds seq 1..=5; the checkpoint covers 1..=2.
        let mut wal = WalWriter::create(wal_path(&dir, "WIN"), 0).unwrap();
        for i in 1..=5u32 {
            wal.append(
                &[f64::from(i), 0.0],
                ExecutionCost { cpu: f64::from(i), io: 1.0, results: 1 },
            );
        }
        wal.commit(&mut io).unwrap();

        let rec = recover_dir(&dir).unwrap();
        let shard = &rec.shards[0];
        let seqs: Vec<u64> = shard.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruning_keeps_current_and_previous_generations() {
        let dir = temp_dir("prune");
        let (cpu, io_model, cpu_guard, io_guard) = trained_pair();
        let mut io = quiet_io();
        for generation in 1..=4u64 {
            write_checkpoint(
                &mut io, &dir, "WIN", generation, generation, &cpu, &io_model, &cpu_guard,
                &io_guard,
            )
            .unwrap();
        }
        prune_generations(&dir, "WIN", 4);
        let stem = shard_stem("WIN");
        let gens: Vec<u64> = list_generations(&dir, &stem).into_iter().map(|(g, _)| g).collect();
        let mut gens = gens;
        gens.sort_unstable();
        assert_eq!(gens, vec![3, 4]);
        assert!(!dir.join(format!("{stem}.1.cpu.mlqs")).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn meta_bit_flips_never_restore_silently() {
        let (cpu, io_model, cpu_guard, io_guard) = trained_pair();
        let _ = (cpu, io_model);
        let meta = Meta { name: "WIN".into(), generation: 9, seq: 1234, cpu_guard, io_guard };
        let bytes = encode_meta(&meta);
        let back = decode_meta(&bytes).unwrap();
        assert_eq!(back.name, "WIN");
        assert_eq!(back.generation, 9);
        assert_eq!(back.seq, 1234);
        assert_eq!(back.cpu_guard, meta.cpu_guard);
        assert_eq!(back.io_guard, meta.io_guard);
        let stride = (bytes.len() / 61).max(1);
        for idx in (0..bytes.len()).step_by(stride) {
            let mut mutated = bytes.clone();
            mutated[idx] ^= 0x08;
            if let Ok(decoded) = decode_meta(&mutated) {
                panic!("flip at byte {idx} decoded: name {:?}", decoded.name);
            }
        }
    }
}
