//! Deterministic concurrency harness for the serve/feedback pipeline.
//!
//! Built on [`MaintainerMode::Manual`]: no maintainer thread exists, so
//! nothing happens between explicit [`ConcurrentEstimator::step`] calls —
//! every drain, apply, and republish is driven by the test itself. That
//! turns the registry's metrics into exact, scriptable quantities: the
//! assertions below are equalities, not sleep-and-hope thresholds.
//!
//! The multi-writer tests use seeded workloads with the `Block` policy
//! and a capacity that can never fill, so the final totals are
//! schedule-independent whatever the OS does with thread interleaving.

use mlq_core::Space;
use mlq_serve::{
    BackpressurePolicy, ConcurrentEstimator, MaintainerMode, PushOutcome, ServeConfig,
};
use mlq_udfs::ExecutionCost;
use std::sync::Arc;
use std::thread;

const SEED_MATRIX: [u64; 4] = [0x5EED, 0xBEEF, 0xC0FFEE, 1];

fn manual_config() -> ServeConfig {
    ServeConfig { maintainer: MaintainerMode::Manual, ..ServeConfig::default() }
}

fn service(config: ServeConfig, udfs: &[&str]) -> ConcurrentEstimator {
    let space = Space::cube(2, 0.0, 100.0).expect("space");
    let mut builder = ConcurrentEstimator::builder(config);
    for name in udfs {
        builder = builder.register(name, &space).expect("register");
    }
    builder.build().expect("build")
}

fn cost(cpu: f64) -> ExecutionCost {
    ExecutionCost { cpu, io: 1.0, results: 0 }
}

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

#[test]
fn scripted_batches_account_exactly() {
    let svc = service(manual_config(), &["A", "B"]);

    // Script: 4 observations for A, 3 for B, no maintenance yet.
    for i in 0..4 {
        svc.observe("A", &[f64::from(i), 1.0], cost(10.0)).expect("observe A");
    }
    for i in 0..3 {
        svc.observe("B", &[f64::from(i), 2.0], cost(20.0)).expect("observe B");
    }
    assert_eq!(svc.feedback_lag(), 7);
    let m = svc.metrics();
    assert_eq!(m.counter("mlq_serve_queue_enqueued"), Some(7));
    assert_eq!(m.counter("mlq_serve_processed"), Some(0));
    assert_eq!(m.gauge("mlq_serve_queue_depth"), Some(7.0));

    // Drain in scripted batch sizes 3, 3, 1 (FIFO: AAA, AB B, B).
    assert_eq!(svc.step(3).expect("step"), 3);
    assert_eq!(svc.step(3).expect("step"), 3);
    assert_eq!(svc.step(3).expect("step"), 1);
    assert_eq!(svc.step(3).expect("step"), 0, "queue is empty now");
    assert_eq!(svc.feedback_lag(), 0);

    let m = svc.metrics();
    assert_eq!(m.counter("mlq_serve_processed"), Some(7));
    assert_eq!(m.gauge("mlq_serve_queue_depth"), Some(0.0));
    assert_eq!(m.gauge("mlq_serve_queue_max_depth"), Some(7.0));
    assert_eq!(m.counter("mlq_serve_applied{udf=\"A\"}"), Some(4));
    assert_eq!(m.counter("mlq_serve_applied{udf=\"B\"}"), Some(3));
    assert_eq!(m.counter("mlq_serve_apply_errors{udf=\"A\"}"), Some(0));

    // Batch-size histogram: exactly three non-empty batches totalling 7.
    let batches = m.histogram("mlq_serve_batch_size").expect("batch histogram");
    assert_eq!(batches.count(), 3);
    assert_eq!(batches.sum, 7);

    // Publish accounting: batch 1 touches A only, batch 2 touches A and
    // B, batch 3 touches B only — 4 feedback-driven republications.
    assert_eq!(m.counter("mlq_serve_publishes"), Some(4));
    // Initial publish + those republications, per shard.
    assert_eq!(m.counter("mlq_serve_snapshot_version{udf=\"A\"}"), Some(3));
    assert_eq!(m.counter("mlq_serve_snapshot_version{udf=\"B\"}"), Some(3));

    // The applied feedback is visible to readers after the step.
    let v = svc.predict("A", &[1.0, 1.0]).expect("predict").expect("trained");
    assert!((v - 110.0).abs() < 1e-9, "10 cpu + 100 io_weight * 1 io, got {v}");
}

#[test]
fn scripted_reader_sees_exactly_the_stepped_state() {
    let svc = service(manual_config(), &["F"]);
    let before = svc.snapshot("F").expect("snapshot");

    svc.observe("F", &[5.0, 5.0], cost(40.0)).expect("observe");
    // Not yet stepped: the published snapshot is unchanged.
    let held = svc.snapshot("F").expect("snapshot");
    assert_eq!(held.counters().version, before.counters().version);
    assert_eq!(held.predict(&[5.0, 5.0]).expect("predict"), None);

    assert_eq!(svc.step(16).expect("step"), 1);
    // The old snapshot is immutable; a re-fetch sees the new state.
    assert_eq!(held.predict(&[5.0, 5.0]).expect("predict"), None);
    let after = svc.snapshot("F").expect("snapshot");
    assert_eq!(after.counters().version, before.counters().version + 1);
    assert_eq!(after.counters().applied, 1);
    assert!(after.predict(&[5.0, 5.0]).expect("predict").is_some());
}

#[test]
fn drop_oldest_overflow_accounting_is_exact() {
    let config = ServeConfig {
        queue_capacity: 4,
        backpressure: BackpressurePolicy::DropOldest,
        ..manual_config()
    };
    let svc = service(config, &["F"]);

    let mut dropped = 0;
    for i in 0..10 {
        let outcome = svc.observe("F", &[f64::from(i % 7), 0.0], cost(5.0)).expect("observe");
        if outcome == PushOutcome::DroppedOldest {
            dropped += 1;
        }
    }
    assert_eq!(dropped, 6, "pushes 5..10 each evict the head");

    let m = svc.metrics();
    assert_eq!(m.counter("mlq_serve_queue_enqueued"), Some(10));
    assert_eq!(m.counter("mlq_serve_queue_dropped_oldest"), Some(6));
    assert_eq!(m.gauge("mlq_serve_queue_depth"), Some(4.0));
    assert_eq!(m.gauge("mlq_serve_queue_max_depth"), Some(4.0));

    // Only the 4 surviving observations ever reach the model.
    assert_eq!(svc.step(usize::MAX).expect("step"), 4);
    let m = svc.metrics();
    assert_eq!(m.counter("mlq_serve_processed"), Some(4));
    assert_eq!(m.counter("mlq_serve_applied{udf=\"F\"}"), Some(4));
}

#[test]
fn sample_policy_thins_on_a_deterministic_schedule() {
    let config = ServeConfig {
        queue_capacity: 2,
        backpressure: BackpressurePolicy::Sample { keep_one_in: 3 },
        ..manual_config()
    };
    let svc = service(config, &["F"]);

    for i in 0..2 {
        assert_eq!(
            svc.observe("F", &[f64::from(i), 0.0], cost(5.0)).expect("observe"),
            PushOutcome::Enqueued
        );
    }
    // Overflow ticks 1..=7: ticks 3 and 6 admit (evicting the head), the
    // other five are thinned out.
    let outcomes: Vec<PushOutcome> = (0..7)
        .map(|i| svc.observe("F", &[f64::from(i), 1.0], cost(5.0)).expect("observe"))
        .collect();
    assert_eq!(outcomes.iter().filter(|&&o| o == PushOutcome::DroppedOldest).count(), 2);
    assert_eq!(outcomes.iter().filter(|&&o| o == PushOutcome::SampledOut).count(), 5);

    let m = svc.metrics();
    assert_eq!(m.counter("mlq_serve_queue_enqueued"), Some(4));
    assert_eq!(m.counter("mlq_serve_queue_dropped_oldest"), Some(2));
    assert_eq!(m.counter("mlq_serve_queue_sampled_out"), Some(5));
}

#[test]
fn seeded_writer_threads_converge_to_schedule_independent_totals() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 200;

    for seed0 in SEED_MATRIX {
        // Block + roomy capacity: no observation can ever be dropped, so
        // the totals below hold for every possible thread interleaving.
        let config = ServeConfig {
            queue_capacity: WRITERS * PER_WRITER,
            backpressure: BackpressurePolicy::Block,
            ..manual_config()
        };
        let svc = Arc::new(service(config, &["A", "B"]));

        thread::scope(|scope| {
            for w in 0..WRITERS {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    let mut seed = seed0.wrapping_add(w as u64).wrapping_mul(0x9E37_79B9) | 1;
                    for _ in 0..PER_WRITER {
                        let r = xorshift(&mut seed);
                        let name = if r.is_multiple_of(2) { "A" } else { "B" };
                        let p = [(r % 100) as f64, ((r >> 8) % 100) as f64];
                        svc.observe(name, &p, cost(5.0 + (r % 10) as f64)).expect("observe");
                    }
                });
            }
            // The test thread is the maintainer, stepping concurrently
            // with the writers. Interleaving varies; the totals cannot.
            let mut applied = 0usize;
            while applied < WRITERS * PER_WRITER {
                applied += svc.step(64).expect("step");
            }
        });

        let total = (WRITERS * PER_WRITER) as u64;
        let m = svc.metrics();
        assert_eq!(m.counter("mlq_serve_queue_enqueued"), Some(total), "seed {seed0:#x}");
        assert_eq!(m.counter("mlq_serve_processed"), Some(total), "seed {seed0:#x}");
        assert_eq!(m.counter("mlq_serve_queue_dropped_oldest"), Some(0));
        assert_eq!(m.counter("mlq_serve_queue_sampled_out"), Some(0));
        let applied_a = m.counter("mlq_serve_applied{udf=\"A\"}").expect("A applied");
        let applied_b = m.counter("mlq_serve_applied{udf=\"B\"}").expect("B applied");
        assert_eq!(applied_a + applied_b, total, "seed {seed0:#x}");
        assert_eq!(svc.feedback_lag(), 0);
        // Batch sizes sum to the processed total exactly.
        let batches = m.histogram("mlq_serve_batch_size").expect("batch histogram");
        assert_eq!(batches.sum, total, "seed {seed0:#x}");
    }
}

#[test]
fn manual_shutdown_flushes_everything_without_any_steps() {
    let svc = service(manual_config(), &["F"]);
    for i in 0..25 {
        svc.observe("F", &[f64::from(i % 9), 3.0], cost(7.0)).expect("observe");
    }
    let report = svc.shutdown().expect("first shutdown");
    assert_eq!(report.queue.enqueued, 25);
    assert_eq!(report.shards[0].1.applied, 25);
    assert_eq!(report.metrics.counter("mlq_serve_processed"), Some(25));
    assert_eq!(report.metrics.counter("mlq_serve_applied{udf=\"F\"}"), Some(25));
    assert!(svc.shutdown().is_none(), "shutdown is idempotent");
    assert!(svc.step(1).is_err(), "no stepping after shutdown");
}

#[test]
fn flush_drives_manual_maintenance_on_the_calling_thread() {
    let svc = service(manual_config(), &["F"]);
    for i in 0..10 {
        svc.observe("F", &[f64::from(i), 0.0], cost(3.0)).expect("observe");
    }
    svc.flush();
    assert_eq!(svc.feedback_lag(), 0);
    assert_eq!(svc.metrics().counter("mlq_serve_processed"), Some(10));
}

#[test]
fn step_is_refused_under_background_mode() {
    let svc = service(ServeConfig::default(), &["F"]);
    assert!(svc.step(8).is_err());
    svc.shutdown();
}

#[test]
fn registry_snapshot_round_trips_through_prometheus_text() {
    let svc = service(manual_config(), &["A", "B"]);
    for i in 0..6 {
        svc.observe(if i % 2 == 0 { "A" } else { "B" }, &[f64::from(i), 1.0], cost(9.0))
            .expect("observe");
    }
    svc.step(usize::MAX).expect("step");
    let snap = svc.metrics();
    let text = snap.to_prometheus_text();
    let parsed = mlq_obs::RegistrySnapshot::parse_prometheus_text(&text).expect("parse exposition");
    assert_eq!(parsed.counter("mlq_serve_queue_enqueued"), Some(6));
    assert_eq!(parsed.counter("mlq_serve_applied{udf=\"A\"}"), Some(3));
    assert_eq!(
        parsed.histogram("mlq_serve_batch_size").map(|h| (h.count(), h.sum)),
        snap.histogram("mlq_serve_batch_size").map(|h| (h.count(), h.sum)),
    );
}

#[test]
fn batched_reads_match_single_reads_and_account_once_per_batch() {
    let svc = service(manual_config(), &["A"]);
    let mut seed = 0x5EEDu64;
    for _ in 0..200 {
        let p = [(xorshift(&mut seed) % 100) as f64, (xorshift(&mut seed) % 100) as f64];
        svc.observe("A", &p, cost((xorshift(&mut seed) % 50) as f64)).expect("observe");
    }
    svc.flush();

    let queries: Vec<Vec<f64>> = (0..64)
        .map(|_| vec![(xorshift(&mut seed) % 100) as f64, (xorshift(&mut seed) % 100) as f64])
        .collect();
    let batch = svc.predict_batch("A", &queries).expect("batch");
    assert_eq!(batch.len(), queries.len());
    for (q, b) in queries.iter().zip(&batch) {
        assert_eq!(*b, svc.predict("A", q).expect("single"), "point {q:?}");
    }

    // Read accounting is exact: one batch of 64 plus 64 singles = 128,
    // all under the same per-UDF series.
    let m = svc.metrics();
    assert_eq!(m.counter("mlq_serve_reads{udf=\"A\"}"), Some(128));
    assert!(svc.predict_batch("missing", &queries).is_err());
}

#[test]
fn batched_reads_use_one_snapshot_even_across_republication() {
    // A snapshot fetched before new feedback keeps answering the batch
    // from the old state; the service-level batch sees the new state —
    // both are internally consistent.
    let svc = service(manual_config(), &["F"]);
    svc.observe("F", &[5.0, 5.0], cost(40.0)).expect("observe");
    svc.flush();
    let held = svc.snapshot("F").expect("snapshot");

    svc.observe("F", &[5.0, 5.0], cost(400.0)).expect("observe");
    svc.flush();

    let old = held.predict_batch(&[vec![5.0, 5.0]]).expect("held batch");
    let new = svc.predict_batch("F", &[vec![5.0, 5.0]]).expect("service batch");
    assert_eq!(old[0], held.predict(&[5.0, 5.0]).expect("held single"));
    assert_eq!(new[0], svc.predict("F", &[5.0, 5.0]).expect("service single"));
    assert!(new[0].unwrap() > old[0].unwrap(), "republication moved the estimate");
}

#[test]
fn open_breaker_batches_fall_back_like_single_predictions() {
    use mlq_optimizer::Estimator as _;

    let svc = Arc::new(service(manual_config(), &["G"]));
    for i in 0..50 {
        svc.observe("G", &[f64::from(i % 10) * 10.0, 5.0], cost(20.0)).expect("observe");
    }
    svc.flush();
    // Hammer one component with outliers until its breaker opens.
    for _ in 0..64 {
        svc.observe("G", &[5.0, 5.0], cost(1e7)).expect("observe outlier");
        svc.flush();
        if !svc.counters("G").expect("counters").is_healthy() {
            break;
        }
    }
    let handle = svc.handle("G").expect("handle");
    let queries: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i * 5 % 100), 5.0]).collect();
    let batch = handle.predict_batch(&queries).expect("handle batch");
    for (q, b) in queries.iter().zip(&batch) {
        assert_eq!(*b, handle.predict(q).expect("single"), "point {q:?}");
    }
}
