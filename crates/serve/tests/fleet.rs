//! Deterministic fleet-arbitration harness.
//!
//! Proves the three load-bearing properties of fleet-level budget
//! arbitration (DESIGN.md §14):
//!
//! 1. **Budget invariant** — after every arbitration step the summed
//!    accounted bytes of all live models fit the global budget.
//! 2. **Hibernation transparency** — hibernate → wake → predict is
//!    bit-identical to never hibernating at all.
//! 3. **Skew pays off** — under a seeded 90/10 traffic skew the hot
//!    model's accuracy (NAE over a holdout grid) is no worse than
//!    dedicated-budget operation with the same total memory, while the
//!    cold models shrink to hibernation envelopes.
//!
//! Plus the traffic-accounting regression tests: arbitration snapshots
//! every read counter exactly once per round, so the per-round traffic
//! deltas partition the true read totals even under concurrent readers
//! (the stale-counter bug class the `feedback_lag` fix addressed).
//!
//! Seeds come from `MLQ_FLEET_SEED` (CI sweeps 25); on an equivalence
//! or accuracy failure the diff is written under `target/fleet-diff/`
//! for the CI artifact upload.

use mlq_core::GuardConfig;
use mlq_serve::{ConcurrentEstimator, FleetConfig, MaintainerMode, ServeConfig};
use mlq_synth::{CostSurface, FleetScenario, QueryDistribution};
use mlq_udfs::ExecutionCost;
use std::path::PathBuf;

fn space() -> mlq_core::Space {
    mlq_core::Space::cube(2, 0.0, 1000.0).unwrap()
}

fn harness_seed() -> u64 {
    std::env::var("MLQ_FLEET_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xF1EE7)
}

/// SplitMix64, the harness-standard deterministic generator.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn serve_config(fleet: Option<FleetConfig>, budget_per_model: usize) -> ServeConfig {
    ServeConfig {
        maintainer: MaintainerMode::Manual,
        budget_per_model,
        // Disable outlier quarantine: fleet and dedicated services must
        // absorb identical observation sets for the comparisons below.
        guard: GuardConfig { mad_k: 1e9, ..GuardConfig::default() },
        fleet,
        ..ServeConfig::default()
    }
}

fn build(names: &[String], config: ServeConfig) -> ConcurrentEstimator {
    let mut b = ConcurrentEstimator::builder(config);
    for name in names {
        b = b.register(name, &space()).unwrap();
    }
    b.build().unwrap()
}

fn model_names(n: usize) -> Vec<String> {
    (0..n).map(|m| format!("M{m}")).collect()
}

fn probe_points() -> Vec<[f64; 2]> {
    let mut points = Vec::new();
    for i in 0..7 {
        for j in 0..7 {
            points.push([40.0 + 140.0 * f64::from(i), 70.0 + 138.0 * f64::from(j)]);
        }
    }
    points
}

fn diff_artifact_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "../../target".into());
    PathBuf::from(target).join("fleet-diff")
}

fn write_diff(tag: &str, diff: &str) -> PathBuf {
    let dir = diff_artifact_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join(format!("{tag}.txt"));
    std::fs::write(&path, diff).ok();
    path
}

/// Mean absolute error over the holdout grid, normalized by the mean
/// true cost. Uninformed predictions score as full misses.
fn nae(svc: &ConcurrentEstimator, name: &str, scenario: &FleetScenario, model: usize) -> f64 {
    let mut err = 0.0;
    let mut truth_sum = 0.0;
    for p in probe_points() {
        let truth = scenario.surface(model).cost(&p);
        let pred = svc.predict(name, &p).unwrap().unwrap_or(0.0);
        err += (pred - truth).abs();
        truth_sum += truth;
    }
    err / truth_sum
}

/// Property 1: after every arbitration step, the live models fit the
/// global budget (and the round reports `fit`). Exercised under eviction
/// pressure: generous per-model budgets, a tight global one.
#[test]
fn global_budget_holds_after_every_arbitration_step() {
    let seed = harness_seed();
    let names = model_names(4);
    let budget = 24 * 1024;
    let scenario = FleetScenario::new(space(), QueryDistribution::Uniform, 4, 2, 0.9, seed);
    let svc = build(
        &names,
        serve_config(Some(FleetConfig { global_budget: budget, hibernate_after: 0 }), 1 << 20),
    );
    let events = scenario.stream(1200);
    for (step, chunk) in events.chunks(64).enumerate() {
        for e in chunk {
            svc.observe(
                &names[e.model],
                &e.point,
                ExecutionCost { cpu: e.cost, io: e.cost / 8.0, results: 1 },
            )
            .unwrap();
            // Every event is also a read: the traffic signal arbitration
            // weighs.
            svc.predict(&names[e.model], &e.point).unwrap();
        }
        svc.flush();
        let live = svc.fleet_live_bytes().unwrap();
        assert!(
            live <= budget,
            "step {step}: live models hold {live} B over the {budget} B global budget"
        );
        let report = svc.last_arbitration().unwrap().expect("arbitration ran");
        assert!(report.fit, "step {step}: round {} reported unfit", report.round);
    }
    let metrics = svc.metrics();
    assert_eq!(
        metrics.counter("mlq_catalog_budget_overruns"),
        Some(0),
        "arbitration reported a budget overrun"
    );
    assert!(
        metrics.counter("mlq_catalog_evicted_leaves").unwrap_or(0) > 0,
        "the tight budget never forced a cross-model eviction — the test lost its teeth"
    );
    svc.shutdown();
}

/// Property 2: hibernate → wake → predict is bit-identical to never
/// hibernating. The global budget is effectively infinite so eviction
/// never runs — any divergence is the hibernation envelope's fault
/// alone.
#[test]
fn hibernation_roundtrip_is_bit_identical() {
    let seed = harness_seed();
    let names = model_names(2);
    let fleet = build(
        &names,
        serve_config(Some(FleetConfig { global_budget: 1 << 30, hibernate_after: 2 }), 1 << 20),
    );
    let twin = build(&names, serve_config(None, 1 << 20));

    let mut rng = SplitMix64(seed ^ 0xB17);
    for _ in 0..300 {
        let shard = (rng.next_u64() % 2) as usize;
        let point = [rng.next_f64() * 1000.0, rng.next_f64() * 1000.0];
        let cost = ExecutionCost {
            cpu: (1 + rng.next_u64() % 800) as f64 / 8.0,
            io: (1 + rng.next_u64() % 160) as f64 / 8.0,
            results: 1,
        };
        fleet.observe(&names[shard], &point, cost).unwrap();
        twin.observe(&names[shard], &point, cost).unwrap();
    }
    fleet.flush();
    twin.flush();

    // Starve M1 of reads while keeping M0 hot until M1 hibernates.
    let mut rounds = 0;
    while !fleet.is_hibernated("M1").unwrap() {
        fleet.predict("M0", &[500.0, 500.0]).unwrap();
        fleet.step(64).unwrap();
        rounds += 1;
        assert!(rounds < 50, "M1 never hibernated after {rounds} idle rounds");
    }
    assert!(!fleet.is_hibernated("M0").unwrap(), "the hot shard must stay live");

    // The first M1 predict wakes it; every prediction after the round
    // trip must match the never-hibernated twin bit for bit.
    let mut diff = String::new();
    for name in &names {
        for p in probe_points() {
            let got = fleet.predict(name, &p).unwrap().map(f64::to_bits);
            let want = twin.predict(name, &p).unwrap().map(f64::to_bits);
            if got != want {
                diff.push_str(&format!(
                    "shard {name} probe {p:?}: woken {got:?} != twin {want:?}\n"
                ));
            }
        }
    }
    if !diff.is_empty() {
        let path = write_diff(&format!("hibernate_roundtrip_seed_{seed}"), &diff);
        panic!("hibernation round trip diverged:\n{diff}(diff written to {})", path.display());
    }
    assert!(!fleet.is_hibernated("M1").unwrap(), "prediction must wake the shard");
    assert!(
        fleet.metrics().counter("mlq_catalog_restores").unwrap_or(0) > 0,
        "no restore was counted — hibernation never round-tripped"
    );
    fleet.shutdown();
    twin.shutdown();
}

/// Property 3: under a seeded 90/10 skew, the fleet-arbitrated hot model
/// is at least as accurate as dedicated-budget operation with the same
/// total memory, and the cold models shrink to hibernation envelopes.
#[test]
fn skew_preserves_hot_accuracy_while_cold_models_shrink() {
    let seed = harness_seed();
    let n = 6;
    let names = model_names(n);
    let global_budget = 48 * 1024;
    let scenario = FleetScenario::new(space(), QueryDistribution::Uniform, n, 1, 0.9, seed);
    // Dedicated operation: the same total memory split evenly across the
    // fleet's 2n component models, no global coupling.
    let dedicated = build(&names, serve_config(None, global_budget / (2 * n)));
    // Fleet operation: generous per-model budgets, the global budget and
    // hibernation doing the arbitration.
    let fleet = build(
        &names,
        serve_config(Some(FleetConfig { global_budget, hibernate_after: 3 }), 1 << 20),
    );

    let feed = |svc: &ConcurrentEstimator, events: &[mlq_synth::FleetEvent], hot_only: bool| {
        for chunk in events.chunks(64) {
            for e in chunk {
                if hot_only && e.model != 0 {
                    continue;
                }
                svc.observe(
                    &names[e.model],
                    &e.point,
                    ExecutionCost { cpu: e.cost, io: 0.0, results: 1 },
                )
                .unwrap();
                svc.predict(&names[e.model], &e.point).unwrap();
            }
            svc.flush();
        }
    };

    let events = scenario.stream(2500);
    // Phase 1: the whole fleet trains and serves (everything warm).
    feed(&dedicated, &events, false);
    feed(&fleet, &events, false);
    // Phase 2: traffic collapses onto the hot model. Cold shards stop
    // reading entirely, so their streaks grow past `hibernate_after`.
    let tail = scenario.stream(1500);
    feed(&dedicated, &tail, true);
    feed(&fleet, &tail, true);

    // Cold models shrank: every zero-traffic shard hibernated, and what
    // remains live fits the budget with room the hot model now owns.
    for name in names.iter().skip(1) {
        assert!(
            fleet.is_hibernated(name).unwrap(),
            "cold shard {name} never hibernated under sustained zero traffic"
        );
    }
    assert!(!fleet.is_hibernated("M0").unwrap());
    assert!(fleet.fleet_live_bytes().unwrap() <= global_budget);

    // Hot accuracy: measure before any cold shard is woken. The fleet
    // hot model may use what the cold fleet gave up, so it must be at
    // least as accurate as its dedicated-slice twin (small tolerance for
    // tie-level noise).
    let fleet_nae = nae(&fleet, "M0", &scenario, 0);
    let dedicated_nae = nae(&dedicated, "M0", &scenario, 0);
    if fleet_nae > dedicated_nae * 1.05 + 1e-9 {
        let diff = format!(
            "seed {seed}: hot-model NAE under fleet arbitration {fleet_nae} \
             exceeds dedicated-budget NAE {dedicated_nae}\n"
        );
        let path = write_diff(&format!("skew_nae_seed_{seed}"), &diff);
        panic!("{diff}(diff written to {})", path.display());
    }
    fleet.shutdown();
    dedicated.shutdown();
}

/// Regression (scripted interleaving): arbitration reads every shard's
/// traffic counter exactly once per round, so each round's deltas are
/// exactly the reads issued since the previous round — no mid-scan
/// re-reads, no double counting across rounds.
#[test]
fn traffic_deltas_match_scripted_interleaving_exactly() {
    let names = model_names(3);
    let svc = build(
        &names,
        serve_config(Some(FleetConfig { global_budget: 1 << 30, hibernate_after: 0 }), 1 << 16),
    );
    let p = [100.0, 200.0];
    for _ in 0..5 {
        svc.predict("M0", &p).unwrap();
    }
    for _ in 0..2 {
        svc.predict("M1", &p).unwrap();
    }
    svc.step(16).unwrap();
    let r1 = svc.last_arbitration().unwrap().unwrap();
    assert_eq!(r1.traffic, vec![5, 2, 0]);
    assert_eq!(r1.traffic_total, 7);

    for _ in 0..3 {
        svc.predict("M1", &p).unwrap();
    }
    svc.step(16).unwrap();
    let r2 = svc.last_arbitration().unwrap().unwrap();
    assert_eq!(r2.round, r1.round + 1);
    assert_eq!(r2.traffic, vec![0, 3, 0], "round 2 must not re-count round 1's reads");

    svc.step(16).unwrap();
    let r3 = svc.last_arbitration().unwrap().unwrap();
    assert_eq!(r3.traffic, vec![0, 0, 0]);
    svc.shutdown();
}

/// Regression (concurrent hammer): with reader threads predicting while
/// the maintainer arbitrates, the per-round traffic deltas still
/// partition the true read totals — sum of deltas over all rounds equals
/// reads issued, per shard. A mid-scan re-read of the live atomics
/// (the stale-counter window) would break this conservation.
#[test]
fn traffic_deltas_partition_reads_under_concurrency() {
    let names = model_names(3);
    let svc = std::sync::Arc::new(build(
        &names,
        serve_config(Some(FleetConfig { global_budget: 1 << 30, hibernate_after: 0 }), 1 << 16),
    ));
    const THREADS: usize = 4;
    const PER_THREAD: usize = 500;
    let mut issued = [0u64; 3];
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            issued[(t + i) % 3] += 1;
        }
    }
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let svc = std::sync::Arc::clone(&svc);
            let names = names.clone();
            std::thread::spawn(move || {
                let p = [10.0 * (t + 1) as f64, 500.0];
                for i in 0..PER_THREAD {
                    svc.predict(&names[(t + i) % 3], &p).unwrap();
                }
            })
        })
        .collect();

    // The main thread is the maintainer: step (one arbitration round
    // each) while readers hammer, accumulating every round's deltas.
    let mut accumulated = [0u64; 3];
    let mut last_round = 0;
    let mut absorb = |svc: &ConcurrentEstimator, accumulated: &mut [u64; 3]| {
        let report = svc.last_arbitration().unwrap().expect("arbitration ran");
        assert_eq!(report.round, last_round + 1, "the stepping thread must observe every round");
        last_round = report.round;
        for (acc, d) in accumulated.iter_mut().zip(&report.traffic) {
            *acc += d;
        }
    };
    for h in handles {
        while !h.is_finished() {
            svc.step(16).unwrap();
            absorb(&svc, &mut accumulated);
        }
        h.join().unwrap();
    }
    // One final round collects whatever landed after the last step.
    svc.step(16).unwrap();
    absorb(&svc, &mut accumulated);
    assert_eq!(
        accumulated, issued,
        "per-round traffic deltas failed to partition the true read totals"
    );
    svc.shutdown();
}
