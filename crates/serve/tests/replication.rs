//! Merge-equivalence of the replicated estimator tier.
//!
//! The load-bearing invariant: after anti-entropy converges, **every**
//! replica's predictions are bit-identical to a single estimator fed the
//! union of all replicas' feedback streams in stream order
//! (pre-compression). The harness drives seeded workloads through
//! seeded interleavings of feeding, stepping, and mid-stream sync
//! rounds — with and without injected storage faults on the replicas'
//! write-ahead journals — and proves the invariant at the end.
//!
//! Costs are dyadic rationals (multiples of 1/8) so the summary sums
//! are exact in f64 regardless of merge order; budgets are generous so
//! nothing compresses. Both are required for *bit* equality — with
//! arbitrary costs or tight budgets the merge is still statistically
//! exact, just not bit-for-bit.
//!
//! Seeds come from `MLQ_REPLICATION_SEED` (CI sweeps 25); on an
//! equivalence failure the merged-vs-reference diff is written under
//! `target/replication-diff/` for the CI artifact upload.

use mlq_core::GuardConfig;
use mlq_serve::{
    ConcurrentEstimator, DurabilityConfig, DurabilityStatus, MaintainerMode, ReplicaGroup,
    ReplicaGroupConfig, RetryPolicy, ServeConfig, SyncMode,
};
use mlq_storage::FaultConfig;
use mlq_udfs::ExecutionCost;
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

const NAMES: [&str; 2] = ["ALPHA", "BETA"];
const REPLICAS: usize = 3;
/// Observations in the union stream.
const STREAM_LEN: usize = 180;

fn space() -> mlq_core::Space {
    mlq_core::Space::cube(2, 0.0, 100.0).unwrap()
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        maintainer: MaintainerMode::Manual,
        // Generous budget: bit-exact equivalence requires that neither
        // the live models nor the merge base ever compress.
        budget_per_model: 1 << 20,
        // An effectively infinite MAD multiplier disables outlier
        // quarantine: equivalence needs every replica and the reference
        // to absorb the identical observation set, whereas quarantine
        // decisions depend on each replica's local window.
        guard: GuardConfig { mad_k: 1e9, ..GuardConfig::default() },
        ..ServeConfig::default()
    }
}

fn group_config(mode: SyncMode, ship_envelopes: bool) -> ReplicaGroupConfig {
    ReplicaGroupConfig {
        replicas: REPLICAS,
        serve: serve_config(),
        delta_budget: 1 << 20,
        sync_interval: Duration::from_millis(20),
        mode,
        ship_envelopes,
    }
}

fn build_group(config: ReplicaGroupConfig) -> ReplicaGroup {
    let mut b = ReplicaGroup::builder(config);
    for name in NAMES {
        b = b.register(name, &space()).unwrap();
    }
    b.build().unwrap()
}

fn harness_seed() -> u64 {
    std::env::var("MLQ_REPLICATION_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x5EED)
}

/// SplitMix64, the harness-standard deterministic generator.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct Obs {
    replica: usize,
    shard: usize,
    point: [f64; 2],
    cost: ExecutionCost,
}

/// A seeded union stream. Which replica receives each observation is
/// part of the seed — the partition is arbitrary, the union is what
/// must be reproduced. Costs are dyadic so merged sums are exact.
fn workload(seed: u64, n: usize) -> Vec<Obs> {
    let mut rng = SplitMix64(seed);
    (0..n)
        .map(|_| Obs {
            replica: (rng.next_u64() % REPLICAS as u64) as usize,
            shard: (rng.next_u64() % NAMES.len() as u64) as usize,
            point: [rng.next_f64() * 100.0, rng.next_f64() * 100.0],
            cost: ExecutionCost {
                cpu: (1 + rng.next_u64() % 160) as f64 / 8.0,
                io: (1 + rng.next_u64() % 64) as f64 / 8.0,
                results: 1 + rng.next_u64() % 100,
            },
        })
        .collect()
}

fn probe_points() -> Vec<[f64; 2]> {
    let mut points = Vec::new();
    for i in 0..5 {
        for j in 0..5 {
            points.push([4.0 + 19.0 * f64::from(i), 7.0 + 18.5 * f64::from(j)]);
        }
    }
    points
}

/// Per-shard probe predictions as bit patterns (`None` kept distinct).
fn predictions(svc: &ConcurrentEstimator) -> Vec<Vec<Option<u64>>> {
    NAMES
        .iter()
        .map(|name| {
            probe_points().iter().map(|p| svc.predict(name, p).unwrap().map(f64::to_bits)).collect()
        })
        .collect()
}

/// Ground truth: a single (non-replicated) estimator fed the whole union
/// stream in stream order.
fn reference_predictions(stream: &[Obs]) -> Vec<Vec<Option<u64>>> {
    let mut b = ConcurrentEstimator::builder(serve_config());
    for name in NAMES {
        b = b.register(name, &space()).unwrap();
    }
    let svc = b.build().unwrap();
    for o in stream {
        svc.observe(NAMES[o.shard], &o.point, o.cost).unwrap();
    }
    svc.flush();
    let preds = predictions(&svc);
    svc.shutdown();
    preds
}

fn diff_artifact_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "../../target".into());
    PathBuf::from(target).join("replication-diff")
}

/// Asserts bit-identical predictions; on mismatch writes the full diff
/// to `target/replication-diff/<tag>.txt` before panicking.
fn assert_equivalent(tag: &str, merged: &[Vec<Option<u64>>], reference: &[Vec<Option<u64>>]) {
    if merged == reference {
        return;
    }
    let mut diff = format!("merge equivalence failure: {tag}\n");
    for (s, name) in NAMES.iter().enumerate() {
        for (i, p) in probe_points().iter().enumerate() {
            let (got, want) = (merged[s][i], reference[s][i]);
            if got != want {
                diff.push_str(&format!(
                    "shard {name} probe {p:?}: merged {got:?} != reference {want:?}\n"
                ));
            }
        }
    }
    let dir = diff_artifact_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join(format!("{tag}.txt"));
    std::fs::write(&path, &diff).ok();
    panic!("{diff}\n(diff written to {})", path.display());
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlq_replication_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Drives `stream` into `group` under a seeded interleaving: each
/// observation goes to its home replica; replicas are stepped at seeded
/// moments; several anti-entropy rounds run mid-stream. Ends converged:
/// every queue drained, one final round.
fn feed_interleaved(group: &ReplicaGroup, stream: &[Obs], seed: u64) {
    let mut rng = SplitMix64(seed ^ 0x1717);
    for (i, o) in stream.iter().enumerate() {
        group.replica(o.replica).observe(NAMES[o.shard], &o.point, o.cost).unwrap();
        // Step a random replica about every other observation, by a
        // random amount — queues drain unevenly, like real traffic.
        if rng.next_u64().is_multiple_of(2) {
            let victim = (rng.next_u64() % REPLICAS as u64) as usize;
            let max = 1 + (rng.next_u64() % 8) as usize;
            group.replica(victim).step(max).unwrap();
        }
        // A few mid-stream anti-entropy rounds at seeded positions.
        if i > 0 && i % (STREAM_LEN / 4) == 0 {
            group.sync().unwrap();
        }
    }
    group.flush();
    let report = group.sync().unwrap();
    assert!(!report.skipped || report.merged_observations == 0);
}

/// The keystone invariant, swept across 25 seeds in CI: N merged
/// replicas ≡ one estimator fed the union stream, bit for bit, on every
/// replica.
#[test]
fn merged_replicas_match_union_stream_reference() {
    let seed = harness_seed();
    let stream = workload(seed, STREAM_LEN);
    let group = build_group(group_config(SyncMode::Manual, true));
    feed_interleaved(&group, &stream, seed);

    let reference = reference_predictions(&stream);
    for r in 0..REPLICAS {
        let got = predictions(group.replica(r));
        assert_equivalent(&format!("seed{seed}_replica{r}"), &got, &reference);
    }
    let report = group.shutdown().unwrap();
    assert_eq!(report.final_sync.merged_observations, 0, "everything was already synced");
    assert_eq!(report.replicas.len(), REPLICAS);
}

/// Same invariant with transient storage faults injected into every
/// replica's write-ahead journal: retries absorb the faults, the local
/// guard/WAL path stays intact, and the merged tier still reproduces
/// the union stream bit-identically.
#[test]
fn merged_replicas_match_union_under_storage_faults() {
    let seed = harness_seed() ^ 0xFA17;
    let stream = workload(seed, STREAM_LEN);
    let dir = temp_dir("faults");

    let mut b = ReplicaGroup::builder(group_config(SyncMode::Manual, true));
    for name in NAMES {
        b = b.register(name, &space()).unwrap();
    }
    for r in 0..REPLICAS {
        let mut dconfig = DurabilityConfig::new(dir.join(format!("replica-{r}")));
        dconfig.checkpoint_every = 2;
        dconfig.fault = Some(FaultConfig {
            seed: seed ^ r as u64,
            write_error_rate: 0.2,
            torn_write_rate: 0.15,
            sync_error_rate: 0.15,
            rename_error_rate: 0.15,
            ..FaultConfig::none()
        });
        dconfig.retry = RetryPolicy { max_retries: 64, backoff: Duration::ZERO };
        b = b.with_replica_durability(r, dconfig).unwrap();
    }
    let group = b.build().unwrap();
    feed_interleaved(&group, &stream, seed);

    let reference = reference_predictions(&stream);
    for r in 0..REPLICAS {
        assert_eq!(group.replica(r).durability_status(), DurabilityStatus::Active);
        let got = predictions(group.replica(r));
        assert_equivalent(&format!("faults_seed{seed}_replica{r}"), &got, &reference);
    }
    group.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The background tier (driver threads + anti-entropy scheduler)
/// converges to the same invariant once shut down: shutdown joins the
/// threads, drains every queue, and runs the final round.
#[test]
fn background_group_converges_on_shutdown() {
    let seed = harness_seed() ^ 0xB6;
    let stream = workload(seed, STREAM_LEN);
    let mut config = group_config(SyncMode::Background, true);
    config.sync_interval = Duration::from_millis(5);
    let group = build_group(config);
    for o in &stream {
        group.replica(o.replica).observe(NAMES[o.shard], &o.point, o.cost).unwrap();
    }
    let report = group.shutdown().expect("first shutdown returns the report");
    assert!(group.shutdown().is_none(), "shutdown is idempotent");

    let reference = reference_predictions(&stream);
    for r in 0..REPLICAS {
        let got = predictions(group.replica(r));
        assert_equivalent(&format!("background_seed{seed}_replica{r}"), &got, &reference);
    }
    let applied: u64 =
        report.replicas.iter().flat_map(|r| r.shards.iter().map(|(_, c)| c.applied)).sum();
    assert_eq!(applied, STREAM_LEN as u64, "every observation was absorbed somewhere");
}

/// Envelope shipping and in-memory cloning must be observably identical:
/// the CRC-32 envelope round-trip is value-exact.
#[test]
fn envelope_and_clone_shipping_agree_bit_for_bit() {
    let seed = harness_seed() ^ 0xE27;
    let stream = workload(seed, STREAM_LEN);
    let reference = reference_predictions(&stream);
    for ship_envelopes in [true, false] {
        let group = build_group(group_config(SyncMode::Manual, ship_envelopes));
        feed_interleaved(&group, &stream, seed);
        for r in 0..REPLICAS {
            let got = predictions(group.replica(r));
            assert_equivalent(
                &format!("ship{ship_envelopes}_seed{seed}_replica{r}"),
                &got,
                &reference,
            );
        }
        let metrics = group.metrics();
        let shipped = metrics.counter("mlq_serve_replica_envelope_bytes").unwrap_or(0);
        if ship_envelopes {
            assert!(shipped > 0, "envelope mode must account shipped bytes");
        } else {
            assert_eq!(shipped, 0, "clone mode ships no envelopes");
        }
        group.shutdown();
    }
}

/// The `mlq_serve_replica_*` series and the labeled per-replica registry
/// views tell the anti-entropy story end to end.
#[test]
fn replica_metrics_expose_sync_rounds_and_labeled_views() {
    let seed = harness_seed() ^ 0x3E7;
    let stream = workload(seed, STREAM_LEN);
    let group = build_group(group_config(SyncMode::Manual, true));
    feed_interleaved(&group, &stream, seed);

    let metrics = group.metrics();
    let syncs = metrics.counter("mlq_serve_replica_syncs").unwrap();
    assert!(syncs >= 4, "mid-stream rounds plus the final one, got {syncs}");
    assert_eq!(
        metrics.counter("mlq_serve_replica_merged_observations"),
        Some(STREAM_LEN as u64),
        "every absorbed observation is folded exactly once"
    );
    assert_eq!(metrics.counter("mlq_serve_replica_installs"), Some(syncs * REPLICAS as u64));
    assert_eq!(metrics.gauge("mlq_serve_replica_count"), Some(REPLICAS as f64));
    assert!(metrics.histogram("mlq_serve_replica_sync_nanos").unwrap().count() >= syncs);
    // Per-replica delta tallies cover the whole stream.
    let mut delta_total = 0;
    for r in 0..REPLICAS {
        let label = r.to_string();
        delta_total += metrics
            .counter_labeled("mlq_serve_replica_delta_observations", &[("replica", &label)])
            .unwrap();
        // Each replica's own serving metrics surface relabeled.
        let processed =
            metrics.counter_labeled("mlq_serve_processed", &[("replica", &label)]).unwrap();
        let home: u64 = stream.iter().filter(|o| o.replica == r).count() as u64;
        assert_eq!(processed, home, "replica {r} processed exactly its partition");
    }
    assert_eq!(delta_total, STREAM_LEN as u64);
    group.shutdown();
}

/// Misconfigurations fail loudly, not at sync time.
#[test]
fn replication_requires_manual_mode_and_delta_tracking() {
    // take_deltas / install_models without delta tracking.
    let svc = ConcurrentEstimator::builder(serve_config())
        .register("X", &space())
        .unwrap()
        .build()
        .unwrap();
    assert!(svc.take_deltas().is_err());
    assert!(svc.install_models(Vec::new()).is_err());
    svc.shutdown();

    // A background-maintainer service refuses the replication half-steps
    // even with tracking enabled.
    let svc = ConcurrentEstimator::builder(ServeConfig::default())
        .with_delta_tracking(1 << 16)
        .register("X", &space())
        .unwrap()
        .build()
        .unwrap();
    assert!(svc.take_deltas().is_err());
    svc.shutdown();

    // Group-level validation.
    let empty = ReplicaGroup::builder(group_config(SyncMode::Manual, true)).build();
    assert!(empty.is_err(), "no registered UDFs");
    let zero = ReplicaGroup::builder(ReplicaGroupConfig {
        replicas: 0,
        ..group_config(SyncMode::Manual, true)
    })
    .register("X", &space())
    .and_then(mlq_serve::ReplicaGroupBuilder::build);
    assert!(zero.is_err(), "zero replicas");
    let out_of_range = ReplicaGroup::builder(group_config(SyncMode::Manual, true))
        .with_replica_durability(REPLICAS, DurabilityConfig::new(temp_dir("oob")));
    assert!(out_of_range.is_err(), "durability index out of range");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Merge equivalence holds across arbitrary seeds, stream lengths,
    /// and interleavings — not just the harness defaults.
    #[test]
    fn merge_equivalence_holds_for_arbitrary_seeds(
        seed in 0u64..1u64 << 48,
        len in 40usize..160,
    ) {
        let stream = workload(seed, len);
        let group = build_group(group_config(SyncMode::Manual, true));
        let mut rng = SplitMix64(seed ^ 0xABCD);
        for o in &stream {
            group.replica(o.replica).observe(NAMES[o.shard], &o.point, o.cost).unwrap();
            if rng.next_u64().is_multiple_of(3) {
                let victim = (rng.next_u64() % REPLICAS as u64) as usize;
                group.replica(victim).step(4).unwrap();
            }
            if rng.next_u64().is_multiple_of(37) {
                group.sync().unwrap();
            }
        }
        group.flush();
        group.sync().unwrap();
        let reference = reference_predictions(&stream);
        for r in 0..REPLICAS {
            let got = predictions(group.replica(r));
            prop_assert_eq!(&got, &reference, "replica {} diverged (seed {})", r, seed);
        }
        group.shutdown();
    }
}
