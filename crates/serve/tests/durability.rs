//! Crash-safety of the serving tier: the write-ahead feedback journal,
//! checkpoint/recovery, fault injection, and graceful degradation.
//!
//! The load-bearing invariant is **recovery equivalence**: after a crash
//! at *any* injected crash point, a recovered service's predictions are
//! bit-identical to a reference estimator fed the recovered feedback
//! prefix from scratch — and that prefix always covers every observation
//! the journal acknowledged before the crash. The crash sweep drives a
//! seeded workload into a deliberately dying service for every crash
//! operation at several occurrences, then proves the invariant.
//!
//! Seeds come from `MLQ_DURABILITY_SEED` (CI sweeps many); on an
//! equivalence failure the recovered-vs-reference diff is written under
//! `target/durability-diff/` for the CI artifact upload.

use mlq_serve::{
    ConcurrentEstimator, CrashOp, CrashPoint, DurabilityConfig, DurabilityStatus, MaintainerMode,
    RestoreKind, RetryPolicy, ServeConfig, CRASH_OPS,
};
use mlq_storage::FaultConfig;
use mlq_udfs::ExecutionCost;
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

const NAMES: [&str; 2] = ["ALPHA", "BETA"];
/// Observations in the seed run (phase A) and the crash run (phase B).
const PHASE_A: usize = 36;
const PHASE_B: usize = 54;
/// Observations fed per manual maintenance step.
const CHUNK: usize = 6;

fn space() -> mlq_core::Space {
    mlq_core::Space::cube(2, 0.0, 100.0).unwrap()
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        maintainer: MaintainerMode::Manual,
        budget_per_model: 4096,
        ..ServeConfig::default()
    }
}

fn harness_seed() -> u64 {
    std::env::var("MLQ_DURABILITY_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x5EED)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlq_durability_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// SplitMix64: the same tiny deterministic generator the storage fault
/// injector uses, so workloads replay exactly from a seed.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct Obs {
    shard: usize,
    point: [f64; 2],
    cost: ExecutionCost,
}

/// A seeded workload across every shard, with continuous (tie-free)
/// costs so model state is a sensitive witness of the applied prefix.
fn workload(seed: u64, n: usize) -> Vec<Obs> {
    let mut rng = SplitMix64(seed);
    (0..n)
        .map(|_| Obs {
            shard: (rng.next_u64() % NAMES.len() as u64) as usize,
            point: [rng.next_f64() * 100.0, rng.next_f64() * 100.0],
            cost: ExecutionCost {
                cpu: 0.5 + rng.next_f64() * 19.5,
                io: 0.25 + rng.next_f64() * 7.75,
                results: 1 + rng.next_u64() % 100,
            },
        })
        .collect()
}

fn build_durable(dir: &PathBuf, crash: Option<CrashPoint>) -> ConcurrentEstimator {
    let mut dconfig = DurabilityConfig::new(dir);
    dconfig.checkpoint_every = 3;
    dconfig.crash = crash;
    let mut b = ConcurrentEstimator::builder(serve_config());
    for name in NAMES {
        b = b.register(name, &space()).unwrap();
    }
    b.with_durability_config(dconfig).build().unwrap()
}

/// Feeds `obs` in deterministic CHUNK-sized maintenance steps.
fn feed(svc: &ConcurrentEstimator, obs: &[Obs]) {
    for chunk in obs.chunks(CHUNK) {
        for o in chunk {
            svc.observe(NAMES[o.shard], &o.point, o.cost).unwrap();
        }
        svc.step(CHUNK).unwrap();
    }
}

fn probe_points() -> Vec<[f64; 2]> {
    let mut points = Vec::new();
    for i in 0..5 {
        for j in 0..5 {
            points.push([4.0 + 19.0 * f64::from(i), 7.0 + 18.5 * f64::from(j)]);
        }
    }
    points
}

/// Per-shard probe predictions as bit patterns (`None` kept distinct).
fn predictions(svc: &ConcurrentEstimator) -> Vec<Vec<Option<u64>>> {
    NAMES
        .iter()
        .map(|name| {
            probe_points().iter().map(|p| svc.predict(name, p).unwrap().map(f64::to_bits)).collect()
        })
        .collect()
}

/// The ground truth: a fresh, non-durable estimator fed exactly the
/// first `counts[shard]` observations of each shard, in stream order.
fn reference_predictions(stream: &[Obs], counts: &[u64]) -> Vec<Vec<Option<u64>>> {
    let mut b = ConcurrentEstimator::builder(serve_config());
    for name in NAMES {
        b = b.register(name, &space()).unwrap();
    }
    let svc = b.build().unwrap();
    let mut fed = vec![0u64; NAMES.len()];
    for o in stream {
        if fed[o.shard] < counts[o.shard] {
            fed[o.shard] += 1;
            svc.observe(NAMES[o.shard], &o.point, o.cost).unwrap();
        }
    }
    svc.flush();
    let preds = predictions(&svc);
    svc.shutdown();
    assert_eq!(fed, counts, "stream too short for requested prefix");
    preds
}

fn diff_artifact_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "../../target".into());
    PathBuf::from(target).join("durability-diff")
}

/// Asserts bit-identical predictions; on mismatch writes the full diff
/// to `target/durability-diff/<tag>.txt` before panicking.
fn assert_equivalent(tag: &str, recovered: &[Vec<Option<u64>>], reference: &[Vec<Option<u64>>]) {
    if recovered == reference {
        return;
    }
    let mut diff = format!("recovery equivalence failure: {tag}\n");
    for (s, name) in NAMES.iter().enumerate() {
        for (i, p) in probe_points().iter().enumerate() {
            let (got, want) = (recovered[s][i], reference[s][i]);
            if got != want {
                diff.push_str(&format!(
                    "shard {name} probe {p:?}: recovered {got:?} != reference {want:?}\n"
                ));
            }
        }
    }
    let dir = diff_artifact_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join(format!("{tag}.txt"));
    std::fs::write(&path, &diff).ok();
    panic!("{diff}\n(diff written to {})", path.display());
}

/// One full crash case: seed disk state, crash a second run at `crash`,
/// recover, and prove the recovered service equals the reference fed the
/// recovered prefix — which must cover everything acknowledged durable.
fn run_crash_case(seed: u64, crash: CrashPoint, tag: &str) {
    let dir = temp_dir(tag);
    let stream = workload(seed, PHASE_A + PHASE_B);

    // Phase A: a clean run leaves checkpoints (and possibly a journal
    // tail) on disk, so the crash run also exercises startup recovery.
    let svc = build_durable(&dir, None);
    feed(&svc, &stream[..PHASE_A]);
    svc.shutdown();

    // Phase B: the dying run.
    let svc = build_durable(&dir, Some(crash));
    feed(&svc, &stream[PHASE_A..]);
    let acked: Vec<u64> = NAMES.iter().map(|n| svc.durable_seq(n).unwrap()).collect();
    let crashed = svc.durability_status() == DurabilityStatus::Crashed;
    // Snapshots keep serving after the crash point fires.
    for name in NAMES {
        svc.predict(name, &[50.0, 50.0]).unwrap();
    }
    svc.shutdown();

    // Phase C: recovery.
    let svc = build_durable(&dir, None);
    assert_eq!(svc.durability_status(), DurabilityStatus::Active);
    let report = svc.recovery_report().clone();
    assert_eq!(report.shards.len(), NAMES.len());
    let mut counts = vec![0u64; NAMES.len()];
    for shard in &report.shards {
        let idx = NAMES.iter().position(|n| *n == shard.name).unwrap();
        counts[idx] = shard.recovered_seq;
        assert!(
            shard.recovered_seq >= acked[idx],
            "{tag}: shard {} recovered seq {} < acked {} (crashed={crashed}, detail: {})",
            shard.name,
            shard.recovered_seq,
            acked[idx],
            shard.detail,
        );
    }
    let total: u64 = counts.iter().sum();
    assert!(total <= (PHASE_A + PHASE_B) as u64, "{tag}: recovered more than was ever fed");

    let recovered = predictions(&svc);
    svc.shutdown();
    let reference = reference_predictions(&stream, &counts);
    assert_equivalent(tag, &recovered, &reference);
    std::fs::remove_dir_all(&dir).ok();
}

/// The crash sweep: every crash operation, at several occurrences (the
/// low ones land in startup recovery, the higher ones in steady state),
/// with torn-write cuts for the journal write. Recovery must be exact
/// after every single one.
#[test]
fn every_crash_point_recovers_the_acked_prefix_exactly() {
    let seed = harness_seed();
    for op in CRASH_OPS {
        let torn_cuts: &[usize] = if op == CrashOp::WalWrite { &[0, 9, 57] } else { &[0] };
        for at in [1u32, 2, 3, 5, 9] {
            for &torn_bytes in torn_cuts {
                let crash = CrashPoint { op, at, torn_bytes };
                let tag = format!("seed{seed}_{op:?}_at{at}_torn{torn_bytes}");
                run_crash_case(seed, crash, &tag);
            }
        }
    }
}

/// A clean shutdown checkpoints everything: recovery replays nothing and
/// the recovered service predicts bit-identically to the one that shut
/// down.
#[test]
fn clean_restart_replays_nothing_and_serves_identically() {
    let seed = harness_seed() ^ 0xC1EA;
    let dir = temp_dir("clean_restart");
    let stream = workload(seed, PHASE_A + PHASE_B);

    let svc = build_durable(&dir, None);
    feed(&svc, &stream);
    let before = predictions(&svc);
    let fed: Vec<u64> = NAMES.iter().map(|n| svc.durable_seq(n).unwrap()).collect();
    svc.shutdown();

    let svc = build_durable(&dir, None);
    for shard in &svc.recovery_report().shards {
        assert_eq!(shard.kind, RestoreKind::Restored, "shard {}: {}", shard.name, shard.detail);
        assert_eq!(shard.replayed, 0, "clean shutdown left journal records: {}", shard.detail);
    }
    let after_counts: Vec<u64> = NAMES.iter().map(|n| svc.durable_seq(n).unwrap()).collect();
    assert_eq!(after_counts, fed);
    let after = predictions(&svc);
    svc.shutdown();
    assert_equivalent("clean_restart", &after, &before);
    std::fs::remove_dir_all(&dir).ok();
}

/// A rotted newest checkpoint generation degrades recovery to the
/// previous one and surfaces as `corrupt_recovered` in both the report
/// and the `mlq_serve_restore_outcome` startup counter.
#[test]
fn corrupt_newest_checkpoint_recovers_from_previous_generation() {
    let seed = harness_seed() ^ 0xB17;
    let dir = temp_dir("corrupt_gen");
    let stream = workload(seed, PHASE_A);

    let svc = build_durable(&dir, None);
    feed(&svc, &stream);
    svc.shutdown();

    // Rot every newest-generation tree file.
    let mut rotted = 0;
    let mut newest: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for entry in std::fs::read_dir(&dir).unwrap().flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(prefix) = name.strip_suffix(".meta") {
            let (stem, generation) = prefix.rsplit_once('.').unwrap();
            let generation: u64 = generation.parse().unwrap();
            let e = newest.entry(stem.to_string()).or_insert(generation);
            *e = (*e).max(generation);
        }
    }
    for (stem, generation) in &newest {
        let path = dir.join(format!("{stem}.{generation}.cpu.mlqs"));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        rotted += 1;
    }
    assert_eq!(rotted, NAMES.len());

    let svc = build_durable(&dir, None);
    let metrics = svc.metrics();
    for shard in &svc.recovery_report().shards {
        assert_eq!(
            shard.kind,
            RestoreKind::CorruptRecovered,
            "shard {}: {}",
            shard.name,
            shard.detail
        );
        assert_eq!(
            metrics.counter_labeled(
                "mlq_serve_restore_outcome",
                &[("udf", &shard.name), ("outcome", "corrupt_recovered")],
            ),
            Some(1),
        );
    }
    // The fallback generation plus the journal tail still reconstructs a
    // serveable prefix bit-identically.
    let counts: Vec<u64> = svc.recovery_report().shards.iter().map(|s| s.recovered_seq).collect();
    let recovered = predictions(&svc);
    svc.shutdown();
    let reference = reference_predictions(&stream, &counts);
    assert_equivalent("corrupt_gen", &recovered, &reference);
    std::fs::remove_dir_all(&dir).ok();
}

/// When persistence cannot be established at all, the circuit breaker
/// drops the layer to in-memory-only serving: status `Degraded`, the
/// `mlq_serve_durability_degraded` gauge raised, the failure recorded —
/// and predictions keep flowing.
#[test]
fn persistent_sync_failure_degrades_to_in_memory_serving() {
    let dir = temp_dir("degrade");
    let mut dconfig = DurabilityConfig::new(&dir);
    dconfig.fault = Some(FaultConfig { seed: 7, sync_error_rate: 1.0, ..FaultConfig::none() });
    dconfig.retry = RetryPolicy { max_retries: 2, backoff: Duration::ZERO };
    dconfig.degrade_after = 2;
    let mut b = ConcurrentEstimator::builder(serve_config());
    for name in NAMES {
        b = b.register(name, &space()).unwrap();
    }
    let svc = b.with_durability_config(dconfig).build().unwrap();

    assert_eq!(svc.durability_status(), DurabilityStatus::Degraded);
    assert_eq!(svc.metrics().gauge("mlq_serve_durability_degraded"), Some(1.0));
    assert!(svc.durability_error().is_some(), "the tripping failure must be inspectable");

    // In-memory serving continues: feedback still applies, reads work.
    let stream = workload(11, 24);
    feed(&svc, &stream);
    let _ = svc.predict(NAMES[0], &[50.0, 50.0]).expect("degraded reads must not error");
    for name in NAMES {
        assert_eq!(svc.durable_seq(name).unwrap(), 0, "degraded mode must not claim durability");
    }
    svc.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Transient journal and checkpoint faults — write errors, torn
    /// writes, failed fsyncs, failed renames — are retried into full
    /// durability: the layer stays `Active`, every observation becomes
    /// durable, and recovery is still bit-exact.
    #[test]
    fn transient_faults_never_lose_acked_feedback(
        seed in 0u64..1u64 << 48,
        write_rate in 0.0..0.35f64,
        torn_rate in 0.0..0.25f64,
        sync_rate in 0.0..0.25f64,
        rename_rate in 0.0..0.25f64,
    ) {
        let dir = temp_dir(&format!("proptest_{seed}"));
        let stream = workload(seed ^ 0xF417, PHASE_A);

        let mut dconfig = DurabilityConfig::new(&dir);
        dconfig.checkpoint_every = 2;
        dconfig.fault = Some(FaultConfig {
            seed,
            write_error_rate: write_rate,
            torn_write_rate: torn_rate,
            sync_error_rate: sync_rate,
            rename_error_rate: rename_rate,
            ..FaultConfig::none()
        });
        dconfig.retry = RetryPolicy { max_retries: 64, backoff: Duration::ZERO };
        let mut b = ConcurrentEstimator::builder(serve_config());
        for name in NAMES {
            b = b.register(name, &space()).unwrap();
        }
        let svc = b.with_durability_config(dconfig).build().unwrap();
        feed(&svc, &stream);
        prop_assert_eq!(svc.durability_status(), DurabilityStatus::Active);
        let mut fed = vec![0u64; NAMES.len()];
        for o in &stream {
            fed[o.shard] += 1;
        }
        for (idx, name) in NAMES.iter().enumerate() {
            prop_assert_eq!(svc.durable_seq(name).unwrap(), fed[idx]);
        }
        svc.shutdown();

        let svc = build_durable(&dir, None);
        let counts: Vec<u64> =
            svc.recovery_report().shards.iter().map(|s| s.recovered_seq).collect();
        prop_assert_eq!(&counts, &fed);
        let recovered = predictions(&svc);
        svc.shutdown();
        let reference = reference_predictions(&stream, &counts);
        assert_equivalent(&format!("proptest_seed{seed}"), &recovered, &reference);
        std::fs::remove_dir_all(&dir).ok();
    }
}
