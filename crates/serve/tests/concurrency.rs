//! Concurrency guarantees of the serving layer, in the style of
//! `crates/storage/tests/concurrency.rs`: seeded multi-threaded
//! workloads with deterministic assertions.
//!
//! The two load-bearing properties:
//!
//! 1. **Readers never observe a torn model.** Every prediction a reader
//!    gets must be explainable by *some* published snapshot — never a
//!    half-applied batch or a tree mid-compression.
//! 2. **Shutdown flushes the queue.** Every observation admitted before
//!    `shutdown` is applied to the models and counted in the report.

use mlq_core::{GuardConfig, Space};
use mlq_serve::{BackpressurePolicy, ConcurrentEstimator, PushOutcome, ServeConfig};
use mlq_udfs::ExecutionCost;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

fn space() -> Space {
    Space::cube(2, 0.0, 100.0).unwrap()
}

fn service(config: ServeConfig, udfs: &[&str]) -> Arc<ConcurrentEstimator> {
    let mut b = ConcurrentEstimator::builder(config);
    for name in udfs {
        b = b.register(name, &space()).unwrap();
    }
    Arc::new(b.build().unwrap())
}

/// The service handle itself must be shareable across threads.
#[test]
fn service_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConcurrentEstimator>();
    assert_send_sync::<mlq_serve::EstimatorHandle>();
    assert_send_sync::<mlq_serve::ShardSnapshot>();
}

/// Each shard is fed a single constant cost; whatever snapshot a reader
/// lands on, every informed prediction must equal that shard's exact
/// combined constant. Any torn read — a partially applied batch, a tree
/// observed mid-mutation — would surface as a different value.
#[test]
fn readers_never_observe_a_torn_model() {
    const READERS: usize = 4;
    const SHARDS: usize = 3;
    const WRITES_PER_SHARD: usize = 400;

    let names: Vec<String> = (0..SHARDS).map(|i| format!("UDF{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let svc =
        service(ServeConfig { batch_max: 7, io_weight: 100.0, ..ServeConfig::default() }, &refs);
    // Shard i always observes cpu = 10(i+1), io = i+1.
    let expected: Vec<f64> = (0..SHARDS)
        .map(|i| {
            let k = (i + 1) as f64;
            10.0 * k + 100.0 * k
        })
        .collect();

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let svc = Arc::clone(&svc);
            let names = names.clone();
            let expected = expected.clone();
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut informed = 0u64;
                let mut x = (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
                while !done.load(Ordering::Relaxed) {
                    // xorshift: cheap deterministic point scatter.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let shard = (x % SHARDS as u64) as usize;
                    let p = [(x % 101) as f64, ((x >> 8) % 101) as f64];
                    let got = svc.predict(&names[shard], &p).unwrap();
                    if let Some(v) = got {
                        assert!(
                            (v - expected[shard]).abs() < 1e-9,
                            "torn read on {}: got {v}, expected {}",
                            names[shard],
                            expected[shard]
                        );
                        informed += 1;
                    }
                }
                informed
            })
        })
        .collect();

    // Writer: interleave feedback across shards while readers hammer.
    for w in 0..WRITES_PER_SHARD {
        for (i, name) in names.iter().enumerate() {
            let k = (i + 1) as f64;
            let p = [((w * 13 + i * 7) % 101) as f64, ((w * 29 + i * 3) % 101) as f64];
            svc.observe(name, &p, ExecutionCost { cpu: 10.0 * k, io: k, results: 0 }).unwrap();
        }
    }
    svc.flush();
    done.store(true, Ordering::Relaxed);
    let informed: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(informed > 0, "readers should have seen informed predictions");

    let report = svc.shutdown().unwrap();
    let total_applied: u64 = report.shards.iter().map(|(_, c)| c.applied).sum();
    assert_eq!(total_applied, (SHARDS * WRITES_PER_SHARD) as u64);
}

/// Everything admitted before shutdown is applied — even feedback still
/// sitting in the queue when shutdown begins.
#[test]
fn shutdown_flushes_all_queued_feedback() {
    const WRITES: usize = 1000;
    let svc = service(
        // A tiny batch keeps the maintainer busy so the queue is nonempty
        // at shutdown.
        ServeConfig { batch_max: 3, ..ServeConfig::default() },
        &["F"],
    );
    for w in 0..WRITES {
        let p = [(w % 101) as f64, ((w * 31) % 101) as f64];
        // Constant honest cost: nothing should be quarantined.
        let out = svc.observe("F", &p, ExecutionCost { cpu: 5.0, io: 2.0, results: 1 }).unwrap();
        assert_eq!(out, PushOutcome::Enqueued);
    }
    let report = svc.shutdown().unwrap();
    assert_eq!(report.queue.enqueued, WRITES as u64);
    let (_, counters) = &report.shards[0];
    assert_eq!(counters.applied, WRITES as u64, "shutdown must flush the queue");
    assert_eq!(counters.apply_errors, 0);
    assert_eq!(counters.quarantined(), 0);
    // After shutdown, feedback is refused, not silently dropped.
    assert!(svc.observe("F", &[1.0, 1.0], ExecutionCost::default()).is_err());
    // Shutdown is idempotent.
    assert!(svc.shutdown().is_none());
}

/// Under `DropOldest`, a flood beyond queue capacity stays bounded and
/// consistent: admissions + evictions reconcile with the applied count.
#[test]
fn drop_oldest_flood_stays_consistent() {
    const FLOOD: usize = 5000;
    let svc = service(
        ServeConfig {
            queue_capacity: 16,
            batch_max: 4,
            backpressure: BackpressurePolicy::DropOldest,
            ..ServeConfig::default()
        },
        &["F"],
    );
    for w in 0..FLOOD {
        let p = [(w % 101) as f64, (w % 53) as f64];
        svc.observe("F", &p, ExecutionCost { cpu: 1.0, io: 1.0, results: 0 }).unwrap();
    }
    let report = svc.shutdown().unwrap();
    let (_, counters) = &report.shards[0];
    // Every admitted observation is either applied or was evicted.
    assert_eq!(
        counters.applied + report.queue.dropped_oldest,
        report.queue.enqueued,
        "admissions must reconcile: applied {} + dropped {} != enqueued {}",
        counters.applied,
        report.queue.dropped_oldest,
        report.queue.enqueued
    );
    assert!(report.queue.dropped_oldest > 0, "a 5000-deep flood into a 16-slot queue must evict");
    assert!(report.queue.max_depth <= 16);
}

/// PR-1 guard semantics survive the move onto the maintainer thread:
/// outliers fed through the asynchronous path are quarantined, and the
/// quarantine counts surface to readers through the counters snapshot.
#[test]
fn guard_outcomes_surface_through_counters_snapshot() {
    let svc =
        service(ServeConfig { guard: GuardConfig::default(), ..ServeConfig::default() }, &["F"]);
    // Honest warmup: establishes the guard's cost distribution.
    const HONEST: usize = 64;
    for w in 0..HONEST {
        let p = [(w % 101) as f64, ((w * 17) % 101) as f64];
        let cost = ExecutionCost { cpu: 100.0 + (w % 5) as f64, io: 10.0, results: 0 };
        svc.observe("F", &p, cost).unwrap();
    }
    svc.flush();
    let warm = svc.counters("F").unwrap();
    assert_eq!(warm.applied, HONEST as u64);
    assert_eq!(warm.quarantined(), 0, "honest feedback must not be quarantined");
    assert!(warm.is_healthy());

    // A burst of wild outliers: the guard must quarantine them off the
    // maintainer thread exactly as it would have synchronously.
    const OUTLIERS: usize = 8;
    for w in 0..OUTLIERS {
        let p = [(w % 101) as f64, (w % 101) as f64];
        svc.observe("F", &p, ExecutionCost { cpu: 1.0e9, io: 10.0, results: 0 }).unwrap();
    }
    svc.flush();
    let after = svc.counters("F").unwrap();
    assert!(
        after.cpu_guard.quarantined >= OUTLIERS as u64,
        "outlier CPU costs must be quarantined (got {})",
        after.cpu_guard.quarantined
    );
    // The IO component saw honest values throughout.
    assert_eq!(after.io_guard.quarantined, 0);
    // Quarantines are not apply errors, and the model still predicts from
    // the honest distribution.
    assert_eq!(after.apply_errors, 0);
    let v = svc.predict("F", &[50.0, 50.0]).unwrap().unwrap();
    assert!(v < 1.0e6, "outliers must not poison predictions, got {v}");
    svc.shutdown();
}

/// Snapshots handed to a reader stay internally consistent for as long as
/// the reader holds them, even across later feedback and republication.
#[test]
fn held_snapshots_are_immutable() {
    let svc = service(ServeConfig::default(), &["F"]);
    svc.observe("F", &[10.0, 10.0], ExecutionCost { cpu: 7.0, io: 0.0, results: 0 }).unwrap();
    svc.flush();
    let held = svc.snapshot("F").unwrap();
    let before = held.predict(&[10.0, 10.0]).unwrap();

    // Feed divergent costs and republish.
    for _ in 0..100 {
        svc.observe("F", &[10.0, 10.0], ExecutionCost { cpu: 900.0, io: 0.0, results: 0 }).unwrap();
    }
    svc.flush();
    let fresh = svc.snapshot("F").unwrap();
    assert_eq!(
        held.predict(&[10.0, 10.0]).unwrap(),
        before,
        "a held snapshot must never change underneath its reader"
    );
    assert!(fresh.version() > held.version());
    svc.shutdown();
}

/// The optimizer seam: an `EstimatorHandle` drives predictions and
/// feedback through the shared service.
#[test]
fn handles_route_through_the_shared_service() {
    use mlq_optimizer::Estimator;

    let svc = service(ServeConfig::default(), &["A", "B"]);
    let mut handle = svc.handle("A").unwrap();
    assert!(svc.handle("MISSING").is_err());
    assert_eq!(Estimator::name(&handle), "serve(A)");

    handle.observe(&[5.0, 5.0], ExecutionCost { cpu: 3.0, io: 1.0, results: 0 }).unwrap();
    svc.flush();
    let via_handle = Estimator::predict(&handle, &[5.0, 5.0]).unwrap();
    let via_service = svc.predict("A", &[5.0, 5.0]).unwrap();
    assert_eq!(via_handle, via_service);
    assert!(via_handle.is_some());
    // Shard isolation: B never learned anything.
    assert_eq!(svc.predict("B", &[5.0, 5.0]).unwrap(), None);
    svc.shutdown();
}

/// DropOldest flood accounting: however hard a seeded multi-writer flood
/// races the maintainer, every admitted observation is either applied or
/// counted as an eviction — once the queue quiesces,
/// `enqueued == processed + dropped_oldest` holds exactly. (Quiescing
/// goes through `shutdown`, not `flush`: under DropOldest the flush
/// target includes observations that were later evicted.)
#[test]
fn drop_oldest_flood_accounting_balances_exactly() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 3_000;

    let svc = service(
        ServeConfig {
            queue_capacity: 32,
            batch_max: 16,
            backpressure: BackpressurePolicy::DropOldest,
            ..ServeConfig::default()
        },
        &["FLOOD"],
    );
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let svc = Arc::clone(&svc);
            thread::spawn(move || {
                let mut evictions = 0u64;
                for i in 0..PER_WRITER {
                    let x = ((w * PER_WRITER + i) % 100) as f64;
                    let outcome = svc
                        .observe(
                            "FLOOD",
                            &[x, 50.0],
                            ExecutionCost { cpu: 2.0, io: 1.0, results: 1 },
                        )
                        .unwrap();
                    match outcome {
                        PushOutcome::Enqueued => {}
                        PushOutcome::DroppedOldest => evictions += 1,
                        PushOutcome::SampledOut => panic!("SampledOut under DropOldest"),
                    }
                }
                evictions
            })
        })
        .collect();
    let observed_evictions: u64 = writers.into_iter().map(|t| t.join().unwrap()).sum();

    let report = svc.shutdown().expect("first shutdown yields a report");
    let queue = report.queue;
    let processed = report.metrics.counter("mlq_serve_processed").unwrap_or(0);

    // Every push was admitted (DropOldest never refuses the new item).
    assert_eq!(queue.enqueued, (WRITERS * PER_WRITER) as u64);
    // Producers saw exactly the evictions the queue counted.
    assert_eq!(queue.dropped_oldest, observed_evictions);
    // The flood invariant: nothing admitted is unaccounted for.
    assert_eq!(
        queue.enqueued,
        processed + queue.dropped_oldest,
        "admitted observations must split exactly into applied and evicted"
    );
    // And everything processed reached the shard.
    let (_, counters) = &report.shards[0];
    assert_eq!(counters.applied + counters.apply_errors, processed);
    assert!(queue.max_depth <= 32);
}
