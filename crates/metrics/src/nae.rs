//! Normalized absolute error (paper Eq. 10).

use serde::{Deserialize, Serialize};

/// Computes `NAE = Σ|predicted − actual| / Σ actual` over a batch of
/// `(predicted, actual)` pairs.
///
/// Returns `None` when the pairs are empty or the actual costs sum to zero
/// (the measure is undefined there).
#[must_use]
pub fn nae(pairs: &[(f64, f64)]) -> Option<f64> {
    let mut acc = OnlineNae::new();
    for &(p, a) in pairs {
        acc.record(p, a);
    }
    acc.value()
}

/// Incremental NAE accumulator, used where predictions stream in one at a
/// time (the self-tuning feedback loop).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineNae {
    abs_error_sum: f64,
    actual_sum: f64,
    n: u64,
}

impl OnlineNae {
    /// Fresh accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineNae::default()
    }

    /// Records one `(predicted, actual)` observation.
    pub fn record(&mut self, predicted: f64, actual: f64) {
        self.abs_error_sum += (predicted - actual).abs();
        self.actual_sum += actual;
        self.n += 1;
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current NAE; `None` while empty or when `Σ actual == 0`.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        (self.n > 0 && self.actual_sum != 0.0).then(|| self.abs_error_sum / self.actual_sum)
    }

    /// Merges another accumulator (e.g. per-shard results).
    pub fn merge(&mut self, other: &OnlineNae) {
        self.abs_error_sum += other.abs_error_sum;
        self.actual_sum += other.actual_sum;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_predictions_have_zero_nae() {
        let pairs = vec![(10.0, 10.0), (5.0, 5.0)];
        assert_eq!(nae(&pairs), Some(0.0));
    }

    #[test]
    fn nae_matches_hand_computation() {
        // |8-10| + |6-5| = 3; actual sum = 15 -> 0.2
        let pairs = vec![(8.0, 10.0), (6.0, 5.0)];
        assert!((nae(&pairs).unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn undefined_cases_return_none() {
        assert_eq!(nae(&[]), None);
        assert_eq!(nae(&[(1.0, 0.0)]), None);
    }

    #[test]
    fn online_matches_batch() {
        let pairs = vec![(8.0, 10.0), (6.0, 5.0), (0.0, 2.0)];
        let mut acc = OnlineNae::new();
        for &(p, a) in &pairs {
            acc.record(p, a);
        }
        assert_eq!(acc.value(), nae(&pairs));
        assert_eq!(acc.count(), 3);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = [(8.0, 10.0), (6.0, 5.0)];
        let b = [(1.0, 4.0)];
        let mut left = OnlineNae::new();
        for &(p, q) in &a {
            left.record(p, q);
        }
        let mut right = OnlineNae::new();
        for &(p, q) in &b {
            right.record(p, q);
        }
        left.merge(&right);
        let all: Vec<_> = a.iter().chain(&b).copied().collect();
        assert_eq!(left.value(), nae(&all));
    }

    proptest! {
        #[test]
        fn nae_is_nonnegative_and_scale_invariant(
            pairs in prop::collection::vec((0.0..1e4f64, 0.1..1e4f64), 1..50),
            scale in 0.1..100.0f64,
        ) {
            let v = nae(&pairs).unwrap();
            prop_assert!(v >= 0.0);
            // Scaling both predictions and actuals leaves NAE unchanged.
            let scaled: Vec<_> = pairs.iter().map(|&(p, a)| (p * scale, a * scale)).collect();
            let vs = nae(&scaled).unwrap();
            prop_assert!((v - vs).abs() < 1e-9 * (1.0 + v));
        }

        #[test]
        fn predicting_zero_gives_nae_one(
            actuals in prop::collection::vec(0.1..1e4f64, 1..50),
        ) {
            let pairs: Vec<_> = actuals.iter().map(|&a| (0.0, a)).collect();
            let v = nae(&pairs).unwrap();
            prop_assert!((v - 1.0).abs() < 1e-12);
        }
    }
}
