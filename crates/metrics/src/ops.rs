//! APC / AUC (paper Eqs. 1–2) as pure functions, plus the bake-off's
//! cold-start convergence measure.
//!
//! `mlq_core::ModelCounters` records per-model operation totals; these
//! helpers compute the paper's ratios from *any* per-operation cost
//! series — wall-clock nanoseconds, node visits, or unit counts — so
//! harnesses can report hardware-independent variants next to timed
//! ones. Wu's operator-level cost-modeling note motivates the third
//! function: what a production optimizer cares about beyond accuracy is
//! how many feedbacks a cold model burns before its predictions are
//! usable.

/// Average prediction cost (Eq. 1): `Σ P(i) / N_P` over one cost entry
/// per prediction. `None` when no predictions were made.
#[must_use]
pub fn apc(prediction_costs: &[f64]) -> Option<f64> {
    (!prediction_costs.is_empty())
        .then(|| prediction_costs.iter().sum::<f64>() / prediction_costs.len() as f64)
}

/// Average model update cost (Eq. 2): `(Σ I(i) + Σ C(i)) / N_P`,
/// insertion plus compression work amortized over `predictions`
/// predictions. `None` when `predictions == 0` (the ratio is undefined —
/// a model nobody queries has no per-prediction overhead).
#[must_use]
pub fn auc(insertion_costs: &[f64], compression_costs: &[f64], predictions: u64) -> Option<f64> {
    (predictions > 0).then(|| {
        (insertion_costs.iter().sum::<f64>() + compression_costs.iter().sum::<f64>())
            / predictions as f64
    })
}

/// Cold-start feedbacks-to-convergence: the number of feedbacks after
/// which a model's *windowed* NAE first drops to `threshold` or below.
///
/// The stream of `(predicted, actual)` pairs is cut into consecutive
/// windows of `window` observations; the returned count is the end index
/// (1-based) of the first window whose NAE is defined and `<= threshold`.
/// `None` when the model never converges within the stream (including
/// the trailing partial window).
///
/// # Panics
///
/// Panics when `window == 0`.
#[must_use]
pub fn feedbacks_to_convergence(
    pairs: &[(f64, f64)],
    window: usize,
    threshold: f64,
) -> Option<usize> {
    assert!(window > 0, "window must be positive");
    let mut start = 0;
    while start < pairs.len() {
        let end = (start + window).min(pairs.len());
        let nae = crate::nae(&pairs[start..end]);
        if nae.is_some_and(|v| v <= threshold) {
            return Some(end);
        }
        start = end;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nae;

    // Hand-computed goldens: tiny fixed inputs, exact expected values.

    #[test]
    fn golden_nae() {
        // |9-10| + |3-5| + |6-5| = 4; Σ actual = 20 -> exactly 0.2.
        let pairs = [(9.0, 10.0), (3.0, 5.0), (6.0, 5.0)];
        assert_eq!(nae(&pairs), Some(0.2));
        // Single pair: |7-8| / 8 = 0.125 (exact in binary).
        assert_eq!(nae(&[(7.0, 8.0)]), Some(0.125));
    }

    #[test]
    fn golden_apc() {
        // (100 + 200 + 300) / 3 = exactly 200.
        assert_eq!(apc(&[100.0, 200.0, 300.0]), Some(200.0));
        // One prediction: the ratio is the cost itself.
        assert_eq!(apc(&[42.0]), Some(42.0));
        assert_eq!(apc(&[]), None);
    }

    #[test]
    fn golden_auc() {
        // (10 + 20 + 30) / 4 = exactly 15: insertions 10+20, compression
        // 30, amortized over 4 predictions.
        assert_eq!(auc(&[10.0, 20.0], &[30.0], 4), Some(15.0));
        // No update work -> zero AUC, still defined.
        assert_eq!(auc(&[], &[], 2), Some(0.0));
        // Undefined before the first prediction.
        assert_eq!(auc(&[1.0], &[1.0], 0), None);
    }

    #[test]
    fn golden_convergence() {
        // Window 2, threshold 0.25:
        //   window 1 = (0,10),(5,10): NAE 15/20 = 0.75 — not yet;
        //   window 2 = (9,10),(11,10): NAE 2/20 = 0.1 — converged at 4.
        let pairs = [(0.0, 10.0), (5.0, 10.0), (9.0, 10.0), (11.0, 10.0)];
        assert_eq!(feedbacks_to_convergence(&pairs, 2, 0.25), Some(4));
        // Never converges within the stream.
        assert_eq!(feedbacks_to_convergence(&pairs, 2, 0.01), None);
        // A trailing partial window can converge.
        let pairs = [(0.0, 10.0), (5.0, 10.0), (10.0, 10.0)];
        assert_eq!(feedbacks_to_convergence(&pairs, 2, 0.0), Some(3));
        // A window of zero-cost actuals (undefined NAE) does not count
        // as converged; the next defined window does.
        assert_eq!(feedbacks_to_convergence(&[(0.0, 0.0), (1.0, 1.0)], 1, 0.5), Some(2));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = feedbacks_to_convergence(&[(1.0, 1.0)], 0, 0.5);
    }
}
