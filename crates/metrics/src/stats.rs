//! Small summary-statistics helpers shared by the experiment harness.

/// Arithmetic mean; `None` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    (!values.is_empty()).then(|| values.iter().sum::<f64>() / values.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
#[must_use]
pub fn population_std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Percentile by nearest-rank (p in `[0, 100]`); `None` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or NaN.
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be within [0, 100]");
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(population_std_dev(&[]), None);
        assert_eq!(population_std_dev(&[2.0, 4.0]), Some(1.0));
        assert_eq!(population_std_dev(&[5.0]), Some(0.0));
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(2.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_is_order_independent() {
        let v = [3.0, 1.0, 4.0, 2.0];
        assert_eq!(percentile(&v, 100.0), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be within")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 101.0);
    }
}
