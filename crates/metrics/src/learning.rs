//! Learning curves: windowed NAE versus number of query points processed
//! (paper Experiment 4 / Fig. 12).

use crate::nae::OnlineNae;
use serde::{Deserialize, Serialize};

/// One sample of a learning curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearningPoint {
    /// Total number of query points processed when the window closed.
    pub processed: u64,
    /// NAE over the points inside the window; `None` when undefined
    /// (window of zero-cost actuals).
    pub nae: Option<f64>,
}

/// Accumulates `(predicted, actual)` pairs and emits one NAE sample per
/// fixed-size window, reproducing the x-axis of the paper's Fig. 12
/// ("prediction error with an increasing number of data points processed").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearningCurve {
    window: u64,
    current: OnlineNae,
    total: u64,
    points: Vec<LearningPoint>,
}

impl LearningCurve {
    /// Creates a curve sampling every `window` observations.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        LearningCurve { window, current: OnlineNae::new(), total: 0, points: Vec::new() }
    }

    /// Records one observation; closes the window when full.
    pub fn record(&mut self, predicted: f64, actual: f64) {
        self.current.record(predicted, actual);
        self.total += 1;
        if self.current.count() == self.window {
            self.points.push(LearningPoint { processed: self.total, nae: self.current.value() });
            self.current = OnlineNae::new();
        }
    }

    /// Completed window samples.
    #[must_use]
    pub fn points(&self) -> &[LearningPoint] {
        &self.points
    }

    /// Flushes a final, possibly partial window.
    pub fn finish(&mut self) {
        if self.current.count() > 0 {
            self.points.push(LearningPoint { processed: self.total, nae: self.current.value() });
            self.current = OnlineNae::new();
        }
    }

    /// Number of observations recorded so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Index of the first window whose NAE is within `tolerance` of the
    /// minimum across the curve — how quickly the model reached its best
    /// accuracy (the paper's Experiment 4 question).
    #[must_use]
    pub fn convergence_window(&self, tolerance: f64) -> Option<usize> {
        let min = self.points.iter().filter_map(|p| p.nae).min_by(f64::total_cmp)?;
        self.points.iter().position(|p| p.nae.is_some_and(|v| v <= min + tolerance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_close_at_exact_boundaries() {
        let mut c = LearningCurve::new(2);
        c.record(1.0, 1.0);
        assert!(c.points().is_empty());
        c.record(2.0, 1.0);
        assert_eq!(c.points().len(), 1);
        assert_eq!(c.points()[0].processed, 2);
        // Window NAE: (0 + 1) / 2 = 0.5
        assert!((c.points()[0].nae.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn finish_flushes_partial_window() {
        let mut c = LearningCurve::new(10);
        c.record(0.0, 1.0);
        c.finish();
        assert_eq!(c.points().len(), 1);
        assert_eq!(c.points()[0].processed, 1);
        assert_eq!(c.points()[0].nae, Some(1.0));
        // Double finish does not duplicate.
        c.finish();
        assert_eq!(c.points().len(), 1);
    }

    #[test]
    fn convergence_window_finds_first_near_minimum() {
        let mut c = LearningCurve::new(1);
        for (p, a) in [(0.0, 10.0), (5.0, 10.0), (9.0, 10.0), (9.5, 10.0)] {
            c.record(p, a);
        }
        // NAE per window: 1.0, 0.5, 0.1, 0.05
        assert_eq!(c.convergence_window(0.0), Some(3));
        assert_eq!(c.convergence_window(0.06), Some(2));
        assert_eq!(c.convergence_window(1.0), Some(0));
    }

    #[test]
    fn convergence_on_empty_curve_is_none() {
        let c = LearningCurve::new(5);
        assert_eq!(c.convergence_window(0.1), None);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = LearningCurve::new(0);
    }
}
