//! # mlq-metrics — evaluation metrics from the paper
//!
//! Implements the measures Section 3 and Section 5.1 of the EDBT 2004 MLQ
//! paper use to compare cost-modeling methods:
//!
//! * the **normalized absolute error** (NAE, Eq. 10)
//!   `NAE(Q) = Σ|PC(q) − AC(q)| / Σ AC(q)` — robust both to low absolute
//!   costs (unlike relative error) and to cross-dataset comparison (unlike
//!   unnormalized absolute error);
//! * **learning curves** (Experiment 4): windowed NAE as a function of the
//!   number of query points processed;
//! * summary statistics helpers used across the experiment harness.
//!
//! APC / AUC (Eqs. 1–2) are recorded by the models themselves (see
//! `mlq_core::ModelCounters`); this crate turns them into report rows
//! and exposes the ratios as pure functions ([`apc`], [`auc`]) over any
//! per-operation cost series, plus the bake-off's cold-start
//! [`feedbacks_to_convergence`] measure.
//!
//! ```
//! use mlq_metrics::{nae, LearningCurve, OnlineNae};
//!
//! // Batch NAE over (predicted, actual) pairs:
//! let err = nae(&[(9.0, 10.0), (5.0, 5.0)]).unwrap();
//! assert!((err - 1.0 / 15.0).abs() < 1e-12);
//!
//! // Streaming, with a learning curve sampled every 2 observations:
//! let mut acc = OnlineNae::new();
//! let mut curve = LearningCurve::new(2);
//! for (p, a) in [(0.0, 10.0), (8.0, 10.0), (10.0, 10.0), (10.0, 10.0)] {
//!     acc.record(p, a);
//!     curve.record(p, a);
//! }
//! assert_eq!(curve.points().len(), 2);
//! assert!(curve.points()[1].nae < curve.points()[0].nae); // it learned
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod alternatives;
mod learning;
mod nae;
mod ops;
mod stats;

pub use alternatives::{mean_absolute_error, mean_relative_error};
pub use learning::{LearningCurve, LearningPoint};
pub use nae::{nae, OnlineNae};
pub use ops::{apc, auc, feedbacks_to_convergence};
pub use stats::{mean, percentile, population_std_dev};
