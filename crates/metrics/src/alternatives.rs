//! The error metrics the paper *rejected*, and why (§5.1, "Error
//! Metric").
//!
//! "We do not use the relative error because it is not robust to
//! situations where the execution costs are low. We do not use the
//! (unnormalized) absolute error either because it varies greatly across
//! different UDFs/datasets while, in our experiments, we do compare
//! errors across different UDFs/datasets." Both are implemented here so
//! harness users can see those failure modes on their own data — the
//! tests demonstrate each one.

/// Mean relative error `mean(|predicted − actual| / actual)`.
///
/// `None` when empty or when any actual cost is zero (where the measure
/// is undefined — the first half of the paper's objection).
#[must_use]
pub fn mean_relative_error(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.is_empty() || pairs.iter().any(|&(_, a)| a == 0.0) {
        return None;
    }
    Some(pairs.iter().map(|&(p, a)| ((p - a) / a).abs()).sum::<f64>() / pairs.len() as f64)
}

/// Mean absolute error `mean(|predicted − actual|)` — in the *units of
/// the cost*, hence incomparable across UDFs (the paper's second
/// objection).
#[must_use]
pub fn mean_absolute_error(pairs: &[(f64, f64)]) -> Option<f64> {
    (!pairs.is_empty())
        .then(|| pairs.iter().map(|&(p, a)| (p - a).abs()).sum::<f64>() / pairs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nae::nae;

    #[test]
    fn definitions() {
        let pairs = [(8.0, 10.0), (6.0, 5.0)];
        assert!((mean_relative_error(&pairs).unwrap() - (0.2 + 0.2) / 2.0).abs() < 1e-12);
        assert!((mean_absolute_error(&pairs).unwrap() - 1.5).abs() < 1e-12);
    }

    /// The paper's first objection, demonstrated: one near-zero actual
    /// cost blows the relative error up even though the model is
    /// excellent, while NAE barely moves.
    #[test]
    fn relative_error_is_not_robust_to_low_costs() {
        // 99 perfect predictions at cost 100, one off-by-one at cost 0.01.
        let mut pairs: Vec<(f64, f64)> = (0..99).map(|_| (100.0, 100.0)).collect();
        pairs.push((1.01, 0.01));
        let rel = mean_relative_error(&pairs).unwrap();
        let n = nae(&pairs).unwrap();
        assert!(rel > 0.9, "one cheap query dominates: relative error {rel}");
        assert!(n < 0.001, "NAE is unfazed: {n}");
        // And at exactly zero cost, relative error is undefined entirely.
        assert_eq!(mean_relative_error(&[(1.0, 0.0)]), None);
        assert!(nae(&[(1.0, 0.0), (5.0, 5.0)]).is_some());
    }

    /// The paper's second objection, demonstrated: the same model quality
    /// on two UDFs whose costs differ by 1000x gives absolute errors that
    /// cannot be compared, while NAE is identical.
    #[test]
    fn absolute_error_is_not_comparable_across_udfs() {
        let cheap_udf: Vec<(f64, f64)> = (1..=10)
            .map(|i| {
                let a = f64::from(i);
                (a * 1.1, a) // 10% over-prediction
            })
            .collect();
        let expensive_udf: Vec<(f64, f64)> = (1..=10)
            .map(|i| {
                let a = f64::from(i) * 1000.0;
                (a * 1.1, a)
            })
            .collect();
        let abs_cheap = mean_absolute_error(&cheap_udf).unwrap();
        let abs_exp = mean_absolute_error(&expensive_udf).unwrap();
        assert!(abs_exp > 500.0 * abs_cheap, "absolute errors differ by the cost scale");
        let nae_cheap = nae(&cheap_udf).unwrap();
        let nae_exp = nae(&expensive_udf).unwrap();
        assert!((nae_cheap - nae_exp).abs() < 1e-12, "NAE sees the same 10% model error");
        assert!((nae_cheap - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean_relative_error(&[]), None);
        assert_eq!(mean_absolute_error(&[]), None);
    }
}
