//! Property: AUC measured in *structural* operation costs is invariant
//! under multiplication of the UDF cost scale.
//!
//! The paper's update cost is driven by how much tree work feedback
//! causes — insertions, compression passes, node visits — and none of
//! that may depend on whether a UDF reports costs in microseconds or
//! hours. Scaling every observed cost by a power of two (exact in IEEE
//! arithmetic) must leave the tree's structural decisions bit-identical:
//! same insertion count, same compression count, same descent lengths,
//! hence the same count-based AUC — and every prediction must scale by
//! exactly the same factor.

use mlq_core::{CostModel, InsertionStrategy, MemoryLimitedQuadtree, MlqConfig, Space};
use mlq_metrics::{apc, auc};
use proptest::prelude::*;

fn model(space: &Space) -> MemoryLimitedQuadtree {
    let config = MlqConfig::builder(space.clone())
        .memory_budget(1800)
        .strategy(InsertionStrategy::Eager)
        .build()
        .unwrap();
    MemoryLimitedQuadtree::new(config).unwrap()
}

/// Drives a model through a deterministic feedback/predict loop over
/// costs scaled by `scale`, returning (counters, prediction bit patterns).
fn run(space: &Space, scale: f64, seed: u64) -> (mlq_core::ModelCounters, Vec<Option<u64>>) {
    let surface = mlq_synth_stream(space, seed);
    let mut m = model(space);
    let mut predictions = Vec::new();
    for (point, cost) in &surface {
        predictions.push(m.predict(point).unwrap().map(|p| (p / scale).to_bits()));
        m.observe(point, cost * scale).unwrap();
    }
    (m.counters(), predictions)
}

/// A seeded synthetic feedback stream (kept dependency-free: a small
/// LCG over a bumpy analytic surface rather than pulling in mlq-synth).
fn mlq_synth_stream(space: &Space, seed: u64) -> Vec<(Vec<f64>, f64)> {
    let mut state = seed | 1;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..600)
        .map(|_| {
            let p: Vec<f64> = (0..space.dims())
                .map(|i| space.low(i) + next() * (space.high(i) - space.low(i)))
                .collect();
            // Dyadic costs: exact under power-of-two scaling.
            let c = (p.iter().sum::<f64>() / 64.0).floor() * 0.25 + 2.0;
            (p, c)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn auc_is_invariant_under_cost_scale_multiplication(
        seed in 1u64..1_000_000,
        scale_exp in -4i32..12,
    ) {
        let space = Space::cube(2, 0.0, 1000.0).unwrap();
        let scale = 2f64.powi(scale_exp);

        let (base, preds_base) = run(&space, 1.0, seed);
        let (scaled, preds_scaled) = run(&space, scale, seed);

        // Structural decisions are identical...
        prop_assert_eq!(base.insertions, scaled.insertions);
        prop_assert_eq!(base.compressions, scaled.compressions);
        prop_assert_eq!(base.predictions, scaled.predictions);
        prop_assert_eq!(base.predict_nodes_visited, scaled.predict_nodes_visited);
        prop_assert_eq!(base.sseg_evictions, scaled.sseg_evictions);

        // ...so count-based AUC/APC are exactly equal: one unit of work
        // per insertion/compression/visit on both sides.
        let unit = |n: u64| vec![1.0; usize::try_from(n).unwrap()];
        prop_assert_eq!(
            auc(&unit(base.insertions), &unit(base.compressions), base.predictions),
            auc(&unit(scaled.insertions), &unit(scaled.compressions), scaled.predictions)
        );
        prop_assert_eq!(
            apc(&unit(base.predict_nodes_visited)),
            apc(&unit(scaled.predict_nodes_visited))
        );

        // And predictions scale by exactly the factor (bit-level, after
        // dividing the scale back out).
        prop_assert_eq!(preds_base, preds_scaled);
    }
}
