//! Adapter from one [`CostModel`] to the optimizer's [`Estimator`] seam.

use mlq_core::{CostModel, MlqError};
use mlq_optimizer::Estimator;
use mlq_udfs::ExecutionCost;

/// Drives a single cost model as a full [`Estimator`] by learning the
/// *combined* CPU + weighted-IO cost directly.
///
/// [`mlq_optimizer::CostEstimator`] keeps two models per UDF (the
/// paper's design: separate CPU and disk-IO surfaces). A learned
/// regressor deployed per UDF would instead learn the single quantity
/// the optimizer actually ranks on — `cpu + io_weight * io` — halving
/// model state. This adapter is that deployment: `observe` folds the
/// execution cost into one scalar via [`Estimator::combine`] before
/// feeding the model, and `predict` returns the model's combined-cost
/// estimate as-is.
#[derive(Debug, Clone)]
pub struct CombinedEstimator<M: CostModel> {
    model: M,
    io_weight: f64,
}

impl<M: CostModel> CombinedEstimator<M> {
    /// Wraps `model`; `io_weight` converts page reads to CPU units, as
    /// in [`mlq_optimizer::CostEstimator::new`].
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] when `io_weight` is negative or
    /// non-finite.
    pub fn new(model: M, io_weight: f64) -> Result<Self, MlqError> {
        if !io_weight.is_finite() || io_weight < 0.0 {
            return Err(MlqError::InvalidConfig {
                reason: format!("io_weight must be finite and non-negative, got {io_weight}"),
            });
        }
        Ok(CombinedEstimator { model, io_weight })
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Accounted bytes of the underlying model.
    #[must_use]
    pub fn memory_used(&self) -> usize {
        self.model.memory_used()
    }
}

impl<M: CostModel> Estimator for CombinedEstimator<M> {
    fn predict(&self, point: &[f64]) -> Result<Option<f64>, MlqError> {
        self.model.predict(point)
    }

    fn predict_batch(&self, points: &[Vec<f64>]) -> Result<Vec<Option<f64>>, MlqError> {
        // Same per-point path as `predict` — bit-identical by
        // construction, with one result allocation for the whole batch
        // (the estimator-contract suite asserts the equivalence).
        let mut out = Vec::with_capacity(points.len());
        for p in points {
            out.push(self.model.predict(p)?);
        }
        Ok(out)
    }

    fn observe(&mut self, point: &[f64], cost: ExecutionCost) -> Result<(), MlqError> {
        let combined = self.combine(cost);
        self.model.observe(point, combined)
    }

    fn combine(&self, cost: ExecutionCost) -> f64 {
        cost.cpu + self.io_weight * cost.io
    }

    fn memory_used(&self) -> usize {
        self.model.memory_used()
    }

    fn name(&self) -> String {
        format!("combined({})", self.model.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GbStumpEnsemble, KnnRegressor};
    use mlq_core::Space;

    fn space() -> Space {
        Space::cube(2, 0.0, 1000.0).unwrap()
    }

    #[test]
    fn learns_the_combined_cost() {
        let knn = KnnRegressor::new(space(), 2, 64, 3).unwrap();
        let mut e = CombinedEstimator::new(knn, 100.0).unwrap();
        assert_eq!(e.predict(&[1.0, 1.0]).unwrap(), None);
        e.observe(&[1.0, 1.0], ExecutionCost { cpu: 50.0, io: 2.0, results: 0 }).unwrap();
        let p = e.predict(&[1.0, 1.0]).unwrap().unwrap();
        assert!((p - 250.0).abs() < 1e-9, "50 + 100*2 = 250, got {p}");
        assert!((e.combine(ExecutionCost { cpu: 50.0, io: 2.0, results: 0 }) - 250.0).abs() < 1e-9);
        assert!(Estimator::memory_used(&e) > 0);
        assert_eq!(e.name(), "combined(KNN-R)");
    }

    #[test]
    fn predict_batch_matches_per_point_bitwise() {
        let gb = GbStumpEnsemble::new(space(), 12, 0.3).unwrap();
        let mut e = CombinedEstimator::new(gb, 10.0).unwrap();
        for i in 0..300 {
            let p = [f64::from(i % 23) * 43.0, f64::from(i % 7) * 140.0];
            e.observe(
                &p,
                ExecutionCost { cpu: f64::from(i % 50), io: f64::from(i % 3), results: 0 },
            )
            .unwrap();
        }
        let probes: Vec<Vec<f64>> =
            (0..50).map(|i| vec![f64::from(i) * 20.0, f64::from(i % 10) * 100.0]).collect();
        let batch = e.predict_batch(&probes).unwrap();
        for (probe, b) in probes.iter().zip(&batch) {
            let single = e.predict(probe).unwrap();
            assert_eq!(single.map(f64::to_bits), b.map(f64::to_bits));
        }
    }

    #[test]
    fn rejects_bad_weights() {
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            let knn = KnnRegressor::new(space(), 2, 8, 0).unwrap();
            assert!(CombinedEstimator::new(knn, bad).is_err());
        }
    }
}
