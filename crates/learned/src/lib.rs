//! # mlq-learned — online learned cost-model baselines
//!
//! GRACEFUL-style learned estimators are the 2025 state of the art for
//! UDF cost estimation; this crate supplies two *online* learned
//! baselines that slot into the same harnesses as MLQ and the static
//! histograms, so the bake-off (`mlq-exp bakeoff`) can compare the
//! paper's approach against learned competition at a fixed byte budget:
//!
//! * [`KnnRegressor`] — an incremental k-nearest-neighbour regressor
//!   whose training set is bounded by *reservoir sampling* (Vitter's
//!   algorithm R), so its memory is a hard byte budget no matter how
//!   long the feedback stream runs;
//! * [`GbStumpEnsemble`] — a small gradient-boosted ensemble of decision
//!   stumps over a fixed dyadic threshold grid, trained stage-wise on
//!   residuals, one feedback point at a time.
//!
//! Both implement [`mlq_core::CostModel`] and
//! [`mlq_core::TrainableModel`], so they drop into `build_model`-style
//! experiment harnesses unchanged, and both are deterministic under a
//! fixed seed (the stump ensemble uses no randomness at all).
//!
//! [`CombinedEstimator`] adapts any single [`CostModel`] to the
//! optimizer's [`mlq_optimizer::Estimator`] seam — including
//! `predict_batch` — by learning the *combined* CPU + weighted-IO cost
//! with one model, which is how a learned baseline would actually be
//! deployed (one regressor per UDF, not one per cost component).
//!
//! ```
//! use mlq_core::{CostModel, Space};
//! use mlq_learned::KnnRegressor;
//!
//! let space = Space::cube(2, 0.0, 1000.0)?;
//! // Memory-fair with the paper's 1.8 KB budget:
//! let mut knn = KnnRegressor::with_budget(space, 4, 1800, 7)?;
//! knn.observe(&[10.0, 10.0], 5.0)?;
//! assert!(knn.predict(&[11.0, 10.0])?.is_some());
//! # Ok::<(), mlq_core::MlqError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod combined;
mod knn;
mod stumps;

pub use combined::CombinedEstimator;
pub use knn::KnnRegressor;
pub use stumps::GbStumpEnsemble;
