//! Incremental k-NN regression over a reservoir-bounded training set.

use mlq_core::{CostModel, MlqError, Space, TrainableModel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Bytes accounted per stored example beyond its coordinates: the cost
/// value plus the `Vec` pointer/len/cap triple that holds the point.
const EXAMPLE_OVERHEAD: usize = 8 + 3 * 8;

/// An online k-nearest-neighbour cost regressor with hard-bounded memory.
///
/// Every observation is offered to a fixed-capacity *reservoir* (Vitter's
/// algorithm R): the first `capacity` examples are kept, after which each
/// new example replaces a uniformly random slot with probability
/// `capacity / seen`. The reservoir therefore stays a uniform sample of
/// the whole feedback stream while memory never grows — the learned
/// analogue of MLQ's fixed byte budget.
///
/// Prediction is inverse-distance-weighted regression over the `k`
/// nearest stored examples (exact matches short-circuit to their exact
/// average). Deterministic under a fixed seed: the reservoir's RNG is
/// seeded, distance ties break by slot index, and prediction itself uses
/// no randomness.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    space: Space,
    k: usize,
    capacity: usize,
    points: Vec<Vec<f64>>,
    costs: Vec<f64>,
    seen: u64,
    rng: StdRng,
}

impl KnnRegressor {
    /// Creates a regressor over `space` keeping at most `capacity`
    /// examples and predicting from the `k` nearest.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] when `k` or `capacity` is zero.
    pub fn new(space: Space, k: usize, capacity: usize, seed: u64) -> Result<Self, MlqError> {
        if k == 0 || capacity == 0 {
            return Err(MlqError::InvalidConfig {
                reason: format!(
                    "k-NN needs k >= 1 and capacity >= 1, got k={k} capacity={capacity}"
                ),
            });
        }
        Ok(KnnRegressor {
            space,
            k,
            capacity,
            points: Vec::new(),
            costs: Vec::new(),
            seen: 0,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Creates a regressor whose reservoir capacity is derived from a
    /// byte budget, memory-fairly with the other estimator families:
    /// each stored example costs `8 * dims` coordinate bytes plus the
    /// value and container overhead.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] when `k == 0` or the budget cannot
    /// hold a single example.
    pub fn with_budget(space: Space, k: usize, budget: usize, seed: u64) -> Result<Self, MlqError> {
        let per_example = 8 * space.dims() + EXAMPLE_OVERHEAD;
        let capacity = budget / per_example;
        if capacity == 0 {
            return Err(MlqError::InvalidConfig {
                reason: format!("budget {budget} B cannot hold one {}-d example", space.dims()),
            });
        }
        KnnRegressor::new(space, k, capacity, seed)
    }

    /// Number of examples currently held in the reservoir.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True while the reservoir is empty (no predictions possible yet).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Reservoir capacity in examples.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn check(&self, point: &[f64]) -> Result<(), MlqError> {
        self.space.grid_point(point).map(|_| ())
    }
}

impl CostModel for KnnRegressor {
    fn predict(&self, point: &[f64]) -> Result<Option<f64>, MlqError> {
        self.check(point)?;
        if self.points.is_empty() {
            return Ok(None);
        }
        // Squared distances to every stored example; k smallest win, ties
        // broken by slot index (select_nth on (dist, index) is exact).
        let mut dists: Vec<(f64, usize)> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d2: f64 = p.iter().zip(point).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2, i)
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let nearest = &dists[..k];

        // Exact hits average exactly (inverse-distance weights diverge).
        let exact: Vec<usize> =
            nearest.iter().take_while(|(d2, _)| *d2 == 0.0).map(|&(_, i)| i).collect();
        if !exact.is_empty() {
            let sum: f64 = exact.iter().map(|&i| self.costs[i]).sum();
            return Ok(Some(sum / exact.len() as f64));
        }
        let mut wsum = 0.0;
        let mut vsum = 0.0;
        for &(d2, i) in nearest {
            let w = 1.0 / d2.sqrt();
            wsum += w;
            vsum += w * self.costs[i];
        }
        Ok(Some(vsum / wsum))
    }

    fn observe(&mut self, point: &[f64], actual: f64) -> Result<(), MlqError> {
        self.check(point)?;
        if !actual.is_finite() {
            return Err(MlqError::NonFiniteValue { context: "cost value" });
        }
        self.seen += 1;
        if self.points.len() < self.capacity {
            self.points.push(point.to_vec());
            self.costs.push(actual);
        } else {
            // Algorithm R: replace a random slot with probability cap/seen.
            let j = self.rng.random_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.points[j as usize] = point.to_vec();
                self.costs[j as usize] = actual;
            }
        }
        Ok(())
    }

    fn memory_used(&self) -> usize {
        self.points.len() * (8 * self.space.dims() + EXAMPLE_OVERHEAD) + std::mem::size_of::<Self>()
    }

    fn name(&self) -> String {
        "KNN-R".to_string()
    }
}

impl TrainableModel for KnnRegressor {
    fn fit(&mut self, data: &[(Vec<f64>, f64)]) -> Result<(), MlqError> {
        for (point, value) in data {
            self.observe(point, *value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Space {
        Space::cube(2, 0.0, 1000.0).unwrap()
    }

    #[test]
    fn cold_model_predicts_none() {
        let knn = KnnRegressor::new(space(), 3, 100, 1).unwrap();
        assert_eq!(knn.predict(&[1.0, 2.0]).unwrap(), None);
    }

    #[test]
    fn exact_match_returns_observed_cost() {
        let mut knn = KnnRegressor::new(space(), 3, 100, 1).unwrap();
        knn.observe(&[10.0, 10.0], 42.0).unwrap();
        knn.observe(&[900.0, 900.0], 7.0).unwrap();
        assert_eq!(knn.predict(&[10.0, 10.0]).unwrap(), Some(42.0));
    }

    #[test]
    fn interpolates_between_neighbours() {
        let mut knn = KnnRegressor::new(space(), 2, 100, 1).unwrap();
        knn.observe(&[0.0, 0.0], 10.0).unwrap();
        knn.observe(&[100.0, 0.0], 30.0).unwrap();
        // Midpoint: equal weights -> mean of the two costs.
        let p = knn.predict(&[50.0, 0.0]).unwrap().unwrap();
        assert!((p - 20.0).abs() < 1e-9, "{p}");
        // Closer to the first point -> pulled toward 10.
        let p = knn.predict(&[10.0, 0.0]).unwrap().unwrap();
        assert!(p < 15.0, "{p}");
    }

    #[test]
    fn reservoir_never_exceeds_capacity() {
        let mut knn = KnnRegressor::new(space(), 3, 16, 9).unwrap();
        for i in 0..1000 {
            let x = f64::from(i % 100) * 10.0;
            knn.observe(&[x, x], f64::from(i)).unwrap();
        }
        assert_eq!(knn.len(), 16);
        let cap = knn.memory_used();
        for i in 0..100 {
            knn.observe(&[5.0, f64::from(i)], 1.0).unwrap();
        }
        assert_eq!(knn.memory_used(), cap, "memory must stay flat after fill");
    }

    #[test]
    fn budget_sizing_is_memory_fair() {
        let knn = KnnRegressor::with_budget(space(), 4, 1800, 1).unwrap();
        // 2-d example = 16 + 32 = 48 B -> 37 slots from 1800 B.
        assert_eq!(knn.capacity(), 1800 / 48);
        assert!(KnnRegressor::with_budget(space(), 4, 10, 1).is_err());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let stream: Vec<(Vec<f64>, f64)> = (0..500)
            .map(|i| (vec![f64::from(i % 37) * 27.0, f64::from(i % 11) * 90.0], f64::from(i)))
            .collect();
        let run = |seed: u64| {
            let mut knn = KnnRegressor::new(space(), 3, 32, seed).unwrap();
            for (p, c) in &stream {
                knn.observe(p, *c).unwrap();
            }
            (0..20)
                .map(|i| knn.predict(&[f64::from(i) * 50.0, 500.0]).unwrap().unwrap().to_bits())
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(7), run(7), "same seed must be bit-identical");
        assert_ne!(run(7), run(8), "different seeds must sample different reservoirs");
    }

    #[test]
    fn rejects_malformed_input() {
        let mut knn = KnnRegressor::new(space(), 3, 10, 1).unwrap();
        assert!(knn.predict(&[1.0]).is_err());
        assert!(knn.observe(&[1.0, f64::NAN], 1.0).is_err());
        assert!(knn.observe(&[1.0, 1.0], f64::INFINITY).is_err());
        assert!(KnnRegressor::new(space(), 0, 10, 1).is_err());
        assert!(KnnRegressor::new(space(), 3, 0, 1).is_err());
    }
}
