//! An online gradient-boosted ensemble of decision stumps.

use mlq_core::{CostModel, MlqError, Space, TrainableModel};

/// Accounted bytes per stump: dimension index, threshold, two leaf
/// values, two leaf counts.
const STUMP_BYTES: usize = 8 + 8 + 2 * 8 + 2 * 8;

/// One axis-aligned split with a learned value per side.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stump {
    dim: usize,
    threshold: f64,
    /// Leaf corrections: `[below, at-or-above]` the threshold.
    leaf: [f64; 2],
    /// Observations each leaf has absorbed (drives the step-size decay).
    hits: [u64; 2],
}

impl Stump {
    #[inline]
    fn side(&self, point: &[f64]) -> usize {
        usize::from(point[self.dim] >= self.threshold)
    }
}

/// A small gradient-boosted-stump regressor trained one feedback point at
/// a time.
///
/// The ensemble's structure is fixed up front — deterministic, no RNG:
/// stump `s` splits dimension `s % dims` at a *dyadic* threshold
/// (midpoint first, then quarter points, eighths, …), so successive
/// stumps refine each axis the way successive quadtree levels refine the
/// model space. Only the leaf values learn.
///
/// Training is stage-wise, exactly like batch gradient boosting with a
/// squared loss: each stump receives the residual left by the stages
/// before it and moves its active leaf toward that residual with a
/// per-leaf step size `shrinkage / (1 + hits/relearn)`. The decaying step
/// keeps early stages stable while `relearn` bounds how slow updates may
/// become, so the ensemble keeps tracking concept drift instead of
/// freezing solid.
#[derive(Debug, Clone)]
pub struct GbStumpEnsemble {
    space: Space,
    stumps: Vec<Stump>,
    /// Running mean of all observed costs — boosting stage 0.
    base_sum: f64,
    base_count: u64,
    shrinkage: f64,
    relearn: f64,
}

impl GbStumpEnsemble {
    /// Creates an ensemble of `stumps` stumps over `space` with learning
    /// rate `shrinkage` (0.3 is a robust default for stream learning).
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] when `stumps == 0` or `shrinkage` is
    /// not in `(0, 1]`.
    pub fn new(space: Space, stumps: usize, shrinkage: f64) -> Result<Self, MlqError> {
        if stumps == 0 {
            return Err(MlqError::InvalidConfig {
                reason: "a stump ensemble needs at least one stump".to_string(),
            });
        }
        if !(shrinkage > 0.0 && shrinkage <= 1.0) {
            return Err(MlqError::InvalidConfig {
                reason: format!("shrinkage must be in (0, 1], got {shrinkage}"),
            });
        }
        let dims = space.dims();
        let built = (0..stumps)
            .map(|s| {
                let dim = s % dims;
                let level = s / dims;
                Stump {
                    dim,
                    threshold: dyadic_threshold(space.low(dim), space.high(dim), level),
                    leaf: [0.0; 2],
                    hits: [0; 2],
                }
            })
            .collect();
        Ok(GbStumpEnsemble {
            space,
            stumps: built,
            base_sum: 0.0,
            base_count: 0,
            shrinkage,
            relearn: 64.0,
        })
    }

    /// Creates an ensemble sized from a byte budget, memory-fairly with
    /// the other estimator families.
    ///
    /// # Errors
    ///
    /// [`MlqError::InvalidConfig`] when the budget cannot hold one stump.
    pub fn with_budget(space: Space, budget: usize, shrinkage: f64) -> Result<Self, MlqError> {
        let stumps = budget / STUMP_BYTES;
        if stumps == 0 {
            return Err(MlqError::InvalidConfig {
                reason: format!("budget {budget} B cannot hold one {STUMP_BYTES}-byte stump"),
            });
        }
        GbStumpEnsemble::new(space, stumps, shrinkage)
    }

    /// Number of stumps in the ensemble.
    #[must_use]
    pub fn stump_count(&self) -> usize {
        self.stumps.len()
    }

    fn check(&self, point: &[f64]) -> Result<(), MlqError> {
        self.space.grid_point(point).map(|_| ())
    }

    fn raw_predict(&self, point: &[f64]) -> f64 {
        let base = self.base_sum / self.base_count as f64;
        self.stumps.iter().fold(base, |acc, s| acc + s.leaf[s.side(point)])
    }
}

/// The `level`-th dyadic split position inside `[low, high)`: 1/2, then
/// 1/4, 3/4, then 1/8, 3/8, 5/8, 7/8, …
fn dyadic_threshold(low: f64, high: f64, level: usize) -> f64 {
    // Level l belongs to generation g where generation g holds 2^g
    // thresholds: l = 2^g - 1 + k, numerator (2k+1), denominator 2^(g+1).
    let generation = usize::BITS - (level + 1).leading_zeros() - 1;
    let k = level + 1 - (1 << generation);
    let frac = (2 * k + 1) as f64 / f64::from(1u32 << (generation + 1));
    low + frac * (high - low)
}

impl CostModel for GbStumpEnsemble {
    fn predict(&self, point: &[f64]) -> Result<Option<f64>, MlqError> {
        self.check(point)?;
        if self.base_count == 0 {
            return Ok(None);
        }
        // Boosted corrections can overshoot below zero; execution costs
        // cannot, so the model's output is clamped like MLQ's summaries.
        Ok(Some(self.raw_predict(point).max(0.0)))
    }

    fn observe(&mut self, point: &[f64], actual: f64) -> Result<(), MlqError> {
        self.check(point)?;
        if !actual.is_finite() {
            return Err(MlqError::NonFiniteValue { context: "cost value" });
        }
        self.base_sum += actual;
        self.base_count += 1;
        // Stage-wise residual fitting: each stump corrects what the
        // prefix before it still gets wrong at this point.
        let mut partial = self.base_sum / self.base_count as f64;
        let (shrinkage, relearn) = (self.shrinkage, self.relearn);
        for stump in &mut self.stumps {
            let side = stump.side(point);
            stump.hits[side] += 1;
            let residual = actual - partial - stump.leaf[side];
            let rate = shrinkage / (1.0 + stump.hits[side] as f64 / relearn);
            stump.leaf[side] += rate * residual;
            partial += stump.leaf[side];
        }
        Ok(())
    }

    fn memory_used(&self) -> usize {
        self.stumps.len() * STUMP_BYTES + std::mem::size_of::<Self>()
    }

    fn name(&self) -> String {
        "GB-STUMP".to_string()
    }
}

impl TrainableModel for GbStumpEnsemble {
    fn fit(&mut self, data: &[(Vec<f64>, f64)]) -> Result<(), MlqError> {
        for (point, value) in data {
            self.observe(point, *value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Space {
        Space::cube(2, 0.0, 1000.0).unwrap()
    }

    #[test]
    fn dyadic_thresholds_refine_like_tree_levels() {
        let t: Vec<f64> = (0..7).map(|l| dyadic_threshold(0.0, 1000.0, l)).collect();
        assert_eq!(t, vec![500.0, 250.0, 750.0, 125.0, 375.0, 625.0, 875.0]);
    }

    #[test]
    fn cold_model_predicts_none() {
        let gb = GbStumpEnsemble::new(space(), 8, 0.3).unwrap();
        assert_eq!(gb.predict(&[1.0, 1.0]).unwrap(), None);
    }

    #[test]
    fn learns_a_step_function() {
        // Cost 100 on the left half, 900 on the right half of dim 0 — one
        // midpoint stump expresses this exactly; the ensemble must find it.
        let mut gb = GbStumpEnsemble::new(space(), 8, 0.3).unwrap();
        for i in 0..600 {
            let x = f64::from(i % 20) * 50.0 + 1.0;
            let y = f64::from(i % 13) * 75.0;
            let c = if x < 500.0 { 100.0 } else { 900.0 };
            gb.observe(&[x, y], c).unwrap();
        }
        let left = gb.predict(&[200.0, 400.0]).unwrap().unwrap();
        let right = gb.predict(&[800.0, 400.0]).unwrap().unwrap();
        assert!((left - 100.0).abs() < 60.0, "left {left}");
        assert!((right - 900.0).abs() < 60.0, "right {right}");
    }

    #[test]
    fn predictions_are_clamped_non_negative() {
        let mut gb = GbStumpEnsemble::new(space(), 16, 1.0).unwrap();
        // Aggressive shrinkage + alternating extremes can overshoot; the
        // clamp keeps the contract.
        for i in 0..200 {
            let x = f64::from(i % 2) * 999.0;
            gb.observe(&[x, x], if i % 2 == 0 { 0.0 } else { 5000.0 }).unwrap();
        }
        for probe in 0..20 {
            let p = gb.predict(&[f64::from(probe) * 50.0, 10.0]).unwrap().unwrap();
            assert!(p >= 0.0 && p.is_finite(), "{p}");
        }
    }

    #[test]
    fn fully_deterministic_without_seed() {
        let stream: Vec<(Vec<f64>, f64)> = (0..400)
            .map(|i| (vec![f64::from(i % 31) * 32.0, f64::from(i % 17) * 58.0], f64::from(i % 97)))
            .collect();
        let run = || {
            let mut gb = GbStumpEnsemble::new(space(), 12, 0.3).unwrap();
            for (p, c) in &stream {
                gb.observe(p, *c).unwrap();
            }
            (0..20)
                .map(|i| gb.predict(&[f64::from(i) * 50.0, 333.0]).unwrap().unwrap().to_bits())
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tracks_drift_instead_of_freezing() {
        let mut gb = GbStumpEnsemble::new(space(), 8, 0.3).unwrap();
        for _ in 0..2000 {
            gb.observe(&[250.0, 250.0], 100.0).unwrap();
        }
        let before = gb.predict(&[250.0, 250.0]).unwrap().unwrap();
        assert!((before - 100.0).abs() < 5.0, "{before}");
        // Regime change at the same point: the bounded step-size decay
        // must let the model follow within a few hundred feedbacks.
        for _ in 0..2000 {
            gb.observe(&[250.0, 250.0], 900.0).unwrap();
        }
        let after = gb.predict(&[250.0, 250.0]).unwrap().unwrap();
        assert!((after - 900.0).abs() < 100.0, "stuck at {after}");
    }

    #[test]
    fn budget_sizing_and_bad_configs() {
        let gb = GbStumpEnsemble::with_budget(space(), 1800, 0.3).unwrap();
        assert_eq!(gb.stump_count(), 1800 / STUMP_BYTES);
        assert!(gb.memory_used() >= gb.stump_count() * STUMP_BYTES);
        assert!(GbStumpEnsemble::with_budget(space(), 10, 0.3).is_err());
        assert!(GbStumpEnsemble::new(space(), 0, 0.3).is_err());
        assert!(GbStumpEnsemble::new(space(), 4, 0.0).is_err());
        assert!(GbStumpEnsemble::new(space(), 4, 1.5).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        let mut gb = GbStumpEnsemble::new(space(), 4, 0.3).unwrap();
        assert!(gb.predict(&[1.0]).is_err());
        assert!(gb.observe(&[1.0, 1.0], f64::NAN).is_err());
    }
}
