//! Concurrency and failure-injection tests for the storage substrate.
//!
//! A DBMS buffer manager is shared by every session; the pool must stay
//! consistent under parallel readers, and corrupt pages must surface as
//! errors rather than wrong data.

use mlq_storage::{BufferPool, DiskSim, HeapFileBuilder, PageId, SlottedPage, PAGE_SIZE};
use std::sync::Arc;
use std::thread;

fn pool_with_pages(n: u8, capacity: usize) -> BufferPool {
    let mut disk = DiskSim::new();
    for i in 0..n {
        disk.alloc(vec![i; PAGE_SIZE]);
    }
    BufferPool::new(disk, capacity)
}

#[test]
fn parallel_readers_see_consistent_pages() {
    let pool = Arc::new(pool_with_pages(32, 8));
    let mut handles = Vec::new();
    for t in 0..8u8 {
        let pool = Arc::clone(&pool);
        handles.push(thread::spawn(move || {
            // Each thread walks its own stride pattern across all pages.
            for round in 0..200u32 {
                let id = u64::from((u32::from(t) * 7 + round * 13) % 32);
                let page = pool.read(PageId(id)).expect("valid page");
                // Every byte of the page must match the page id — a torn
                // or misfiled read would break this.
                assert!(page.iter().all(|&b| b == id as u8), "thread {t} page {id}");
            }
        }));
    }
    for h in handles {
        h.join().expect("no reader panicked");
    }
    let stats = pool.stats();
    assert_eq!(stats.logical_reads, 8 * 200);
    assert_eq!(stats.hits + stats.misses, stats.logical_reads);
    // The cache never exceeds its capacity.
    assert!(pool.cached_pages() <= 8);
}

#[test]
fn parallel_scans_of_one_heap_file() {
    let mut disk = DiskSim::new();
    let mut builder = HeapFileBuilder::new(&mut disk);
    for i in 0..500u32 {
        builder.append(&i.to_le_bytes()).unwrap();
    }
    let file = Arc::new(builder.finish().unwrap());
    let pool = Arc::new(BufferPool::new(disk, 4));

    let mut handles = Vec::new();
    for _ in 0..6 {
        let file = Arc::clone(&file);
        let pool = Arc::clone(&pool);
        handles.push(thread::spawn(move || {
            let mut sum = 0u64;
            file.scan(&pool, |_, rec| {
                sum += u64::from(u32::from_le_bytes(rec.try_into().expect("4 bytes")));
            })
            .expect("scan succeeds");
            sum
        }));
    }
    let expected: u64 = (0..500u64).sum();
    for h in handles {
        assert_eq!(h.join().expect("no scanner panicked"), expected);
    }
}

#[test]
fn corrupt_page_surfaces_as_error_not_garbage() {
    // A page whose header claims more records than the directory holds.
    let mut bad = vec![0u8; PAGE_SIZE];
    bad[0] = 0xFF;
    bad[1] = 0xFF; // record_count = 65535
    let mut disk = DiskSim::new();
    let id = disk.alloc(bad);
    let pool = BufferPool::new(disk, 2);
    let page = pool.read(id).unwrap();
    assert!(SlottedPage::record(&page, 0).is_err());
    assert!(SlottedPage::records(&page).is_err());
}

#[test]
fn slot_offsets_out_of_order_are_rejected() {
    // Hand-craft a page with a decreasing slot directory.
    let mut bad = vec![0u8; PAGE_SIZE];
    bad[0..2].copy_from_slice(&2u16.to_le_bytes()); // 2 records
    bad[2..4].copy_from_slice(&10u16.to_le_bytes()); // end_0 = 10
    bad[4..6].copy_from_slice(&5u16.to_le_bytes()); // end_1 = 5 < end_0
    let mut disk = DiskSim::new();
    let id = disk.alloc(bad);
    let pool = BufferPool::new(disk, 2);
    let page = pool.read(id).unwrap();
    assert!(SlottedPage::record(&page, 0).is_ok(), "first record is intact");
    assert!(SlottedPage::record(&page, 1).is_err(), "reversed offsets are corrupt");
}

#[test]
fn pool_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BufferPool>();
    assert_send_sync::<DiskSim>();
}
