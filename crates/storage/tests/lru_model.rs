//! Model-based test: the buffer pool's O(1) LRU must make exactly the
//! same hit/miss decisions as a trivially correct reference
//! implementation, for arbitrary access sequences.

use mlq_storage::{BufferPool, DiskSim, PageId, PAGE_SIZE};
use proptest::prelude::*;

/// The obviously-correct reference: a vector ordered most-recent-first.
struct ReferenceLru {
    capacity: usize,
    order: Vec<u64>,
}

impl ReferenceLru {
    fn new(capacity: usize) -> Self {
        ReferenceLru { capacity, order: Vec::new() }
    }

    /// Returns true on a hit.
    fn access(&mut self, id: u64) -> bool {
        if let Some(pos) = self.order.iter().position(|&x| x == id) {
            self.order.remove(pos);
            self.order.insert(0, id);
            true
        } else {
            if self.order.len() == self.capacity {
                self.order.pop();
            }
            self.order.insert(0, id);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pool_matches_reference_lru(
        capacity in 1usize..12,
        accesses in prop::collection::vec(0u64..24, 1..400),
    ) {
        let mut disk = DiskSim::new();
        for i in 0..24u8 {
            disk.alloc(vec![i; PAGE_SIZE]);
        }
        let pool = BufferPool::new(disk, capacity);
        let mut reference = ReferenceLru::new(capacity);

        for (step, &id) in accesses.iter().enumerate() {
            let hits_before = pool.stats().hits;
            let page = pool.read(PageId(id)).unwrap();
            prop_assert_eq!(page[0], id as u8, "content correct at step {}", step);
            let was_hit = pool.stats().hits > hits_before;
            let expected = reference.access(id);
            prop_assert_eq!(
                was_hit, expected,
                "step {}: access {} disagreed with the reference", step, id
            );
        }
        prop_assert_eq!(pool.cached_pages(), reference.order.len());
        let s = pool.stats();
        prop_assert_eq!(s.logical_reads as usize, accesses.len());
        prop_assert_eq!(s.hits + s.misses, s.logical_reads);
    }
}
