//! The simulated disk: a flat array of pages with physical-IO accounting.

use crate::error::StorageError;
use crate::fault::{FaultInjector, FaultStats, ReadFault, WriteFault};
use crate::page::{PageId, PAGE_SIZE};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A disk of fixed-size pages kept in memory, counting every physical read
/// — the denominator of the experiments' IO-cost measurements.
///
/// Pages are shared as `Arc<[u8]>` so the buffer pool can cache them
/// without copying.
///
/// An optional [`FaultInjector`] perturbs reads and writes with a
/// deterministic, seeded fault schedule (see [`crate::fault`]); without
/// one installed, the disk is perfectly reliable and the fast path pays
/// nothing.
#[derive(Debug, Default)]
pub struct DiskSim {
    pages: Vec<Arc<[u8]>>,
    physical_reads: AtomicU64,
    faults: Option<Mutex<FaultInjector>>,
}

impl DiskSim {
    /// An empty disk.
    #[must_use]
    pub fn new() -> Self {
        DiskSim::default()
    }

    /// Number of allocated pages.
    #[must_use]
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Total physical reads since construction.
    #[must_use]
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads.load(Ordering::Relaxed)
    }

    /// Installs a fault injector; every subsequent read and write is
    /// screened against its schedule. Replaces any previous injector.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(Mutex::new(injector));
    }

    /// Removes the fault injector, restoring a perfectly reliable disk.
    pub fn clear_fault_injector(&mut self) {
        self.faults = None;
    }

    /// Fault counts so far; `None` when no injector is installed.
    #[must_use]
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|f| f.lock().stats())
    }

    /// Appends a page image and returns its id.
    ///
    /// # Panics
    ///
    /// Panics when `data` is not exactly [`PAGE_SIZE`] bytes — pages are
    /// produced by [`crate::SlottedPage::encode`], which always pads.
    /// Use [`DiskSim::try_alloc`] for a non-panicking variant.
    pub fn alloc(&mut self, data: Vec<u8>) -> PageId {
        match self.try_alloc(data) {
            Ok(id) => id,
            Err(e) => panic!("pages are exactly PAGE_SIZE bytes: {e}"),
        }
    }

    /// Appends a page image and returns its id.
    ///
    /// # Errors
    ///
    /// [`StorageError::InvalidConfig`] when `data` is not exactly
    /// [`PAGE_SIZE`] bytes. Allocation is not screened by the fault
    /// injector: it models catalog growth, not data-path traffic.
    pub fn try_alloc(&mut self, data: Vec<u8>) -> Result<PageId, StorageError> {
        if data.len() != PAGE_SIZE {
            return Err(StorageError::InvalidConfig {
                reason: "page image must be exactly PAGE_SIZE bytes",
            });
        }
        let id = PageId(self.pages.len() as u64);
        self.pages.push(data.into());
        Ok(id)
    }

    /// Overwrites an allocated page in place.
    ///
    /// With a fault injector installed the write may fail cleanly (old
    /// image intact) or tear — a prefix of the new image persists, the
    /// rest of the page keeps its old bytes, and the error is reported.
    /// A bounded retry that rewrites the full page recovers from a tear.
    ///
    /// # Errors
    ///
    /// [`StorageError::PageOutOfBounds`] for unallocated ids,
    /// [`StorageError::InvalidConfig`] for a wrong-sized image, and
    /// [`StorageError::IoFault`] for injected device failures.
    pub fn write(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        if data.len() != PAGE_SIZE {
            return Err(StorageError::InvalidConfig {
                reason: "page image must be exactly PAGE_SIZE bytes",
            });
        }
        let allocated = self.page_count();
        let slot = self
            .pages
            .get_mut(usize::try_from(id.0).unwrap_or(usize::MAX))
            .ok_or(StorageError::PageOutOfBounds { page: id.0, allocated })?;
        let fault = match &self.faults {
            Some(f) => f.lock().on_write(data.len()),
            None => WriteFault::None,
        };
        match fault {
            WriteFault::None => {
                *slot = data.to_vec().into();
                Ok(())
            }
            WriteFault::Error => {
                Err(StorageError::IoFault { op: "write", page: id.0, attempts: 1 })
            }
            WriteFault::Torn { keep } => {
                let keep = keep.min(data.len());
                let mut torn = slot.to_vec();
                torn[..keep].copy_from_slice(&data[..keep]);
                *slot = torn.into();
                Err(StorageError::IoFault { op: "write", page: id.0, attempts: 1 })
            }
        }
    }

    /// Reads a page from "disk", incrementing the physical-read counter.
    ///
    /// With a fault injector installed the read may fail transiently
    /// ([`StorageError::IoFault`]; the page is intact, a retry may
    /// succeed) or return a copy with one bit flipped while the stored
    /// page stays clean.
    ///
    /// # Errors
    ///
    /// [`StorageError::PageOutOfBounds`] for unallocated ids,
    /// [`StorageError::IoFault`] for injected device failures.
    pub fn read(&self, id: PageId) -> Result<Arc<[u8]>, StorageError> {
        let page = self
            .pages
            .get(usize::try_from(id.0).unwrap_or(usize::MAX))
            .ok_or(StorageError::PageOutOfBounds { page: id.0, allocated: self.page_count() })?;
        let fault = match &self.faults {
            Some(f) => f.lock().on_read(),
            None => ReadFault::None,
        };
        match fault {
            ReadFault::None => {
                self.physical_reads.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::clone(page))
            }
            // Failed reads do not count as physical IO: the transfer
            // never completed.
            ReadFault::Error => Err(StorageError::IoFault { op: "read", page: id.0, attempts: 1 }),
            ReadFault::BitFlip { byte, bit } => {
                self.physical_reads.fetch_add(1, Ordering::Relaxed);
                let mut copy = page.to_vec();
                if !copy.is_empty() {
                    let idx = byte % copy.len();
                    copy[idx] ^= 1 << (bit % 8);
                }
                Ok(copy.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn alloc_assigns_sequential_ids() {
        let mut d = DiskSim::new();
        assert_eq!(d.alloc(page_of(1)), PageId(0));
        assert_eq!(d.alloc(page_of(2)), PageId(1));
        assert_eq!(d.page_count(), 2);
    }

    #[test]
    fn read_returns_stored_bytes_and_counts() {
        let mut d = DiskSim::new();
        let id = d.alloc(page_of(7));
        assert_eq!(d.physical_reads(), 0);
        let p = d.read(id).unwrap();
        assert_eq!(p[0], 7);
        assert_eq!(p.len(), PAGE_SIZE);
        assert_eq!(d.physical_reads(), 1);
        d.read(id).unwrap();
        assert_eq!(d.physical_reads(), 2);
    }

    #[test]
    fn out_of_bounds_read_fails_without_counting() {
        let d = DiskSim::new();
        assert!(matches!(
            d.read(PageId(0)),
            Err(StorageError::PageOutOfBounds { page: 0, allocated: 0 })
        ));
        assert_eq!(d.physical_reads(), 0);
    }

    #[test]
    #[should_panic(expected = "PAGE_SIZE")]
    fn wrong_sized_page_panics() {
        DiskSim::new().alloc(vec![0u8; 100]);
    }

    #[test]
    fn try_alloc_rejects_wrong_sizes_without_panicking() {
        let mut d = DiskSim::new();
        assert!(matches!(d.try_alloc(vec![0u8; 100]), Err(StorageError::InvalidConfig { .. })));
        assert_eq!(d.try_alloc(page_of(3)).unwrap(), PageId(0));
    }

    #[test]
    fn write_overwrites_in_place() {
        let mut d = DiskSim::new();
        let id = d.alloc(page_of(1));
        d.write(id, &page_of(9)).unwrap();
        assert_eq!(d.read(id).unwrap()[0], 9);
        assert!(matches!(
            d.write(PageId(5), &page_of(0)),
            Err(StorageError::PageOutOfBounds { .. })
        ));
        assert!(matches!(d.write(id, &[0u8; 10]), Err(StorageError::InvalidConfig { .. })));
    }

    #[test]
    fn injected_read_errors_are_transient() {
        use crate::fault::{FaultConfig, FaultInjector};
        let mut d = DiskSim::new();
        let id = d.alloc(page_of(7));
        let config = FaultConfig { seed: 3, read_error_rate: 0.5, ..FaultConfig::none() };
        d.set_fault_injector(FaultInjector::new(config).unwrap());
        let mut errors = 0;
        for _ in 0..200 {
            match d.read(id) {
                Ok(p) => assert_eq!(p[0], 7),
                Err(StorageError::IoFault { op: "read", page: 0, attempts: 1 }) => errors += 1,
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(errors > 0, "0.5 rate never fired in 200 reads");
        assert_eq!(d.fault_stats().unwrap().read_errors, errors);
        // Faulty reads never counted as physical IO.
        assert_eq!(d.physical_reads(), 200 - errors);
        d.clear_fault_injector();
        assert!(d.fault_stats().is_none());
        for _ in 0..50 {
            d.read(id).unwrap();
        }
    }

    #[test]
    fn bit_flips_corrupt_the_copy_not_the_page() {
        use crate::fault::{FaultConfig, FaultInjector};
        let mut d = DiskSim::new();
        let id = d.alloc(page_of(0));
        let config = FaultConfig { seed: 11, bit_flip_rate: 1.0, ..FaultConfig::none() };
        d.set_fault_injector(FaultInjector::new(config).unwrap());
        let corrupted = d.read(id).unwrap();
        assert_eq!(corrupted.iter().filter(|&&b| b != 0).count(), 1, "exactly one byte flipped");
        d.clear_fault_injector();
        // The stored page was never touched.
        assert!(d.read(id).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn torn_writes_persist_a_prefix_and_report() {
        use crate::fault::{FaultConfig, FaultInjector};
        let mut d = DiskSim::new();
        let id = d.alloc(page_of(1));
        let config = FaultConfig { seed: 5, torn_write_rate: 1.0, ..FaultConfig::none() };
        d.set_fault_injector(FaultInjector::new(config).unwrap());
        assert!(matches!(d.write(id, &page_of(9)), Err(StorageError::IoFault { op: "write", .. })));
        d.clear_fault_injector();
        let page = d.read(id).unwrap();
        // The page is a prefix of the new image followed by old bytes.
        let split = page.iter().position(|&b| b == 1).unwrap_or(PAGE_SIZE);
        assert!(page[..split].iter().all(|&b| b == 9));
        assert!(page[split..].iter().all(|&b| b == 1));
        // A clean retry rewrites the full page.
        d.write(id, &page_of(9)).unwrap();
        assert!(d.read(id).unwrap().iter().all(|&b| b == 9));
    }
}
