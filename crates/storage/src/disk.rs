//! The simulated disk: a flat array of pages with physical-IO accounting.

use crate::error::StorageError;
use crate::page::{PageId, PAGE_SIZE};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A disk of fixed-size pages kept in memory, counting every physical read
/// — the denominator of the experiments' IO-cost measurements.
///
/// Pages are shared as `Arc<[u8]>` so the buffer pool can cache them
/// without copying.
#[derive(Debug, Default)]
pub struct DiskSim {
    pages: Vec<Arc<[u8]>>,
    physical_reads: AtomicU64,
}

impl DiskSim {
    /// An empty disk.
    #[must_use]
    pub fn new() -> Self {
        DiskSim::default()
    }

    /// Number of allocated pages.
    #[must_use]
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Total physical reads since construction.
    #[must_use]
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads.load(Ordering::Relaxed)
    }

    /// Appends a page image and returns its id.
    ///
    /// # Panics
    ///
    /// Panics when `data` is not exactly [`PAGE_SIZE`] bytes — pages are
    /// produced by [`crate::SlottedPage::encode`], which always pads.
    pub fn alloc(&mut self, data: Vec<u8>) -> PageId {
        assert_eq!(data.len(), PAGE_SIZE, "pages are exactly PAGE_SIZE bytes");
        let id = PageId(self.pages.len() as u64);
        self.pages.push(data.into());
        id
    }

    /// Reads a page from "disk", incrementing the physical-read counter.
    ///
    /// # Errors
    ///
    /// [`StorageError::PageOutOfBounds`] for unallocated ids.
    pub fn read(&self, id: PageId) -> Result<Arc<[u8]>, StorageError> {
        let page = self
            .pages
            .get(usize::try_from(id.0).unwrap_or(usize::MAX))
            .ok_or(StorageError::PageOutOfBounds { page: id.0, allocated: self.page_count() })?;
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::clone(page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn alloc_assigns_sequential_ids() {
        let mut d = DiskSim::new();
        assert_eq!(d.alloc(page_of(1)), PageId(0));
        assert_eq!(d.alloc(page_of(2)), PageId(1));
        assert_eq!(d.page_count(), 2);
    }

    #[test]
    fn read_returns_stored_bytes_and_counts() {
        let mut d = DiskSim::new();
        let id = d.alloc(page_of(7));
        assert_eq!(d.physical_reads(), 0);
        let p = d.read(id).unwrap();
        assert_eq!(p[0], 7);
        assert_eq!(p.len(), PAGE_SIZE);
        assert_eq!(d.physical_reads(), 1);
        d.read(id).unwrap();
        assert_eq!(d.physical_reads(), 2);
    }

    #[test]
    fn out_of_bounds_read_fails_without_counting() {
        let d = DiskSim::new();
        assert!(matches!(
            d.read(PageId(0)),
            Err(StorageError::PageOutOfBounds { page: 0, allocated: 0 })
        ));
        assert_eq!(d.physical_reads(), 0);
    }

    #[test]
    #[should_panic(expected = "PAGE_SIZE")]
    fn wrong_sized_page_panics() {
        DiskSim::new().alloc(vec![0u8; 100]);
    }
}
