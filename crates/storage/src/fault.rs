//! Deterministic storage fault injection.
//!
//! The experiments treat the storage substrate as reliable; real devices
//! are not. This module injects the classic failure taxonomy into
//! [`DiskSim`](crate::DiskSim) so the layers above can be tested against
//! it:
//!
//! * **read errors** — the device refuses a read
//!   ([`StorageError::IoFault`], transient: a retry may succeed);
//! * **write errors** — the device refuses a write, leaving the old page
//!   intact;
//! * **torn writes** — a write is interrupted after persisting only a
//!   prefix of the new image (the rest of the page keeps its old bytes)
//!   and the device reports the failure, as after a power cut;
//! * **bit flips** — a read *succeeds* but the returned copy has one bit
//!   flipped (bus/DMA corruption; the stored page is intact, so a retry
//!   returns clean bytes).
//!
//! Faults are drawn from a seed-driven [SplitMix64] generator, so a fault
//! schedule is a pure function of `(seed, operation sequence)`: the same
//! test run sees the same faults every time, on every platform. The
//! injector never panics and never fabricates out-of-bounds state — it
//! only perturbs operations the disk would otherwise perform.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use crate::error::StorageError;

/// Probabilities of each fault class, applied per operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic fault schedule.
    pub seed: u64,
    /// Probability a physical read fails with [`StorageError::IoFault`].
    pub read_error_rate: f64,
    /// Probability a write fails, leaving the page untouched.
    pub write_error_rate: f64,
    /// Probability a write tears: a prefix persists, the write errors.
    pub torn_write_rate: f64,
    /// Probability a successful read returns a copy with one flipped bit.
    pub bit_flip_rate: f64,
    /// Probability an fsync fails (data written but durability unknown; a
    /// retry may succeed). Consulted by [`FaultInjector::on_sync`].
    pub sync_error_rate: f64,
    /// Probability an atomic rename fails, leaving both names as they
    /// were. Consulted by [`FaultInjector::on_rename`].
    pub rename_error_rate: f64,
}

impl FaultConfig {
    /// A schedule that injects nothing (rates all zero).
    #[must_use]
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            read_error_rate: 0.0,
            write_error_rate: 0.0,
            torn_write_rate: 0.0,
            bit_flip_rate: 0.0,
            sync_error_rate: 0.0,
            rename_error_rate: 0.0,
        }
    }

    /// A uniform schedule: every fault class at `rate`, from `seed`.
    #[must_use]
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            read_error_rate: rate,
            write_error_rate: rate,
            torn_write_rate: rate,
            bit_flip_rate: rate,
            sync_error_rate: rate,
            rename_error_rate: rate,
        }
    }

    /// Validates that every rate is a probability.
    ///
    /// # Errors
    ///
    /// [`StorageError::InvalidConfig`] when any rate is outside `[0, 1]`
    /// or not finite.
    pub fn validate(&self) -> Result<(), StorageError> {
        let rates = [
            self.read_error_rate,
            self.write_error_rate,
            self.torn_write_rate,
            self.bit_flip_rate,
            self.sync_error_rate,
            self.rename_error_rate,
        ];
        if rates.iter().any(|r| !r.is_finite() || !(0.0..=1.0).contains(r)) {
            return Err(StorageError::InvalidConfig {
                reason: "fault rates must be probabilities in [0, 1]",
            });
        }
        Ok(())
    }
}

/// Counts of injected faults, by class, plus the operations screened.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Physical reads the injector screened.
    pub reads_seen: u64,
    /// Writes the injector screened.
    pub writes_seen: u64,
    /// Reads failed with an injected error.
    pub read_errors: u64,
    /// Writes failed cleanly (old page intact).
    pub write_errors: u64,
    /// Writes torn (prefix persisted, error reported).
    pub torn_writes: u64,
    /// Reads that returned a bit-flipped copy.
    pub bit_flips: u64,
    /// Fsyncs the injector screened.
    pub syncs_seen: u64,
    /// Fsyncs failed with an injected error.
    pub sync_errors: u64,
    /// Renames the injector screened.
    pub renames_seen: u64,
    /// Renames failed with an injected error.
    pub rename_errors: u64,
}

/// What the injector decided for one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// Read proceeds untouched.
    None,
    /// Read fails with [`StorageError::IoFault`].
    Error,
    /// Read succeeds but the copy has this bit of this byte flipped
    /// (indices taken modulo the page length by the applier).
    BitFlip {
        /// Byte offset to corrupt.
        byte: usize,
        /// Bit within the byte, `0..8`.
        bit: u8,
    },
}

/// What the injector decided for one write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Write proceeds untouched.
    None,
    /// Write fails; the old page remains intact.
    Error,
    /// Write tears after `keep` bytes of the new image (taken modulo the
    /// page length by the applier); the device reports failure.
    Torn {
        /// New-image bytes that reached the platter.
        keep: usize,
    },
}

/// What the injector decided for one metadata operation (fsync, rename).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaFault {
    /// Operation proceeds untouched.
    None,
    /// Operation fails with [`StorageError::IoFault`]; on-disk state is
    /// unchanged and a retry may succeed.
    Error,
}

/// Seed-driven fault source for [`DiskSim`](crate::DiskSim).
///
/// Construct with [`FaultInjector::new`], install with
/// [`DiskSim::set_fault_injector`](crate::DiskSim::set_fault_injector).
///
/// Decisions consume the generator in a fixed order (fault class, then
/// position draws), so schedules are reproducible run-to-run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    state: u64,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector from a validated configuration.
    ///
    /// # Errors
    ///
    /// [`StorageError::InvalidConfig`] when a rate is not a probability.
    pub fn new(config: FaultConfig) -> Result<Self, StorageError> {
        config.validate()?;
        Ok(FaultInjector { config, state: config.seed, stats: FaultStats::default() })
    }

    /// The installed configuration.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Fault counts so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// SplitMix64 step: the full-period 64-bit mixer.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Decides the fate of one read.
    pub fn on_read(&mut self) -> ReadFault {
        self.stats.reads_seen += 1;
        // One draw picks the class: [0, err) -> error, [err, err+flip) ->
        // bit flip. Disjoint intervals keep the classes mutually
        // exclusive per operation.
        let draw = self.next_f64();
        if draw < self.config.read_error_rate {
            self.stats.read_errors += 1;
            return ReadFault::Error;
        }
        if draw < self.config.read_error_rate + self.config.bit_flip_rate {
            self.stats.bit_flips += 1;
            let byte = usize::try_from(self.next_u64() % u64::from(u32::MAX)).unwrap_or(0);
            let bit = (self.next_u64() % 8) as u8;
            return ReadFault::BitFlip { byte, bit };
        }
        ReadFault::None
    }

    /// Decides the fate of one write of `len` bytes.
    pub fn on_write(&mut self, len: usize) -> WriteFault {
        self.stats.writes_seen += 1;
        let draw = self.next_f64();
        if draw < self.config.write_error_rate {
            self.stats.write_errors += 1;
            return WriteFault::Error;
        }
        if draw < self.config.write_error_rate + self.config.torn_write_rate {
            self.stats.torn_writes += 1;
            let keep =
                if len == 0 { 0 } else { usize::try_from(self.next_u64()).unwrap_or(0) % len };
            return WriteFault::Torn { keep };
        }
        WriteFault::None
    }

    /// Decides the fate of one fsync. An injected failure is transient:
    /// the written bytes are intact but not known durable, so the caller
    /// may retry the sync.
    pub fn on_sync(&mut self) -> MetaFault {
        self.stats.syncs_seen += 1;
        if self.next_f64() < self.config.sync_error_rate {
            self.stats.sync_errors += 1;
            return MetaFault::Error;
        }
        MetaFault::None
    }

    /// Decides the fate of one atomic rename. An injected failure leaves
    /// both names exactly as they were, so the caller may retry.
    pub fn on_rename(&mut self) -> MetaFault {
        self.stats.renames_seen += 1;
        if self.next_f64() < self.config.rename_error_rate {
            self.stats.rename_errors += 1;
            return MetaFault::Error;
        }
        MetaFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_validated() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let config = FaultConfig { read_error_rate: bad, ..FaultConfig::none() };
            assert!(FaultInjector::new(config).is_err(), "accepted rate {bad}");
        }
        assert!(FaultInjector::new(FaultConfig::none()).is_ok());
        assert!(FaultInjector::new(FaultConfig::uniform(1, 1.0)).is_ok());
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let mut inj = FaultInjector::new(FaultConfig::none()).unwrap();
        for _ in 0..1000 {
            assert_eq!(inj.on_read(), ReadFault::None);
            assert_eq!(inj.on_write(4096), WriteFault::None);
            assert_eq!(inj.on_sync(), MetaFault::None);
            assert_eq!(inj.on_rename(), MetaFault::None);
        }
        let s = inj.stats();
        assert_eq!(s.reads_seen, 1000);
        assert_eq!(s.writes_seen, 1000);
        assert_eq!(s.syncs_seen, 1000);
        assert_eq!(s.renames_seen, 1000);
        assert_eq!(
            s.read_errors
                + s.bit_flips
                + s.write_errors
                + s.torn_writes
                + s.sync_errors
                + s.rename_errors,
            0
        );
    }

    #[test]
    fn schedules_are_deterministic() {
        let config = FaultConfig::uniform(42, 0.3);
        let mut a = FaultInjector::new(config).unwrap();
        let mut b = FaultInjector::new(config).unwrap();
        for _ in 0..500 {
            assert_eq!(a.on_read(), b.on_read());
            assert_eq!(a.on_write(4096), b.on_write(4096));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mut a = FaultInjector::new(FaultConfig::uniform(1, 0.5)).unwrap();
        let mut b = FaultInjector::new(FaultConfig::uniform(2, 0.5)).unwrap();
        let same = (0..200).filter(|_| a.on_read() == b.on_read()).count();
        assert!(same < 200, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let config = FaultConfig {
            seed: 7,
            read_error_rate: 0.1,
            bit_flip_rate: 0.1,
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(config).unwrap();
        for _ in 0..10_000 {
            inj.on_read();
        }
        let s = inj.stats();
        // 10 % ± generous slack on 10k draws.
        assert!((700..1300).contains(&s.read_errors), "read errors: {}", s.read_errors);
        assert!((700..1300).contains(&s.bit_flips), "bit flips: {}", s.bit_flips);
    }

    #[test]
    fn torn_writes_keep_a_strict_prefix() {
        let config = FaultConfig { torn_write_rate: 1.0, ..FaultConfig::none() };
        let mut inj = FaultInjector::new(config).unwrap();
        for _ in 0..100 {
            match inj.on_write(4096) {
                WriteFault::Torn { keep } => assert!(keep < 4096),
                other => panic!("expected torn write, got {other:?}"),
            }
        }
        assert_eq!(inj.on_write(0), WriteFault::Torn { keep: 0 });
    }

    #[test]
    fn sync_and_rename_rates_are_honored() {
        let config = FaultConfig {
            seed: 11,
            sync_error_rate: 0.2,
            rename_error_rate: 0.2,
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(config).unwrap();
        for _ in 0..10_000 {
            inj.on_sync();
            inj.on_rename();
        }
        let s = inj.stats();
        assert!((1500..2500).contains(&s.sync_errors), "sync errors: {}", s.sync_errors);
        assert!((1500..2500).contains(&s.rename_errors), "rename errors: {}", s.rename_errors);

        let mut all = FaultInjector::new(FaultConfig::uniform(3, 1.0)).unwrap();
        assert_eq!(all.on_sync(), MetaFault::Error);
        assert_eq!(all.on_rename(), MetaFault::Error);
    }
}
