//! The LRU buffer pool.
//!
//! A UDF's disk-IO cost in the experiments is the number of buffer-pool
//! *misses* its execution causes. Because a miss depends on everything the
//! pool served earlier, repeated executions at the same query point see
//! different IO costs — the buffer-cache "noise" that the paper's
//! Experiment 3 studies and that motivates the `β` prediction parameter.
//!
//! The eviction structure is a textbook O(1) LRU: a slot arena forming a
//! doubly-linked recency list plus a page-id → slot map. Interior
//! mutability (a `parking_lot::Mutex`) lets many readers share the pool —
//! mirroring a DBMS buffer manager, and the reason this workspace pulls
//! `parking_lot` in.

use crate::disk::DiskSim;
use crate::error::StorageError;
use crate::page::PageId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Snapshot of buffer-pool traffic counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStats {
    /// Page requests served (hits + misses).
    pub logical_reads: u64,
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to touch the disk — the experiments' IO cost.
    pub misses: u64,
}

impl IoStats {
    /// Traffic between an `earlier` snapshot and this one — the IO cost of
    /// whatever ran in between.
    #[must_use]
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads - earlier.logical_reads,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }

    /// Hit ratio in `[0, 1]`; `None` before any traffic.
    #[must_use]
    pub fn hit_ratio(&self) -> Option<f64> {
        (self.logical_reads > 0).then(|| self.hits as f64 / self.logical_reads as f64)
    }
}

/// Bounded retry-with-backoff for transient disk faults.
///
/// A read that fails with [`StorageError::IoFault`] is retried up to
/// `max_attempts` times total, sleeping `base_delay × 2^(attempt−1)`
/// between attempts. The default backs off 3 attempts with zero delay —
/// pure retry, deterministic test time — since [`crate::DiskSim`]
/// faults are schedule-driven, not time-driven. Permanent errors
/// (out-of-bounds pages) are never retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per read, including the first (min 1).
    pub max_attempts: u32,
    /// Base backoff delay, doubled after each failed attempt.
    pub base_delay: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, base_delay: std::time::Duration::ZERO }
    }
}

/// Counters for the pool's retry machinery.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RetryStats {
    /// Extra disk attempts made beyond the first, across all reads.
    pub retries: u64,
    /// Reads that failed every attempt and surfaced an error.
    pub exhausted: u64,
    /// Reads rescued by a retry after at least one failed attempt.
    pub recovered: u64,
}

const NIL: usize = usize::MAX;

struct Slot {
    id: PageId,
    data: Arc<[u8]>,
    prev: usize,
    next: usize,
}

/// LRU state guarded by the pool's mutex.
struct Lru {
    slots: Vec<Slot>,
    map: HashMap<PageId, usize>,
    head: usize, // most recent
    tail: usize, // least recent
    stats: IoStats,
}

impl Lru {
    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// An LRU page cache in front of a [`DiskSim`].
pub struct BufferPool {
    disk: DiskSim,
    capacity: usize,
    retry: RetryPolicy,
    retry_stats: Mutex<RetryStats>,
    lru: Mutex<Lru>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl BufferPool {
    /// Wraps `disk` with a cache of `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`. Use [`BufferPool::try_new`] for a
    /// non-panicking variant.
    #[must_use]
    pub fn new(disk: DiskSim, capacity: usize) -> Self {
        match BufferPool::try_new(disk, capacity) {
            Ok(pool) => pool,
            Err(e) => panic!("buffer pool needs at least one frame: {e}"),
        }
    }

    /// Wraps `disk` with a cache of `capacity` pages.
    ///
    /// # Errors
    ///
    /// [`StorageError::InvalidConfig`] when `capacity == 0`.
    pub fn try_new(disk: DiskSim, capacity: usize) -> Result<Self, StorageError> {
        if capacity == 0 {
            return Err(StorageError::InvalidConfig {
                reason: "buffer pool needs at least one frame",
            });
        }
        Ok(BufferPool {
            disk,
            capacity,
            retry: RetryPolicy::default(),
            retry_stats: Mutex::new(RetryStats::default()),
            lru: Mutex::new(Lru {
                slots: Vec::new(),
                map: HashMap::new(),
                head: NIL,
                tail: NIL,
                stats: IoStats::default(),
            }),
        })
    }

    /// Sets the retry policy for transient disk faults.
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = RetryPolicy { max_attempts: policy.max_attempts.max(1), ..policy };
        self
    }

    /// The active retry policy.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Retry counters so far.
    #[must_use]
    pub fn retry_stats(&self) -> RetryStats {
        *self.retry_stats.lock()
    }

    /// Cache capacity in pages.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The underlying disk (for dataset loading and physical-read totals).
    #[must_use]
    pub fn disk(&self) -> &DiskSim {
        &self.disk
    }

    /// Mutable access to the disk for bulk loading. Loading does not go
    /// through the cache.
    pub fn disk_mut(&mut self) -> &mut DiskSim {
        &mut self.disk
    }

    /// Fetches a page from disk, absorbing transient [`StorageError::IoFault`]s
    /// with the pool's bounded retry-with-backoff. Permanent errors
    /// propagate immediately; exhausted retries surface an `IoFault`
    /// carrying the total attempt count.
    fn read_with_retry(&self, id: PageId) -> Result<Arc<[u8]>, StorageError> {
        let mut attempt = 1;
        loop {
            match self.disk.read(id) {
                Ok(data) => {
                    if attempt > 1 {
                        self.retry_stats.lock().recovered += 1;
                    }
                    return Ok(data);
                }
                Err(StorageError::IoFault { op, page, .. }) => {
                    if attempt >= self.retry.max_attempts {
                        self.retry_stats.lock().exhausted += 1;
                        return Err(StorageError::IoFault { op, page, attempts: attempt });
                    }
                    if !self.retry.base_delay.is_zero() {
                        std::thread::sleep(self.retry.base_delay * (1 << (attempt - 1).min(16)));
                    }
                    self.retry_stats.lock().retries += 1;
                    attempt += 1;
                }
                Err(permanent) => return Err(permanent),
            }
        }
    }

    /// Reads a page, serving from cache when possible.
    ///
    /// Disk-level transient faults are retried per the pool's
    /// [`RetryPolicy`]; see [`BufferPool::retry_stats`] for how often
    /// that machinery fired.
    ///
    /// # Errors
    ///
    /// [`StorageError::PageOutOfBounds`] for unallocated pages and
    /// [`StorageError::IoFault`] when retries are exhausted (errors are
    /// not cached and count as neither hit nor miss).
    pub fn read(&self, id: PageId) -> Result<Arc<[u8]>, StorageError> {
        let mut lru = self.lru.lock();
        if let Some(&slot) = lru.map.get(&id) {
            lru.stats.logical_reads += 1;
            lru.stats.hits += 1;
            lru.detach(slot);
            lru.push_front(slot);
            return Ok(Arc::clone(&lru.slots[slot].data));
        }
        // Miss: fetch from disk (may fail; fail before touching state).
        let data = self.read_with_retry(id)?;
        lru.stats.logical_reads += 1;
        lru.stats.misses += 1;
        let slot = if lru.slots.len() < self.capacity {
            lru.slots.push(Slot { id, data: Arc::clone(&data), prev: NIL, next: NIL });
            lru.slots.len() - 1
        } else {
            // Evict the least-recently-used page and reuse its slot.
            let victim = lru.tail;
            lru.detach(victim);
            let old = lru.slots[victim].id;
            lru.map.remove(&old);
            lru.slots[victim].id = id;
            lru.slots[victim].data = Arc::clone(&data);
            victim
        };
        lru.map.insert(id, slot);
        lru.push_front(slot);
        Ok(data)
    }

    /// Current traffic counters.
    #[must_use]
    pub fn stats(&self) -> IoStats {
        self.lru.lock().stats
    }

    /// Mirrors the pool's cumulative counters into `registry` under
    /// `mlq_storage_*`. Counters are exported with
    /// [`record_total`](mlq_obs::Counter::record_total), so exporting
    /// repeatedly (or from several quiesce points) is idempotent and never
    /// double-counts.
    pub fn export_metrics(&self, registry: &mlq_obs::Registry) {
        let io = self.stats();
        registry.counter("mlq_storage_pool_reads").record_total(io.logical_reads);
        registry.counter("mlq_storage_pool_hits").record_total(io.hits);
        registry.counter("mlq_storage_pool_misses").record_total(io.misses);
        if let Some(ratio) = io.hit_ratio() {
            registry.gauge("mlq_storage_pool_hit_ratio").set(ratio);
        }
        let retry = self.retry_stats();
        registry.counter("mlq_storage_retry_attempts").record_total(retry.retries);
        registry.counter("mlq_storage_retry_exhausted").record_total(retry.exhausted);
        registry.counter("mlq_storage_retry_recovered").record_total(retry.recovered);
    }

    /// Empties the cache (cold-start) without resetting counters.
    pub fn clear(&self) {
        let mut lru = self.lru.lock();
        lru.slots.clear();
        lru.map.clear();
        lru.head = NIL;
        lru.tail = NIL;
    }

    /// Number of pages currently cached.
    #[must_use]
    pub fn cached_pages(&self) -> usize {
        self.lru.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    fn pool(pages: u8, capacity: usize) -> BufferPool {
        let mut disk = DiskSim::new();
        for i in 0..pages {
            disk.alloc(vec![i; PAGE_SIZE]);
        }
        BufferPool::new(disk, capacity)
    }

    #[test]
    fn hit_after_miss() {
        let p = pool(2, 2);
        p.read(PageId(0)).unwrap();
        p.read(PageId(0)).unwrap();
        let s = p.stats();
        assert_eq!(s, IoStats { logical_reads: 2, hits: 1, misses: 1 });
        assert_eq!(s.hit_ratio(), Some(0.5));
    }

    #[test]
    fn returns_correct_page_content() {
        let p = pool(3, 2);
        assert_eq!(p.read(PageId(2)).unwrap()[0], 2);
        assert_eq!(p.read(PageId(0)).unwrap()[0], 0);
        // Cached copy is identical.
        assert_eq!(p.read(PageId(2)).unwrap()[0], 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let p = pool(3, 2);
        p.read(PageId(0)).unwrap(); // cache: [0]
        p.read(PageId(1)).unwrap(); // cache: [1, 0]
        p.read(PageId(0)).unwrap(); // cache: [0, 1] (hit)
        p.read(PageId(2)).unwrap(); // evicts 1 -> cache: [2, 0]
        assert_eq!(p.stats().misses, 3);
        p.read(PageId(0)).unwrap(); // hit
        assert_eq!(p.stats().hits, 2);
        p.read(PageId(1)).unwrap(); // miss again (was evicted)
        assert_eq!(p.stats().misses, 4);
        assert_eq!(p.cached_pages(), 2);
    }

    #[test]
    fn capacity_one_pool_thrashes() {
        let p = pool(2, 1);
        for _ in 0..3 {
            p.read(PageId(0)).unwrap();
            p.read(PageId(1)).unwrap();
        }
        assert_eq!(p.stats().misses, 6);
        assert_eq!(p.stats().hits, 0);
    }

    #[test]
    fn repeated_scans_within_capacity_hit() {
        let p = pool(4, 4);
        for _ in 0..3 {
            for i in 0..4 {
                p.read(PageId(i)).unwrap();
            }
        }
        let s = p.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 8);
    }

    #[test]
    fn stats_since_isolates_a_window() {
        let p = pool(4, 4);
        p.read(PageId(0)).unwrap();
        let before = p.stats();
        p.read(PageId(0)).unwrap(); // hit
        p.read(PageId(1)).unwrap(); // miss
        let cost = p.stats().since(&before);
        assert_eq!(cost, IoStats { logical_reads: 2, hits: 1, misses: 1 });
    }

    #[test]
    fn clear_forces_cold_cache() {
        let p = pool(2, 2);
        p.read(PageId(0)).unwrap();
        p.clear();
        assert_eq!(p.cached_pages(), 0);
        p.read(PageId(0)).unwrap();
        assert_eq!(p.stats().misses, 2);
    }

    #[test]
    fn out_of_bounds_read_does_not_poison_pool() {
        let p = pool(1, 1);
        assert!(p.read(PageId(9)).is_err());
        assert_eq!(p.stats(), IoStats::default());
        assert_eq!(p.read(PageId(0)).unwrap()[0], 0);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        let _ = BufferPool::new(DiskSim::new(), 0);
    }

    #[test]
    fn try_new_rejects_zero_capacity() {
        assert!(matches!(
            BufferPool::try_new(DiskSim::new(), 0),
            Err(StorageError::InvalidConfig { .. })
        ));
        assert_eq!(BufferPool::try_new(DiskSim::new(), 4).unwrap().capacity(), 4);
    }

    fn faulty_pool(pages: u8, capacity: usize, seed: u64, rate: f64) -> BufferPool {
        use crate::fault::{FaultConfig, FaultInjector};
        let mut disk = DiskSim::new();
        for i in 0..pages {
            disk.alloc(vec![i; PAGE_SIZE]);
        }
        let config = FaultConfig { seed, read_error_rate: rate, ..FaultConfig::none() };
        disk.set_fault_injector(FaultInjector::new(config).unwrap());
        BufferPool::new(disk, capacity)
    }

    #[test]
    fn transient_faults_are_retried_away() {
        // 30 % read-error rate, 8 attempts: per-read failure odds are
        // 0.3^8 ≈ 0.0066 %, so all 200 cold reads succeed with
        // probability ≈ 99.99 %.
        let p = faulty_pool(4, 1, 99, 0.3)
            .with_retry_policy(RetryPolicy { max_attempts: 8, ..RetryPolicy::default() });
        for round in 0..50 {
            for i in 0..4 {
                let page = p.read(PageId(i)).unwrap();
                assert_eq!(page[0], i as u8, "round {round}");
            }
        }
        let rs = p.retry_stats();
        assert!(rs.retries > 0, "0.3 fault rate never fired");
        assert!(rs.recovered > 0);
        assert_eq!(rs.exhausted, 0);
    }

    #[test]
    fn exhausted_retries_surface_with_attempt_count() {
        use crate::fault::{FaultConfig, FaultInjector};
        let mut disk = DiskSim::new();
        disk.alloc(vec![1; PAGE_SIZE]);
        let config = FaultConfig { seed: 1, read_error_rate: 1.0, ..FaultConfig::none() };
        disk.set_fault_injector(FaultInjector::new(config).unwrap());
        let p = BufferPool::new(disk, 1)
            .with_retry_policy(RetryPolicy { max_attempts: 3, ..RetryPolicy::default() });
        match p.read(PageId(0)) {
            Err(StorageError::IoFault { op: "read", page: 0, attempts: 3 }) => {}
            other => panic!("expected exhausted IoFault, got {other:?}"),
        }
        assert_eq!(p.retry_stats().exhausted, 1);
        // The failed read polluted neither the cache nor the hit/miss split.
        assert_eq!(p.stats(), IoStats::default());
        assert_eq!(p.cached_pages(), 0);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let p = faulty_pool(1, 1, 1, 1.0)
            .with_retry_policy(RetryPolicy { max_attempts: 10, ..RetryPolicy::default() });
        assert!(matches!(p.read(PageId(9)), Err(StorageError::PageOutOfBounds { .. })));
        assert_eq!(p.retry_stats().retries, 0);
    }

    #[test]
    fn cache_hits_bypass_the_faulty_disk() {
        // Retry until page 0 is cached, then a 100 %-error disk is
        // irrelevant: hits never touch it.
        let p = faulty_pool(1, 1, 7, 0.5)
            .with_retry_policy(RetryPolicy { max_attempts: 20, ..RetryPolicy::default() });
        p.read(PageId(0)).unwrap();
        for _ in 0..100 {
            p.read(PageId(0)).unwrap();
        }
        assert_eq!(p.stats().hits, 100);
    }
}
