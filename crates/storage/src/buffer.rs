//! The LRU buffer pool.
//!
//! A UDF's disk-IO cost in the experiments is the number of buffer-pool
//! *misses* its execution causes. Because a miss depends on everything the
//! pool served earlier, repeated executions at the same query point see
//! different IO costs — the buffer-cache "noise" that the paper's
//! Experiment 3 studies and that motivates the `β` prediction parameter.
//!
//! The eviction structure is a textbook O(1) LRU: a slot arena forming a
//! doubly-linked recency list plus a page-id → slot map. Interior
//! mutability (a `parking_lot::Mutex`) lets many readers share the pool —
//! mirroring a DBMS buffer manager, and the reason this workspace pulls
//! `parking_lot` in.

use crate::disk::DiskSim;
use crate::error::StorageError;
use crate::page::PageId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Snapshot of buffer-pool traffic counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStats {
    /// Page requests served (hits + misses).
    pub logical_reads: u64,
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to touch the disk — the experiments' IO cost.
    pub misses: u64,
}

impl IoStats {
    /// Traffic between an `earlier` snapshot and this one — the IO cost of
    /// whatever ran in between.
    #[must_use]
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads - earlier.logical_reads,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }

    /// Hit ratio in `[0, 1]`; `None` before any traffic.
    #[must_use]
    pub fn hit_ratio(&self) -> Option<f64> {
        (self.logical_reads > 0).then(|| self.hits as f64 / self.logical_reads as f64)
    }
}

const NIL: usize = usize::MAX;

struct Slot {
    id: PageId,
    data: Arc<[u8]>,
    prev: usize,
    next: usize,
}

/// LRU state guarded by the pool's mutex.
struct Lru {
    slots: Vec<Slot>,
    map: HashMap<PageId, usize>,
    head: usize, // most recent
    tail: usize, // least recent
    stats: IoStats,
}

impl Lru {
    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// An LRU page cache in front of a [`DiskSim`].
pub struct BufferPool {
    disk: DiskSim,
    capacity: usize,
    lru: Mutex<Lru>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl BufferPool {
    /// Wraps `disk` with a cache of `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(disk: DiskSim, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            capacity,
            lru: Mutex::new(Lru {
                slots: Vec::new(),
                map: HashMap::new(),
                head: NIL,
                tail: NIL,
                stats: IoStats::default(),
            }),
        }
    }

    /// Cache capacity in pages.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The underlying disk (for dataset loading and physical-read totals).
    #[must_use]
    pub fn disk(&self) -> &DiskSim {
        &self.disk
    }

    /// Mutable access to the disk for bulk loading. Loading does not go
    /// through the cache.
    pub fn disk_mut(&mut self) -> &mut DiskSim {
        &mut self.disk
    }

    /// Reads a page, serving from cache when possible.
    ///
    /// # Errors
    ///
    /// [`StorageError::PageOutOfBounds`] for unallocated pages (the error
    /// is not cached and counts as neither hit nor miss).
    pub fn read(&self, id: PageId) -> Result<Arc<[u8]>, StorageError> {
        let mut lru = self.lru.lock();
        if let Some(&slot) = lru.map.get(&id) {
            lru.stats.logical_reads += 1;
            lru.stats.hits += 1;
            lru.detach(slot);
            lru.push_front(slot);
            return Ok(Arc::clone(&lru.slots[slot].data));
        }
        // Miss: fetch from disk (may fail; fail before touching state).
        let data = self.disk.read(id)?;
        lru.stats.logical_reads += 1;
        lru.stats.misses += 1;
        let slot = if lru.slots.len() < self.capacity {
            lru.slots.push(Slot { id, data: Arc::clone(&data), prev: NIL, next: NIL });
            lru.slots.len() - 1
        } else {
            // Evict the least-recently-used page and reuse its slot.
            let victim = lru.tail;
            lru.detach(victim);
            let old = lru.slots[victim].id;
            lru.map.remove(&old);
            lru.slots[victim].id = id;
            lru.slots[victim].data = Arc::clone(&data);
            victim
        };
        lru.map.insert(id, slot);
        lru.push_front(slot);
        Ok(data)
    }

    /// Current traffic counters.
    #[must_use]
    pub fn stats(&self) -> IoStats {
        self.lru.lock().stats
    }

    /// Empties the cache (cold-start) without resetting counters.
    pub fn clear(&self) {
        let mut lru = self.lru.lock();
        lru.slots.clear();
        lru.map.clear();
        lru.head = NIL;
        lru.tail = NIL;
    }

    /// Number of pages currently cached.
    #[must_use]
    pub fn cached_pages(&self) -> usize {
        self.lru.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    fn pool(pages: u8, capacity: usize) -> BufferPool {
        let mut disk = DiskSim::new();
        for i in 0..pages {
            disk.alloc(vec![i; PAGE_SIZE]);
        }
        BufferPool::new(disk, capacity)
    }

    #[test]
    fn hit_after_miss() {
        let p = pool(2, 2);
        p.read(PageId(0)).unwrap();
        p.read(PageId(0)).unwrap();
        let s = p.stats();
        assert_eq!(s, IoStats { logical_reads: 2, hits: 1, misses: 1 });
        assert_eq!(s.hit_ratio(), Some(0.5));
    }

    #[test]
    fn returns_correct_page_content() {
        let p = pool(3, 2);
        assert_eq!(p.read(PageId(2)).unwrap()[0], 2);
        assert_eq!(p.read(PageId(0)).unwrap()[0], 0);
        // Cached copy is identical.
        assert_eq!(p.read(PageId(2)).unwrap()[0], 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let p = pool(3, 2);
        p.read(PageId(0)).unwrap(); // cache: [0]
        p.read(PageId(1)).unwrap(); // cache: [1, 0]
        p.read(PageId(0)).unwrap(); // cache: [0, 1] (hit)
        p.read(PageId(2)).unwrap(); // evicts 1 -> cache: [2, 0]
        assert_eq!(p.stats().misses, 3);
        p.read(PageId(0)).unwrap(); // hit
        assert_eq!(p.stats().hits, 2);
        p.read(PageId(1)).unwrap(); // miss again (was evicted)
        assert_eq!(p.stats().misses, 4);
        assert_eq!(p.cached_pages(), 2);
    }

    #[test]
    fn capacity_one_pool_thrashes() {
        let p = pool(2, 1);
        for _ in 0..3 {
            p.read(PageId(0)).unwrap();
            p.read(PageId(1)).unwrap();
        }
        assert_eq!(p.stats().misses, 6);
        assert_eq!(p.stats().hits, 0);
    }

    #[test]
    fn repeated_scans_within_capacity_hit() {
        let p = pool(4, 4);
        for _ in 0..3 {
            for i in 0..4 {
                p.read(PageId(i)).unwrap();
            }
        }
        let s = p.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 8);
    }

    #[test]
    fn stats_since_isolates_a_window() {
        let p = pool(4, 4);
        p.read(PageId(0)).unwrap();
        let before = p.stats();
        p.read(PageId(0)).unwrap(); // hit
        p.read(PageId(1)).unwrap(); // miss
        let cost = p.stats().since(&before);
        assert_eq!(cost, IoStats { logical_reads: 2, hits: 1, misses: 1 });
    }

    #[test]
    fn clear_forces_cold_cache() {
        let p = pool(2, 2);
        p.read(PageId(0)).unwrap();
        p.clear();
        assert_eq!(p.cached_pages(), 0);
        p.read(PageId(0)).unwrap();
        assert_eq!(p.stats().misses, 2);
    }

    #[test]
    fn out_of_bounds_read_does_not_poison_pool() {
        let p = pool(1, 1);
        assert!(p.read(PageId(9)).is_err());
        assert_eq!(p.stats(), IoStats::default());
        assert_eq!(p.read(PageId(0)).unwrap()[0], 0);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        let _ = BufferPool::new(DiskSim::new(), 0);
    }
}
