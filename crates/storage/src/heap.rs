//! Heap files: bulk-loaded sequences of records across slotted pages.

use crate::buffer::BufferPool;
use crate::disk::DiskSim;
use crate::error::StorageError;
use crate::page::{PageId, SlottedPage, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// Address of one record inside a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RecordId {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

/// Bulk loader: appends records, packing pages greedily, and writes them to
/// the simulated disk.
pub struct HeapFileBuilder<'d> {
    disk: &'d mut DiskSim,
    pages: Vec<PageId>,
    pending: Vec<Vec<u8>>,
    pending_payload: usize,
    records: u64,
}

impl<'d> HeapFileBuilder<'d> {
    /// Starts a new heap file on `disk`.
    pub fn new(disk: &'d mut DiskSim) -> Self {
        HeapFileBuilder {
            disk,
            pages: Vec::new(),
            pending: Vec::new(),
            pending_payload: 0,
            records: 0,
        }
    }

    /// Appends one record, returning its future address.
    ///
    /// # Errors
    ///
    /// [`StorageError::RecordTooLarge`] when the record cannot fit even an
    /// empty page.
    pub fn append(&mut self, record: &[u8]) -> Result<RecordId, StorageError> {
        if SlottedPage::used_bytes(1, record.len()) > PAGE_SIZE {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: SlottedPage::MAX_RECORD,
            });
        }
        if SlottedPage::used_bytes(self.pending.len() + 1, self.pending_payload + record.len())
            > PAGE_SIZE
        {
            self.flush()?;
        }
        let slot = u16::try_from(self.pending.len()).expect("slots fit u16 within a page");
        self.pending.push(record.to_vec());
        self.pending_payload += record.len();
        self.records += 1;
        // The builder holds the disk exclusively, so the pending page is
        // always the next allocation.
        let page = PageId(self.disk.page_count());
        Ok(RecordId { page, slot })
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let refs: Vec<&[u8]> = self.pending.iter().map(|r| r.as_slice()).collect();
        let image = SlottedPage::encode(&refs)?;
        let id = self.disk.alloc(image);
        self.pages.push(id);
        self.pending.clear();
        self.pending_payload = 0;
        Ok(())
    }

    /// Flushes the final partial page and returns the immutable heap file.
    ///
    /// # Errors
    ///
    /// Propagates page-encoding failures.
    pub fn finish(mut self) -> Result<HeapFile, StorageError> {
        self.flush()?;
        Ok(HeapFile { pages: self.pages, records: self.records })
    }
}

/// An immutable, bulk-loaded record file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapFile {
    pages: Vec<PageId>,
    records: u64,
}

impl HeapFile {
    /// Pages the file occupies, in record order.
    #[must_use]
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Total record count.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Reads one record through the buffer pool.
    ///
    /// # Errors
    ///
    /// Propagates page-read and slot-lookup failures.
    pub fn read(&self, pool: &BufferPool, id: RecordId) -> Result<Vec<u8>, StorageError> {
        let page = pool.read(id.page)?;
        Ok(SlottedPage::record(&page, id.slot)?.to_vec())
    }

    /// Full scan through the buffer pool, calling `f` for every record.
    ///
    /// # Errors
    ///
    /// Propagates page-read failures; stops at the first error.
    pub fn scan<F: FnMut(RecordId, &[u8])>(
        &self,
        pool: &BufferPool,
        mut f: F,
    ) -> Result<(), StorageError> {
        for &page_id in &self.pages {
            let page = pool.read(page_id)?;
            for (slot, record) in SlottedPage::records(&page)?.into_iter().enumerate() {
                f(RecordId { page: page_id, slot: slot as u16 }, record);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_read_roundtrip() {
        let mut disk = DiskSim::new();
        let mut b = HeapFileBuilder::new(&mut disk);
        let r0 = b.append(b"alpha").unwrap();
        let r1 = b.append(b"beta").unwrap();
        let file = b.finish().unwrap();
        assert_eq!(file.record_count(), 2);
        assert_eq!(file.pages().len(), 1);

        let pool = BufferPool::new(disk, 4);
        assert_eq!(file.read(&pool, r0).unwrap(), b"alpha");
        assert_eq!(file.read(&pool, r1).unwrap(), b"beta");
    }

    #[test]
    fn records_spill_across_pages() {
        let mut disk = DiskSim::new();
        let mut b = HeapFileBuilder::new(&mut disk);
        let record = vec![9u8; 1000];
        let mut ids = Vec::new();
        for _ in 0..10 {
            ids.push(b.append(&record).unwrap());
        }
        let file = b.finish().unwrap();
        // 1000-byte records: 4 per page (4 + 4*1002 > 4096 -> 4 fit? used =
        // 2 + 2*4 + 4000 = 4010 <= 4096 yes; 5 would need 5012). So 3 pages.
        assert_eq!(file.pages().len(), 3);
        let pool = BufferPool::new(disk, 8);
        for id in ids {
            assert_eq!(file.read(&pool, id).unwrap(), record);
        }
    }

    #[test]
    fn record_ids_are_stable_addresses() {
        let mut disk = DiskSim::new();
        let mut b = HeapFileBuilder::new(&mut disk);
        let ids: Vec<RecordId> = (0..100u32).map(|i| b.append(&i.to_le_bytes()).unwrap()).collect();
        let file = b.finish().unwrap();
        let pool = BufferPool::new(disk, 16);
        for (i, id) in ids.iter().enumerate() {
            let bytes = file.read(&pool, *id).unwrap();
            assert_eq!(u32::from_le_bytes(bytes.try_into().unwrap()), i as u32);
        }
    }

    #[test]
    fn scan_visits_everything_in_order() {
        let mut disk = DiskSim::new();
        let mut b = HeapFileBuilder::new(&mut disk);
        for i in 0..50u32 {
            b.append(&i.to_le_bytes()).unwrap();
        }
        let file = b.finish().unwrap();
        let pool = BufferPool::new(disk, 16);
        let mut seen = Vec::new();
        file.scan(&pool, |_, rec| {
            seen.push(u32::from_le_bytes(rec.try_into().unwrap()));
        })
        .unwrap();
        assert_eq!(seen, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_file_is_fine() {
        let mut disk = DiskSim::new();
        let file = HeapFileBuilder::new(&mut disk).finish().unwrap();
        assert_eq!(file.record_count(), 0);
        assert!(file.pages().is_empty());
        let pool = BufferPool::new(disk, 1);
        file.scan(&pool, |_, _| panic!("no records expected")).unwrap();
    }

    #[test]
    fn oversized_record_rejected() {
        let mut disk = DiskSim::new();
        let mut b = HeapFileBuilder::new(&mut disk);
        assert!(matches!(
            b.append(&vec![0u8; PAGE_SIZE]),
            Err(StorageError::RecordTooLarge { .. })
        ));
        // Builder still usable afterwards.
        b.append(b"ok").unwrap();
        assert_eq!(b.finish().unwrap().record_count(), 1);
    }

    #[test]
    fn scan_io_cost_equals_page_count_with_cold_cache() {
        let mut disk = DiskSim::new();
        let mut b = HeapFileBuilder::new(&mut disk);
        for _ in 0..10 {
            b.append(&vec![1u8; 1000]).unwrap();
        }
        let file = b.finish().unwrap();
        let pool = BufferPool::new(disk, 16);
        let before = pool.stats();
        file.scan(&pool, |_, _| {}).unwrap();
        let cost = pool.stats().since(&before);
        assert_eq!(cost.misses as usize, file.pages().len());
        // Second scan is fully cached.
        let before = pool.stats();
        file.scan(&pool, |_, _| {}).unwrap();
        assert_eq!(pool.stats().since(&before).misses, 0);
    }
}
