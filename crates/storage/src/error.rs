//! Storage-layer errors.

use std::fmt;

/// Errors from the simulated disk, buffer pool, and heap files.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// A page id beyond the allocated disk.
    PageOutOfBounds {
        /// The requested page.
        page: u64,
        /// Number of allocated pages.
        allocated: u64,
    },
    /// A record larger than a page's payload capacity.
    RecordTooLarge {
        /// Size of the offending record in bytes.
        size: usize,
        /// Maximum payload a page can hold.
        max: usize,
    },
    /// A slot index beyond the page's record count.
    SlotOutOfBounds {
        /// The requested slot.
        slot: u16,
        /// Records actually on the page.
        count: u16,
    },
    /// Page bytes that do not parse as a slotted page.
    CorruptPage {
        /// What failed to parse.
        reason: &'static str,
    },
    /// A device-level read or write failure (injected or real), surfaced
    /// after retries were exhausted.
    IoFault {
        /// The failed operation (`"read"` or `"write"`).
        op: &'static str,
        /// The page the operation targeted.
        page: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The pool or disk was constructed with an invalid parameter.
    InvalidConfig {
        /// Explanation of the violated requirement.
        reason: &'static str,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageOutOfBounds { page, allocated } => {
                write!(f, "page {page} out of bounds ({allocated} allocated)")
            }
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page payload of {max}")
            }
            StorageError::SlotOutOfBounds { slot, count } => {
                write!(f, "slot {slot} out of bounds (page has {count} records)")
            }
            StorageError::CorruptPage { reason } => write!(f, "corrupt page: {reason}"),
            StorageError::IoFault { op, page, attempts } => {
                write!(f, "i/o fault: {op} of page {page} failed after {attempts} attempts")
            }
            StorageError::InvalidConfig { reason } => {
                write!(f, "invalid storage configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<StorageError> for mlq_core::MlqError {
    fn from(e: StorageError) -> Self {
        mlq_core::MlqError::IoFault { reason: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(StorageError::PageOutOfBounds { page: 9, allocated: 3 }
            .to_string()
            .contains("page 9"));
        assert!(StorageError::RecordTooLarge { size: 9000, max: 4090 }
            .to_string()
            .contains("9000"));
        assert!(StorageError::SlotOutOfBounds { slot: 5, count: 2 }.to_string().contains("slot 5"));
        assert!(StorageError::CorruptPage { reason: "truncated header" }
            .to_string()
            .contains("truncated"));
    }
}
