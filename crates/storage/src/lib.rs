//! # mlq-storage — the ORDBMS-lite storage substrate
//!
//! The MLQ paper measures "real" UDFs inside Oracle 9i: their CPU cost is
//! the work of index scans, and their disk-IO cost is the number of pages
//! fetched — a quantity made *noisy* by the database buffer cache ("the
//! database buffer caching has a noise-like effect on the disk IO cost",
//! §5.2 Experiment 3). This crate rebuilds exactly that substrate so the
//! `mlq-udfs` crate can execute genuine paged index scans:
//!
//! * [`DiskSim`] — a simulated disk of fixed-size pages with physical-read
//!   accounting;
//! * [`BufferPool`] — an O(1) LRU page cache over the disk, with hit/miss
//!   statistics; a UDF's IO cost is the number of pool misses its
//!   execution causes, which depends on cache state and is therefore noisy
//!   across repetitions — the behaviour Experiment 3 needs;
//! * [`SlottedPage`] / [`HeapFile`] — record storage within pages, so
//!   datasets (posting lists, spatial buckets) live in pages like real
//!   table data.
//!
//! All counters are deterministic: experiments measure IO cost in page
//! reads, not wall-clock.

//! ```
//! use mlq_storage::{BufferPool, DiskSim, HeapFileBuilder};
//!
//! let mut disk = DiskSim::new();
//! let mut builder = HeapFileBuilder::new(&mut disk);
//! let rid = builder.append(b"a record")?;
//! let file = builder.finish()?;
//!
//! let pool = BufferPool::new(disk, 8);
//! assert_eq!(file.read(&pool, rid)?, b"a record");
//! // The second read hits the cache: that miss/hit split IS the
//! // experiments' disk-IO cost signal.
//! file.read(&pool, rid)?;
//! assert_eq!(pool.stats().misses, 1);
//! assert_eq!(pool.stats().hits, 1);
//! # Ok::<(), mlq_storage::StorageError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod buffer;
mod disk;
mod error;
pub mod fault;
mod heap;
mod page;

pub use buffer::{BufferPool, IoStats, RetryPolicy, RetryStats};
pub use disk::DiskSim;
pub use error::StorageError;
pub use fault::{FaultConfig, FaultInjector, FaultStats, MetaFault};
pub use heap::{HeapFile, HeapFileBuilder, RecordId};
pub use page::{PageId, SlottedPage, PAGE_SIZE};
