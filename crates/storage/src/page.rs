//! Fixed-size pages and the slotted-page record layout.
//!
//! Layout of a slotted page (little-endian):
//!
//! ```text
//! [u16 record_count] [u16 end_0] [u16 end_1] ... [record bytes...]
//! ```
//!
//! `end_i` is the exclusive end offset of record `i`'s bytes within the
//! payload area (which begins right after the slot directory); record `i`
//! spans `[end_{i-1}, end_i)` with `end_{-1} = 0`. Records are packed in
//! insertion order; pages are immutable once built (datasets in the MLQ
//! experiments are bulk-loaded, then only read).

use crate::error::StorageError;
use serde::{Deserialize, Serialize};

/// Bytes per page — 4 KiB, a typical DBMS page size.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of one page on the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u64);

/// Encoder/decoder for the slotted-page layout.
#[derive(Debug)]
pub struct SlottedPage;

impl SlottedPage {
    /// Maximum payload one record may occupy (one record, one slot entry).
    pub const MAX_RECORD: usize = PAGE_SIZE - 4;

    /// Bytes a page with `records` records totalling `payload` bytes
    /// occupies: header + slot directory + payload.
    #[must_use]
    pub fn used_bytes(records: usize, payload: usize) -> usize {
        2 + 2 * records + payload
    }

    /// Encodes records into one page image.
    ///
    /// # Errors
    ///
    /// [`StorageError::RecordTooLarge`] when the records do not fit a page.
    pub fn encode(records: &[&[u8]]) -> Result<Vec<u8>, StorageError> {
        let payload: usize = records.iter().map(|r| r.len()).sum();
        let used = Self::used_bytes(records.len(), payload);
        if used > PAGE_SIZE {
            return Err(StorageError::RecordTooLarge { size: used, max: PAGE_SIZE });
        }
        let count = u16::try_from(records.len())
            .map_err(|_| StorageError::RecordTooLarge { size: records.len(), max: PAGE_SIZE })?;
        let mut page = Vec::with_capacity(PAGE_SIZE);
        page.extend_from_slice(&count.to_le_bytes());
        let mut end = 0u16;
        for r in records {
            end += u16::try_from(r.len()).expect("record fits a page");
            page.extend_from_slice(&end.to_le_bytes());
        }
        for r in records {
            page.extend_from_slice(r);
        }
        page.resize(PAGE_SIZE, 0);
        Ok(page)
    }

    /// Number of records on the page.
    ///
    /// # Errors
    ///
    /// [`StorageError::CorruptPage`] for a truncated header.
    pub fn record_count(page: &[u8]) -> Result<u16, StorageError> {
        let header: [u8; 2] = page
            .get(..2)
            .and_then(|s| s.try_into().ok())
            .ok_or(StorageError::CorruptPage { reason: "truncated header" })?;
        Ok(u16::from_le_bytes(header))
    }

    /// Borrows record `slot` from the page image.
    ///
    /// # Errors
    ///
    /// [`StorageError::SlotOutOfBounds`] or [`StorageError::CorruptPage`].
    pub fn record(page: &[u8], slot: u16) -> Result<&[u8], StorageError> {
        let count = Self::record_count(page)?;
        if slot >= count {
            return Err(StorageError::SlotOutOfBounds { slot, count });
        }
        let dir_end = 2 + 2 * count as usize;
        let read_end = |i: usize| -> Result<usize, StorageError> {
            let off = 2 + 2 * i;
            let raw: [u8; 2] = page
                .get(off..off + 2)
                .and_then(|s| s.try_into().ok())
                .ok_or(StorageError::CorruptPage { reason: "truncated slot directory" })?;
            Ok(u16::from_le_bytes(raw) as usize)
        };
        let start = if slot == 0 { 0 } else { read_end(slot as usize - 1)? };
        let end = read_end(slot as usize)?;
        if start > end || dir_end + end > page.len() {
            return Err(StorageError::CorruptPage { reason: "slot offsets out of order" });
        }
        Ok(&page[dir_end + start..dir_end + end])
    }

    /// Iterates all records on the page.
    ///
    /// # Errors
    ///
    /// [`StorageError::CorruptPage`] for malformed images.
    pub fn records(page: &[u8]) -> Result<Vec<&[u8]>, StorageError> {
        let count = Self::record_count(page)?;
        (0..count).map(|slot| Self::record(page, slot)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple_records() {
        let records: Vec<&[u8]> = vec![b"hello", b"", b"world!"];
        let page = SlottedPage::encode(&records).unwrap();
        assert_eq!(page.len(), PAGE_SIZE);
        assert_eq!(SlottedPage::record_count(&page).unwrap(), 3);
        assert_eq!(SlottedPage::record(&page, 0).unwrap(), b"hello");
        assert_eq!(SlottedPage::record(&page, 1).unwrap(), b"");
        assert_eq!(SlottedPage::record(&page, 2).unwrap(), b"world!");
    }

    #[test]
    fn empty_page_has_zero_records() {
        let page = SlottedPage::encode(&[]).unwrap();
        assert_eq!(SlottedPage::record_count(&page).unwrap(), 0);
        assert!(SlottedPage::records(&page).unwrap().is_empty());
    }

    #[test]
    fn slot_out_of_bounds() {
        let page = SlottedPage::encode(&[b"x"]).unwrap();
        assert!(matches!(
            SlottedPage::record(&page, 1),
            Err(StorageError::SlotOutOfBounds { slot: 1, count: 1 })
        ));
    }

    #[test]
    fn oversized_record_rejected() {
        let big = vec![0u8; PAGE_SIZE];
        assert!(matches!(SlottedPage::encode(&[&big]), Err(StorageError::RecordTooLarge { .. })));
        let exactly = vec![7u8; SlottedPage::MAX_RECORD];
        let page = SlottedPage::encode(&[&exactly]).unwrap();
        assert_eq!(SlottedPage::record(&page, 0).unwrap(), exactly.as_slice());
    }

    #[test]
    fn truncated_page_is_corrupt() {
        assert!(matches!(SlottedPage::record_count(&[1]), Err(StorageError::CorruptPage { .. })));
        // Header claims 5 records but directory is missing.
        let mut bad = vec![0u8; 4];
        bad[0] = 5;
        assert!(SlottedPage::record(&bad, 4).is_err());
    }

    #[test]
    fn used_bytes_formula() {
        assert_eq!(SlottedPage::used_bytes(0, 0), 2);
        assert_eq!(SlottedPage::used_bytes(3, 11), 2 + 6 + 11);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_records(
            records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 0..30)
        ) {
            let refs: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
            let payload: usize = records.iter().map(|r| r.len()).sum();
            prop_assume!(SlottedPage::used_bytes(records.len(), payload) <= PAGE_SIZE);
            let page = SlottedPage::encode(&refs).unwrap();
            let decoded = SlottedPage::records(&page).unwrap();
            prop_assert_eq!(decoded.len(), records.len());
            for (got, want) in decoded.iter().zip(&records) {
                prop_assert_eq!(*got, want.as_slice());
            }
        }
    }
}
