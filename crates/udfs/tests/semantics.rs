//! Semantic property tests of the six UDFs: the search results must obey
//! the relationships their definitions imply, for arbitrary query points.

use mlq_udfs::spatial::{KnnSearch, MapConfig, RangeSearch, SpatialDatabase, WindowSearch};
use mlq_udfs::text::{CorpusConfig, ProximitySearch, SimpleSearch, TextDatabase, ThresholdSearch};
use mlq_udfs::Udf;
use proptest::prelude::*;
use std::sync::Arc;
use std::sync::OnceLock;

fn text_db() -> Arc<TextDatabase> {
    static DB: OnceLock<Arc<TextDatabase>> = OnceLock::new();
    Arc::clone(DB.get_or_init(|| {
        Arc::new(
            TextDatabase::generate(CorpusConfig {
                docs: 400,
                vocab: 200,
                avg_doc_len: 60,
                ..CorpusConfig::default()
            })
            .unwrap(),
        )
    }))
}

fn spatial_db() -> Arc<SpatialDatabase> {
    static DB: OnceLock<Arc<SpatialDatabase>> = OnceLock::new();
    Arc::clone(DB.get_or_init(|| {
        Arc::new(
            SpatialDatabase::generate(MapConfig {
                objects: 1500,
                clusters: 4,
                seed: 77,
                ..MapConfig::default()
            })
            .unwrap(),
        )
    }))
}

/// Brute-force k nearest distances over every object in the map.
fn brute_force_knn(db: &SpatialDatabase, x: f64, y: f64, k: usize) -> Vec<f64> {
    let grid = db.index().grid();
    let mut seen = std::collections::HashSet::new();
    let mut dists = Vec::new();
    for cy in 0..grid {
        for cx in 0..grid {
            for rect in db.index().objects_in_cell(db.pool(), cx, cy).unwrap() {
                if seen.insert(rect.id) {
                    dists.push(rect.distance_to(x, y));
                }
            }
        }
    }
    dists.sort_by(f64::total_cmp);
    dists.truncate(k);
    dists
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// THRESH at t = 1 answers exactly what SIMPLE answers: "appears at
    /// least once" is "appears".
    #[test]
    fn threshold_one_equals_simple(rank in 0.0..200.0f64) {
        let simple = SimpleSearch::new(text_db());
        let thresh = ThresholdSearch::new(text_db());
        let a = simple.execute(&[rank]).unwrap().results;
        let b = thresh.execute(&[rank, 1.0]).unwrap().results;
        prop_assert_eq!(a, b);
    }

    /// THRESH results are monotone non-increasing in the threshold.
    #[test]
    fn threshold_results_monotone(rank in 0.0..200.0f64, t in 1.0..15.0f64) {
        let thresh = ThresholdSearch::new(text_db());
        let loose = thresh.execute(&[rank, t]).unwrap().results;
        let strict = thresh.execute(&[rank, t + 1.0]).unwrap().results;
        prop_assert!(strict <= loose, "t {t}: {strict} > {loose}");
    }

    /// PROX is symmetric in its two keywords and monotone in the window.
    #[test]
    fn proximity_symmetric_and_window_monotone(
        a in 0.0..200.0f64,
        b in 0.0..200.0f64,
        w in 1.0..49.0f64,
    ) {
        let prox = ProximitySearch::new(text_db());
        let ab = prox.execute(&[a, b, w]).unwrap().results;
        let ba = prox.execute(&[b, a, w]).unwrap().results;
        prop_assert_eq!(ab, ba, "order of keywords cannot matter");
        let wider = prox.execute(&[a, b, w + 1.0]).unwrap().results;
        prop_assert!(wider >= ab, "wider window finds at least as much");
    }

    /// PROX with a term and itself at any window finds exactly the
    /// documents containing the term (positions coincide).
    #[test]
    fn proximity_with_self_equals_simple(rank in 0.0..200.0f64, w in 1.0..50.0f64) {
        let prox = ProximitySearch::new(text_db());
        let simple = SimpleSearch::new(text_db());
        let self_matches = prox.execute(&[rank, rank, w]).unwrap().results;
        let docs = simple.execute(&[rank]).unwrap().results;
        prop_assert_eq!(self_matches, docs);
    }

    /// WIN results are monotone in the window extent.
    #[test]
    fn window_monotone_in_extent(
        x in 0.0..1000.0f64,
        y in 0.0..1000.0f64,
        w in 0.0..190.0f64,
        h in 0.0..190.0f64,
    ) {
        let win = WindowSearch::new(spatial_db());
        let small = win.execute(&[x, y, w, h]).unwrap().results;
        let large = win.execute(&[x, y, w + 10.0, h + 10.0]).unwrap().results;
        prop_assert!(large >= small);
    }

    /// RANGE results are monotone in the radius, and a circle of radius r
    /// finds no more than the circumscribing window.
    #[test]
    fn range_monotone_and_bounded_by_window(
        x in 0.0..1000.0f64,
        y in 0.0..1000.0f64,
        r in 0.0..90.0f64,
    ) {
        let range = RangeSearch::new(spatial_db());
        let win = WindowSearch::new(spatial_db());
        let inner = range.execute(&[x, y, r]).unwrap().results;
        let outer = range.execute(&[x, y, r + 10.0]).unwrap().results;
        prop_assert!(outer >= inner);
        // Circumscribing square window (side 2r) contains the circle.
        let boxed = win.execute(&[x, y, 2.0 * r, 2.0 * r]).unwrap().results;
        prop_assert!(boxed >= inner, "window {boxed} < circle {inner}");
    }

    /// The expanding-ring kNN finds exactly the same k distances as brute
    /// force over the whole map — the ring pruning bound is correct.
    #[test]
    fn knn_matches_brute_force(
        x in 0.0..1000.0f64,
        y in 0.0..1000.0f64,
        k in 1usize..30,
    ) {
        let db = spatial_db();
        let nn = KnnSearch::new(Arc::clone(&db));
        let fast = nn.nearest_distances(x, y, k).unwrap();
        let slow = brute_force_knn(&db, x, y, k);
        prop_assert_eq!(fast.len(), slow.len());
        for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "rank {}: ring {} vs brute {}", i, a, b);
        }
    }

    /// NN returns min(k, objects) results, monotone in k, and CPU cost is
    /// deterministic per point.
    #[test]
    fn knn_cardinality_and_determinism(
        x in 0.0..1000.0f64,
        y in 0.0..1000.0f64,
        k in 1.0..49.0f64,
    ) {
        let nn = KnnSearch::new(spatial_db());
        let a = nn.execute(&[x, y, k]).unwrap();
        let b = nn.execute(&[x, y, k]).unwrap();
        prop_assert_eq!(a.cpu, b.cpu, "CPU cost is pure");
        prop_assert_eq!(a.results, b.results);
        prop_assert_eq!(a.results, k as u64, "1500 objects always cover k <= 49");
        let more = nn.execute(&[x, y, k + 1.0]).unwrap();
        prop_assert!(more.results >= a.results);
    }
}
