//! Execution-cost records reported by UDF executions.

use serde::{Deserialize, Serialize};

/// Which cost component a model is being trained to predict — the paper
/// keeps "two cost estimators for each UDF in order to model both CPU and
/// disk IO costs" (§1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostKind {
    /// CPU work units (`ec_CPU`).
    Cpu,
    /// Buffer-pool misses (`ec_IO`, "the number of disk pages fetched").
    DiskIo,
}

impl CostKind {
    /// Label used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CostKind::Cpu => "cpu",
            CostKind::DiskIo => "io",
        }
    }
}

/// The observed cost of one UDF execution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionCost {
    /// Deterministic CPU work units consumed.
    pub cpu: f64,
    /// Disk pages fetched (buffer-pool misses).
    pub io: f64,
    /// Result cardinality (matching documents / objects) — the
    /// selectivity signal a feedback-driven optimizer also wants
    /// (§2.2 contrasts MLQ's cost feedback with STGrid/STHoles'
    /// cardinality feedback; our UDFs report both).
    pub results: u64,
}

impl ExecutionCost {
    /// Selects one component.
    #[must_use]
    pub fn get(&self, kind: CostKind) -> f64 {
        match kind {
            CostKind::Cpu => self.cpu,
            CostKind::DiskIo => self.io,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_selects_component() {
        let c = ExecutionCost { cpu: 10.0, io: 3.0, results: 7 };
        assert_eq!(c.get(CostKind::Cpu), 10.0);
        assert_eq!(c.get(CostKind::DiskIo), 3.0);
    }

    #[test]
    fn labels() {
        assert_eq!(CostKind::Cpu.label(), "cpu");
        assert_eq!(CostKind::DiskIo.label(), "io");
    }
}
