//! # mlq-udfs — executable "real" UDFs over the storage substrate
//!
//! The MLQ paper evaluates six real UDFs implemented in Oracle PL/SQL:
//! three keyword-based text-search functions (*simple*, *threshold*,
//! *proximity*) over the Reuters news corpus, and three spatial-search
//! functions (*K-nearest-neighbors*, *window*, *range*) over Pennsylvania
//! urban-area maps. Neither Oracle nor those datasets are available here,
//! so this crate rebuilds the same six functions from scratch on top of
//! `mlq-storage`:
//!
//! * [`text`] — a synthetic Zipfian document corpus with a positional
//!   inverted index stored in slotted pages, queried by
//!   [`text::SimpleSearch`], [`text::ThresholdSearch`], and
//!   [`text::ProximitySearch`];
//! * [`spatial`] — a synthetic clustered rectangle map ("urban areas")
//!   with a paged grid index, queried by [`spatial::KnnSearch`],
//!   [`spatial::WindowSearch`], and [`spatial::RangeSearch`].
//!
//! Every UDF implements the [`Udf`] trait: executing it performs genuine
//! paged index scans and reports an [`ExecutionCost`] with
//!
//! * a **CPU cost** in deterministic work units (posting entries merged,
//!   rectangles tested, ...), and
//! * a **disk-IO cost** equal to the buffer-pool misses the execution
//!   caused — noisy across repetitions exactly like the paper's
//!   Oracle buffer cache (Experiment 3).
//!
//! The model variables each UDF exposes (its [`Udf::space`]) are the
//! paper's "cost variables": e.g. a keyword argument is transformed to its
//! frequency rank, the quantity that actually drives the cost.

//! ```
//! use mlq_udfs::text::{CorpusConfig, SimpleSearch, TextDatabase};
//! use mlq_udfs::Udf;
//! use std::sync::Arc;
//!
//! let db = Arc::new(TextDatabase::generate(CorpusConfig {
//!     docs: 100, vocab: 50, avg_doc_len: 20, ..CorpusConfig::default()
//! })?);
//! let simple = SimpleSearch::new(db);
//! // Model variable: the keyword's frequency rank (the transformation T).
//! let head = simple.execute(&[0.0])?;
//! let tail = simple.execute(&[49.0])?;
//! assert!(head.cpu > tail.cpu); // frequent terms scan longer postings
//! # Ok::<(), mlq_udfs::UdfError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod cost;
pub mod spatial;
pub mod text;
mod udf;

pub use cost::{CostKind, ExecutionCost};
pub use udf::{Udf, UdfError};
