//! Spatial search UDFs.
//!
//! The paper's three spatial UDFs (K-nearest-neighbors, window, range
//! search) ran on Oracle Spatial over the urban areas of all Pennsylvania
//! counties (PASDA). This module substitutes a synthetic map of clustered
//! rectangles — urban areas cluster around population centers, which is
//! what makes spatial-search cost depend so strongly on location — indexed
//! by a paged grid file, so executing a search performs real paged cell
//! scans.

mod grid_index;
mod map;
mod rtree;
mod search;

pub use grid_index::GridIndex;
pub use map::{MapConfig, Rect, SpatialDatabase};
pub use rtree::{RTreeDatabase, RTreeIndex, WindowSearchRTree};
pub use search::{KnnSearch, RangeSearch, WindowSearch};
