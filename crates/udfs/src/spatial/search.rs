//! The three spatial-search UDFs (paper §5.1: "K-nearest neighbors,
//! window, range").
//!
//! Model variables are the UDFs' literal input arguments — query location
//! plus window extent / radius / `k` — matching the paper's setting where
//! spatial cost varies with where (dense vs. sparse regions) and how much
//! is asked.

use crate::cost::ExecutionCost;
use crate::spatial::map::SpatialDatabase;
use crate::udf::{Udf, UdfError};
use mlq_core::Space;
use std::collections::HashSet;
use std::sync::Arc;

/// WIN: how many objects intersect the window centered at `(x, y)` with
/// extent `(w, h)`?
///
/// Model space: 4-D `(x, y, w, h)` — the dimensionality the paper uses for
/// its synthetic experiments as well.
#[derive(Debug, Clone)]
pub struct WindowSearch {
    db: Arc<SpatialDatabase>,
    space: Space,
}

impl WindowSearch {
    /// Largest window extent per axis in the model space.
    pub const MAX_EXTENT: f64 = 200.0;

    /// Builds the UDF over a shared spatial database.
    #[must_use]
    pub fn new(db: Arc<SpatialDatabase>) -> Self {
        let space = Space::new(
            vec![0.0, 0.0, 0.0, 0.0],
            vec![1000.0, 1000.0, Self::MAX_EXTENT, Self::MAX_EXTENT],
        )
        .expect("bounds are valid");
        WindowSearch { db, space }
    }
}

impl Udf for WindowSearch {
    fn name(&self) -> &'static str {
        "WIN"
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn reset_io_state(&self) {
        self.db.pool().clear();
    }

    fn execute(&self, point: &[f64]) -> Result<ExecutionCost, UdfError> {
        self.space.grid_point(point)?;
        let (x, y) = (point[0].clamp(0.0, 1000.0), point[1].clamp(0.0, 1000.0));
        let w = point[2].clamp(0.0, Self::MAX_EXTENT);
        let h = point[3].clamp(0.0, Self::MAX_EXTENT);
        let (wx0, wy0) = (x - w / 2.0, y - h / 2.0);
        let (wx1, wy1) = (x + w / 2.0, y + h / 2.0);

        let index = self.db.index();
        let pool = self.db.pool();
        let before = pool.stats();
        let (cx0, cy0) = index.cell_of(wx0, wy0);
        let (cx1, cy1) = index.cell_of(wx1, wy1);
        let mut cpu = 1.0;
        let mut seen: HashSet<u32> = HashSet::new();
        let mut matches = 0u64;
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for rect in index.objects_in_cell(pool, cx, cy)? {
                    cpu += 1.0;
                    if seen.insert(rect.id) && rect.intersects_window(wx0, wy0, wx1, wy1) {
                        matches += 1;
                    }
                }
            }
        }
        let io = pool.stats().since(&before).misses as f64;
        Ok(ExecutionCost { cpu, io, results: matches })
    }
}

/// RANGE: how many objects lie within distance `r` of `(x, y)`?
///
/// Model space: 3-D `(x, y, r)`.
#[derive(Debug, Clone)]
pub struct RangeSearch {
    db: Arc<SpatialDatabase>,
    space: Space,
}

impl RangeSearch {
    /// Largest radius in the model space.
    pub const MAX_RADIUS: f64 = 150.0;

    /// Builds the UDF over a shared spatial database.
    #[must_use]
    pub fn new(db: Arc<SpatialDatabase>) -> Self {
        let space = Space::new(vec![0.0, 0.0, 0.0], vec![1000.0, 1000.0, Self::MAX_RADIUS])
            .expect("bounds are valid");
        RangeSearch { db, space }
    }
}

impl Udf for RangeSearch {
    fn name(&self) -> &'static str {
        "RANGE"
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn reset_io_state(&self) {
        self.db.pool().clear();
    }

    fn execute(&self, point: &[f64]) -> Result<ExecutionCost, UdfError> {
        self.space.grid_point(point)?;
        let (x, y) = (point[0].clamp(0.0, 1000.0), point[1].clamp(0.0, 1000.0));
        let r = point[2].clamp(0.0, Self::MAX_RADIUS);

        let index = self.db.index();
        let pool = self.db.pool();
        let before = pool.stats();
        let (cx0, cy0) = index.cell_of(x - r, y - r);
        let (cx1, cy1) = index.cell_of(x + r, y + r);
        let mut cpu = 1.0;
        let mut seen: HashSet<u32> = HashSet::new();
        let mut matches = 0u64;
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for rect in index.objects_in_cell(pool, cx, cy)? {
                    cpu += 1.0;
                    if seen.insert(rect.id) && rect.distance_to(x, y) <= r {
                        matches += 1;
                    }
                }
            }
        }
        let io = pool.stats().since(&before).misses as f64;
        Ok(ExecutionCost { cpu, io, results: matches })
    }
}

/// NN: find the `k` objects nearest to `(x, y)`.
///
/// Model space: 3-D `(x, y, k)`. Uses an expanding-ring grid search: cells
/// are visited in increasing Chebyshev ring order until the `k`-th best
/// distance is provably final.
#[derive(Debug, Clone)]
pub struct KnnSearch {
    db: Arc<SpatialDatabase>,
    space: Space,
}

impl KnnSearch {
    /// Largest `k` in the model space.
    pub const MAX_K: f64 = 50.0;

    /// Builds the UDF over a shared spatial database.
    #[must_use]
    pub fn new(db: Arc<SpatialDatabase>) -> Self {
        let space = Space::new(vec![0.0, 0.0, 1.0], vec![1000.0, 1000.0, Self::MAX_K])
            .expect("bounds are valid");
        KnnSearch { db, space }
    }
}

impl KnnSearch {
    /// The distances of the `k` nearest objects to `(x, y)`, ascending —
    /// a diagnostic used to verify the expanding-ring search against
    /// brute force; `execute` reports only costs.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn nearest_distances(&self, x: f64, y: f64, k: usize) -> Result<Vec<f64>, UdfError> {
        let index = self.db.index();
        let pool = self.db.pool();
        let grid = index.grid();
        let cell = index.cell_size();
        let (ccx, ccy) = index.cell_of(x, y);
        let mut seen: HashSet<u32> = HashSet::new();
        let mut best: std::collections::BinaryHeap<OrderedDist> =
            std::collections::BinaryHeap::new();
        for ring in 0..=grid {
            if best.len() >= k {
                let kth = best.peek().expect("non-empty").0;
                if kth <= (ring as f64 - 1.0).max(0.0) * cell {
                    break;
                }
            }
            for (cx, cy) in ring_cells(ccx, ccy, ring, grid) {
                for rect in index.objects_in_cell(pool, cx, cy)? {
                    if !seen.insert(rect.id) {
                        continue;
                    }
                    let d = rect.distance_to(x, y);
                    if best.len() < k {
                        best.push(OrderedDist(d));
                    } else if d < best.peek().expect("non-empty").0 {
                        best.pop();
                        best.push(OrderedDist(d));
                    }
                }
            }
        }
        let mut out: Vec<f64> = best.into_iter().map(|OrderedDist(d)| d).collect();
        out.sort_by(f64::total_cmp);
        Ok(out)
    }
}

impl Udf for KnnSearch {
    fn name(&self) -> &'static str {
        "NN"
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn reset_io_state(&self) {
        self.db.pool().clear();
    }

    fn execute(&self, point: &[f64]) -> Result<ExecutionCost, UdfError> {
        self.space.grid_point(point)?;
        let (x, y) = (point[0].clamp(0.0, 1000.0), point[1].clamp(0.0, 1000.0));
        let k = (point[2].clamp(1.0, Self::MAX_K) as usize).max(1);

        let index = self.db.index();
        let pool = self.db.pool();
        let before = pool.stats();
        let grid = index.grid();
        let cell = index.cell_size();
        let (ccx, ccy) = index.cell_of(x, y);

        let mut cpu = 1.0;
        let mut seen: HashSet<u32> = HashSet::new();
        // Max-heap of the k best distances found so far.
        let mut best: std::collections::BinaryHeap<OrderedDist> =
            std::collections::BinaryHeap::new();
        let max_ring = grid; // visiting every cell at most once
        for ring in 0..=max_ring {
            // Prune: every unvisited cell is at least (ring - 1) cells away.
            if best.len() >= k {
                let kth = best.peek().expect("non-empty").0;
                let ring_min_dist = (ring as f64 - 1.0).max(0.0) * cell;
                if kth <= ring_min_dist {
                    break;
                }
            }
            for (cx, cy) in ring_cells(ccx, ccy, ring, grid) {
                for rect in index.objects_in_cell(pool, cx, cy)? {
                    cpu += 1.0;
                    if !seen.insert(rect.id) {
                        continue;
                    }
                    let d = rect.distance_to(x, y);
                    if best.len() < k {
                        best.push(OrderedDist(d));
                    } else if d < best.peek().expect("non-empty").0 {
                        best.pop();
                        best.push(OrderedDist(d));
                    }
                }
            }
        }
        let io = pool.stats().since(&before).misses as f64;
        Ok(ExecutionCost { cpu, io, results: best.len() as u64 })
    }
}

/// `f64` distance with a total order for the result heap.
#[derive(PartialEq)]
struct OrderedDist(f64);

impl Eq for OrderedDist {}

impl PartialOrd for OrderedDist {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedDist {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Cells at exactly Chebyshev distance `ring` from `(ccx, ccy)`, clipped to
/// the grid.
fn ring_cells(ccx: usize, ccy: usize, ring: usize, grid: usize) -> Vec<(usize, usize)> {
    let (ccx, ccy, ring, grid) = (ccx as i64, ccy as i64, ring as i64, grid as i64);
    let mut cells = Vec::new();
    let mut push = |cx: i64, cy: i64| {
        if (0..grid).contains(&cx) && (0..grid).contains(&cy) {
            cells.push((cx as usize, cy as usize));
        }
    };
    if ring == 0 {
        push(ccx, ccy);
        return cells;
    }
    for dx in -ring..=ring {
        push(ccx + dx, ccy - ring);
        push(ccx + dx, ccy + ring);
    }
    for dy in (-ring + 1)..ring {
        push(ccx - ring, ccy + dy);
        push(ccx + ring, ccy + dy);
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::map::MapConfig;

    fn db() -> Arc<SpatialDatabase> {
        Arc::new(
            SpatialDatabase::generate(MapConfig {
                objects: 1500,
                clusters: 3,
                seed: 2,
                ..MapConfig::default()
            })
            .unwrap(),
        )
    }

    /// A cluster-center point: the densest cell's center.
    fn dense_point(db: &SpatialDatabase) -> (f64, f64) {
        let counts = db.index().cell_object_counts();
        let grid = db.index().grid();
        let (i, _) = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
        let (cx, cy) = (i % grid, i / grid);
        let cell = db.index().cell_size();
        ((cx as f64 + 0.5) * cell, (cy as f64 + 0.5) * cell)
    }

    /// An empty-region point: the first empty cell's center.
    fn sparse_point(db: &SpatialDatabase) -> (f64, f64) {
        let counts = db.index().cell_object_counts();
        let grid = db.index().grid();
        let (i, _) = counts.iter().enumerate().find(|(_, &c)| c == 0).unwrap();
        let (cx, cy) = (i % grid, i / grid);
        let cell = db.index().cell_size();
        ((cx as f64 + 0.5) * cell, (cy as f64 + 0.5) * cell)
    }

    #[test]
    fn ring_cells_cover_grid_without_duplicates() {
        let mut all: Vec<(usize, usize)> = Vec::new();
        for ring in 0..=8 {
            all.extend(ring_cells(3, 4, ring, 8));
        }
        all.sort_unstable();
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len(), "no duplicates across rings");
        assert_eq!(all.len(), 64, "all cells covered");
    }

    #[test]
    fn ring_zero_is_center() {
        assert_eq!(ring_cells(2, 2, 0, 8), vec![(2, 2)]);
    }

    #[test]
    fn window_cost_tracks_density() {
        let db = db();
        let udf = WindowSearch::new(Arc::clone(&db));
        let (dx, dy) = dense_point(&db);
        let (sx, sy) = sparse_point(&db);
        let dense = udf.execute(&[dx, dy, 100.0, 100.0]).unwrap();
        let sparse = udf.execute(&[sx, sy, 100.0, 100.0]).unwrap();
        assert!(dense.cpu > sparse.cpu, "dense {} vs sparse {}", dense.cpu, sparse.cpu);
    }

    #[test]
    fn window_cost_grows_with_extent() {
        let db = db();
        let udf = WindowSearch::new(Arc::clone(&db));
        let (dx, dy) = dense_point(&db);
        let small = udf.execute(&[dx, dy, 10.0, 10.0]).unwrap();
        let large = udf.execute(&[dx, dy, 200.0, 200.0]).unwrap();
        assert!(large.cpu >= small.cpu);
    }

    #[test]
    fn range_cost_grows_with_radius() {
        let db = db();
        let udf = RangeSearch::new(Arc::clone(&db));
        let (dx, dy) = dense_point(&db);
        let small = udf.execute(&[dx, dy, 5.0]).unwrap();
        let large = udf.execute(&[dx, dy, 150.0]).unwrap();
        assert!(large.cpu >= small.cpu);
    }

    #[test]
    fn knn_in_sparse_region_scans_more_rings() {
        let db = db();
        let udf = KnnSearch::new(Arc::clone(&db));
        let (dx, dy) = dense_point(&db);
        let (sx, sy) = sparse_point(&db);
        let dense = udf.execute(&[dx, dy, 5.0]).unwrap();
        let sparse = udf.execute(&[sx, sy, 5.0]).unwrap();
        // In a dense region the first ring already yields k objects, so the
        // CPU touched there can actually be *higher* per cell; the robust
        // relation is both executions complete and cost > trivial.
        assert!(dense.cpu > 1.0);
        assert!(sparse.cpu > 1.0);
    }

    #[test]
    fn knn_cost_grows_with_k() {
        let db = db();
        let udf = KnnSearch::new(Arc::clone(&db));
        let (sx, sy) = sparse_point(&db);
        let k1 = udf.execute(&[sx, sy, 1.0]).unwrap();
        let k50 = udf.execute(&[sx, sy, 50.0]).unwrap();
        assert!(k50.cpu >= k1.cpu);
    }

    #[test]
    fn io_is_noisy_across_cache_states_cpu_is_not() {
        let db = db();
        let udf = WindowSearch::new(Arc::clone(&db));
        let (dx, dy) = dense_point(&db);
        db.pool().clear();
        let cold = udf.execute(&[dx, dy, 150.0, 150.0]).unwrap();
        let warm = udf.execute(&[dx, dy, 150.0, 150.0]).unwrap();
        assert!(cold.io > warm.io, "cold {} vs warm {}", cold.io, warm.io);
        assert_eq!(cold.cpu, warm.cpu);
    }

    #[test]
    fn window_results_grow_with_extent() {
        let db = db();
        let udf = WindowSearch::new(Arc::clone(&db));
        let (dx, dy) = dense_point(&db);
        let small = udf.execute(&[dx, dy, 10.0, 10.0]).unwrap().results;
        let large = udf.execute(&[dx, dy, 200.0, 200.0]).unwrap().results;
        assert!(large >= small);
        assert!(large > 0, "dense region window must match something");
    }

    #[test]
    fn knn_returns_exactly_k_when_enough_objects() {
        let db = db();
        let udf = KnnSearch::new(Arc::clone(&db));
        let (dx, dy) = dense_point(&db);
        for k in [1u64, 5, 25] {
            let out = udf.execute(&[dx, dy, k as f64]).unwrap();
            assert_eq!(out.results, k, "k = {k}");
        }
    }

    #[test]
    fn model_spaces_have_expected_dimensions() {
        let db = db();
        assert_eq!(WindowSearch::new(Arc::clone(&db)).space().dims(), 4);
        assert_eq!(RangeSearch::new(Arc::clone(&db)).space().dims(), 3);
        assert_eq!(KnnSearch::new(db).space().dims(), 3);
    }

    #[test]
    fn rejects_malformed_points() {
        let db = db();
        let udf = RangeSearch::new(db);
        assert!(udf.execute(&[1.0, 2.0]).is_err());
        assert!(udf.execute(&[1.0, 2.0, f64::NAN]).is_err());
    }
}
