//! Synthetic clustered rectangle maps and the spatial database bundle.

use crate::spatial::grid_index::GridIndex;
use mlq_storage::{BufferPool, DiskSim, StorageError};
use mlq_synth::dist::Gaussian;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Side length of the (square) world, matching the paper's `[0, 1000]`
/// model-variable ranges.
pub(crate) const WORLD: f64 = 1000.0;

/// One map object: an axis-aligned rectangle ("urban area" polygon
/// bounding box).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Object id (unique within the map).
    pub id: u32,
    /// Left edge.
    pub x0: f32,
    /// Bottom edge.
    pub y0: f32,
    /// Right edge.
    pub x1: f32,
    /// Top edge.
    pub y1: f32,
}

impl Rect {
    /// True when this rectangle intersects the closed window
    /// `[wx0, wx1] × [wy0, wy1]`.
    #[must_use]
    pub fn intersects_window(&self, wx0: f64, wy0: f64, wx1: f64, wy1: f64) -> bool {
        f64::from(self.x0) <= wx1
            && wx0 <= f64::from(self.x1)
            && f64::from(self.y0) <= wy1
            && wy0 <= f64::from(self.y1)
    }

    /// Euclidean distance from `(px, py)` to the nearest point of the
    /// rectangle (zero inside).
    #[must_use]
    pub fn distance_to(&self, px: f64, py: f64) -> f64 {
        let dx = (f64::from(self.x0) - px).max(0.0).max(px - f64::from(self.x1)).max(0.0);
        let dy = (f64::from(self.y0) - py).max(0.0).max(py - f64::from(self.y1)).max(0.0);
        (dx * dx + dy * dy).sqrt()
    }
}

/// Map shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapConfig {
    /// Number of rectangles.
    pub objects: u32,
    /// Number of population-center clusters.
    pub clusters: u32,
    /// Cluster standard deviation as a fraction of the world side.
    pub cluster_std_frac: f64,
    /// Rectangle side lengths, uniform in `[min_size, max_size]`.
    pub min_size: f64,
    /// Upper bound of rectangle side lengths.
    pub max_size: f64,
    /// Grid-index resolution (cells per side).
    pub grid: usize,
    /// Generation seed.
    pub seed: u64,
    /// Buffer-pool capacity in pages.
    pub pool_pages: usize,
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig {
            objects: 4000,
            clusters: 8,
            cluster_std_frac: 0.06,
            min_size: 2.0,
            max_size: 12.0,
            grid: 16,
            seed: 0,
            pool_pages: 64,
        }
    }
}

/// Generates the clustered rectangle map described by `config` — shared
/// by the grid-file and R-tree databases so both index the identical map.
///
/// # Panics
///
/// Panics on degenerate configurations.
#[must_use]
pub fn generate_rects(config: &MapConfig) -> Vec<Rect> {
    assert!(config.objects > 0 && config.clusters > 0 && config.grid > 0);
    assert!(0.0 < config.min_size && config.min_size <= config.max_size);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let centers: Vec<(f64, f64)> = (0..config.clusters)
        .map(|_| (rng.random_range(0.0..WORLD), rng.random_range(0.0..WORLD)))
        .collect();
    let spread = Gaussian::new(0.0, config.cluster_std_frac * WORLD);

    (0..config.objects)
        .map(|id| {
            let (cx, cy) = centers[rng.random_range(0..centers.len())];
            let x = (cx + spread.sample(&mut rng)).clamp(0.0, WORLD);
            let y = (cy + spread.sample(&mut rng)).clamp(0.0, WORLD);
            let w = rng.random_range(config.min_size..=config.max_size);
            let h = rng.random_range(config.min_size..=config.max_size);
            Rect {
                id,
                x0: x as f32,
                y0: y as f32,
                x1: (x + w).min(WORLD) as f32,
                y1: (y + h).min(WORLD) as f32,
            }
        })
        .collect()
}

/// The spatial substrate: a paged grid index over a synthetic map, served
/// through an LRU buffer pool.
#[derive(Debug)]
pub struct SpatialDatabase {
    pool: BufferPool,
    index: GridIndex,
    config: MapConfig,
}

impl SpatialDatabase {
    /// Generates a map per `config`, builds the grid index into paged
    /// storage, and wraps it in a buffer pool.
    ///
    /// # Errors
    ///
    /// Propagates page-encoding failures from index construction.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (no objects/clusters/grid, or
    /// an empty size range).
    pub fn generate(config: MapConfig) -> Result<Self, StorageError> {
        let rects = generate_rects(&config);
        let mut disk = DiskSim::new();
        let index = GridIndex::build(&mut disk, config.grid, &rects)?;
        let pool = BufferPool::new(disk, config.pool_pages);
        Ok(SpatialDatabase { pool, index, config })
    }

    /// The buffer pool (IO-cost measurements read its stats).
    #[must_use]
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The grid index.
    #[must_use]
    pub fn index(&self) -> &GridIndex {
        &self.index
    }

    /// The generation parameters.
    #[must_use]
    pub fn config(&self) -> &MapConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_window_intersection() {
        let r = Rect { id: 0, x0: 10.0, y0: 10.0, x1: 20.0, y1: 20.0 };
        assert!(r.intersects_window(0.0, 0.0, 15.0, 15.0));
        assert!(r.intersects_window(20.0, 20.0, 30.0, 30.0)); // touching corner
        assert!(!r.intersects_window(21.0, 0.0, 30.0, 30.0));
        assert!(r.intersects_window(12.0, 12.0, 13.0, 13.0)); // window inside rect
    }

    #[test]
    fn rect_distance() {
        let r = Rect { id: 0, x0: 10.0, y0: 10.0, x1: 20.0, y1: 20.0 };
        assert_eq!(r.distance_to(15.0, 15.0), 0.0); // inside
        assert_eq!(r.distance_to(25.0, 15.0), 5.0); // right of
        assert_eq!(r.distance_to(15.0, 5.0), 5.0); // below
        let d = r.distance_to(23.0, 24.0); // diagonal from corner (20,20)
        assert!((d - 5.0).abs() < 1e-9);
    }

    #[test]
    fn generation_is_deterministic_and_in_bounds() {
        let cfg = MapConfig { objects: 500, ..MapConfig::default() };
        let a = SpatialDatabase::generate(cfg).unwrap();
        let b = SpatialDatabase::generate(cfg).unwrap();
        assert_eq!(a.index().cell_object_counts(), b.index().cell_object_counts());
        assert!(a.pool().disk().page_count() > 0);
    }

    #[test]
    fn clusters_create_density_skew() {
        let cfg = MapConfig { objects: 2000, clusters: 3, ..MapConfig::default() };
        let db = SpatialDatabase::generate(cfg).unwrap();
        let counts = db.index().cell_object_counts();
        let max = counts.iter().copied().max().unwrap();
        let empty = counts.iter().filter(|&&c| c == 0).count();
        assert!(max > 100, "densest cell {max}");
        assert!(empty > counts.len() / 4, "{empty} empty cells of {}", counts.len());
    }
}
