//! A paged R-tree spatial index, bulk-loaded with the Sort-Tile-Recursive
//! (STR) algorithm.
//!
//! Oracle Spatial — the engine behind the paper's real spatial UDFs — is
//! R-tree based; the grid file in [`crate::spatial::GridIndex`] is the
//! simpler substrate. Having both lets the harness show that the cost
//! model learns whatever cost surface the access method induces: the same
//! UDF over a different index is simply a different surface.
//!
//! Every tree node is one heap-file record; traversals read node records
//! through the buffer pool, so query cost is real page traffic exactly as
//! with the grid index.
//!
//! Node wire format (little-endian):
//! `u8 is_leaf, u16 n, n × entry` where a leaf entry is
//! `u32 object_id, 4 × f32 mbr` (20 B) and an internal entry is
//! `u64 child_page, u16 child_slot, 4 × f32 mbr` (26 B).

use crate::cost::ExecutionCost;
use crate::spatial::map::{generate_rects, MapConfig, Rect};
use crate::udf::{Udf, UdfError};
use mlq_core::Space;
use mlq_storage::{BufferPool, DiskSim, HeapFile, HeapFileBuilder, PageId, RecordId, StorageError};
use std::sync::Arc;

/// Entries per node. 38 leaf entries (or 30 internal) stay within one
/// ~800-byte record, several records per page.
const NODE_CAPACITY: usize = 38;

/// A bounding box in f32, as stored.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Mbr {
    x0: f32,
    y0: f32,
    x1: f32,
    y1: f32,
}

impl Mbr {
    fn of_rect(r: &Rect) -> Mbr {
        Mbr { x0: r.x0, y0: r.y0, x1: r.x1, y1: r.y1 }
    }

    fn union(&self, other: &Mbr) -> Mbr {
        Mbr {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    fn intersects(&self, wx0: f64, wy0: f64, wx1: f64, wy1: f64) -> bool {
        f64::from(self.x0) <= wx1
            && wx0 <= f64::from(self.x1)
            && f64::from(self.y0) <= wy1
            && wy0 <= f64::from(self.y1)
    }

    fn write(&self, out: &mut Vec<u8>) {
        for v in [self.x0, self.y0, self.x1, self.y1] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn read(buf: &[u8]) -> Mbr {
        let f = |i: usize| f32::from_le_bytes(buf[4 * i..4 * i + 4].try_into().expect("sized"));
        Mbr { x0: f(0), y0: f(1), x1: f(2), y1: f(3) }
    }
}

enum NodeEntry {
    Leaf { id: u32, mbr: Mbr },
    Internal { child: RecordId, mbr: Mbr },
}

fn encode_node(is_leaf: bool, entries: &[NodeEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(3 + entries.len() * 26);
    out.push(u8::from(is_leaf));
    out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
    for e in entries {
        match e {
            NodeEntry::Leaf { id, mbr } => {
                out.extend_from_slice(&id.to_le_bytes());
                mbr.write(&mut out);
            }
            NodeEntry::Internal { child, mbr } => {
                out.extend_from_slice(&child.page.0.to_le_bytes());
                out.extend_from_slice(&child.slot.to_le_bytes());
                mbr.write(&mut out);
            }
        }
    }
    out
}

/// The paged R-tree.
#[derive(Debug)]
pub struct RTreeIndex {
    file: HeapFile,
    root: Option<RecordId>,
    height: usize,
    objects: usize,
}

impl RTreeIndex {
    /// STR bulk load: sort by x into vertical slabs, sort each slab by y,
    /// pack leaves of `NODE_CAPACITY` (38) entries, then build parent levels the same
    /// way over node MBR centers until one root remains.
    ///
    /// # Errors
    ///
    /// Propagates page-encoding failures.
    pub fn build(disk: &mut DiskSim, rects: &[Rect]) -> Result<Self, StorageError> {
        let mut builder = HeapFileBuilder::new(disk);

        if rects.is_empty() {
            let file = builder.finish()?;
            return Ok(RTreeIndex { file, root: None, height: 0, objects: 0 });
        }

        // --- Leaf level.
        let mut sorted: Vec<&Rect> = rects.iter().collect();
        let leaf_count = rects.len().div_ceil(NODE_CAPACITY);
        let slabs = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slab = rects.len().div_ceil(slabs);
        sorted.sort_by(|a, b| (a.x0 + a.x1).total_cmp(&(b.x0 + b.x1)));
        let mut level: Vec<(RecordId, Mbr)> = Vec::new();
        for slab in sorted.chunks(per_slab.max(1)) {
            let mut slab: Vec<&Rect> = slab.to_vec();
            slab.sort_by(|a, b| (a.y0 + a.y1).total_cmp(&(b.y0 + b.y1)));
            for group in slab.chunks(NODE_CAPACITY) {
                let entries: Vec<NodeEntry> = group
                    .iter()
                    .map(|r| NodeEntry::Leaf { id: r.id, mbr: Mbr::of_rect(r) })
                    .collect();
                let mbr = group
                    .iter()
                    .map(|r| Mbr::of_rect(r))
                    .reduce(|a, b| a.union(&b))
                    .expect("non-empty group");
                let rid = builder.append(&encode_node(true, &entries))?;
                level.push((rid, mbr));
            }
        }

        // --- Internal levels.
        let mut height = 1usize;
        while level.len() > 1 {
            height += 1;
            let node_count = level.len().div_ceil(NODE_CAPACITY);
            let slabs = (node_count as f64).sqrt().ceil() as usize;
            let per_slab = level.len().div_ceil(slabs);
            level.sort_by(|a, b| (a.1.x0 + a.1.x1).total_cmp(&(b.1.x0 + b.1.x1)));
            let mut next: Vec<(RecordId, Mbr)> = Vec::new();
            // chunks() needs an owned snapshot since we rebuild `level`.
            let snapshot: Vec<(RecordId, Mbr)> = level.clone();
            for slab in snapshot.chunks(per_slab.max(1)) {
                let mut slab: Vec<&(RecordId, Mbr)> = slab.iter().collect();
                slab.sort_by(|a, b| (a.1.y0 + a.1.y1).total_cmp(&(b.1.y0 + b.1.y1)));
                for group in slab.chunks(NODE_CAPACITY) {
                    let entries: Vec<NodeEntry> = group
                        .iter()
                        .map(|(rid, mbr)| NodeEntry::Internal { child: *rid, mbr: *mbr })
                        .collect();
                    let mbr = group
                        .iter()
                        .map(|(_, m)| *m)
                        .reduce(|a, b| a.union(&b))
                        .expect("non-empty group");
                    let rid = builder.append(&encode_node(false, &entries))?;
                    next.push((rid, mbr));
                }
            }
            level = next;
        }

        let root = Some(level[0].0);
        let file = builder.finish()?;
        Ok(RTreeIndex { file, root, height, objects: rects.len() })
    }

    /// Number of indexed objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects
    }

    /// True when the index holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects == 0
    }

    /// Tree height in levels (0 for an empty index).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The heap file backing the index (diagnostics).
    #[must_use]
    pub fn file(&self) -> &HeapFile {
        &self.file
    }

    /// Window query: ids of objects whose MBR intersects the closed
    /// window, plus the CPU work (entries tested). IO cost is observable
    /// through the pool's stats, as everywhere else.
    ///
    /// # Errors
    ///
    /// Propagates page-read and decode failures.
    pub fn window(
        &self,
        pool: &BufferPool,
        wx0: f64,
        wy0: f64,
        wx1: f64,
        wy1: f64,
    ) -> Result<(Vec<u32>, f64), StorageError> {
        let mut out = Vec::new();
        let mut cpu = 1.0;
        let Some(root) = self.root else {
            return Ok((out, cpu));
        };
        let mut stack = vec![root];
        while let Some(rid) = stack.pop() {
            let record = self.file.read(pool, rid)?;
            let (is_leaf, n) = decode_header(&record)?;
            for i in 0..n {
                cpu += 1.0;
                if is_leaf {
                    let (id, mbr) = decode_leaf_entry(&record, i)?;
                    if mbr.intersects(wx0, wy0, wx1, wy1) {
                        out.push(id);
                    }
                } else {
                    let (child, mbr) = decode_internal_entry(&record, i)?;
                    if mbr.intersects(wx0, wy0, wx1, wy1) {
                        stack.push(child);
                    }
                }
            }
        }
        Ok((out, cpu))
    }
}

const LEAF_ENTRY: usize = 20;
const INTERNAL_ENTRY: usize = 26;

fn decode_header(record: &[u8]) -> Result<(bool, usize), StorageError> {
    if record.len() < 3 {
        return Err(StorageError::CorruptPage { reason: "truncated r-tree node" });
    }
    let is_leaf = record[0] == 1;
    let n = u16::from_le_bytes(record[1..3].try_into().expect("sized")) as usize;
    let entry = if is_leaf { LEAF_ENTRY } else { INTERNAL_ENTRY };
    if record.len() < 3 + n * entry {
        return Err(StorageError::CorruptPage { reason: "r-tree node shorter than header claims" });
    }
    Ok((is_leaf, n))
}

fn decode_leaf_entry(record: &[u8], i: usize) -> Result<(u32, Mbr), StorageError> {
    let at = 3 + i * LEAF_ENTRY;
    let id = u32::from_le_bytes(record[at..at + 4].try_into().expect("sized"));
    Ok((id, Mbr::read(&record[at + 4..at + 20])))
}

fn decode_internal_entry(record: &[u8], i: usize) -> Result<(RecordId, Mbr), StorageError> {
    let at = 3 + i * INTERNAL_ENTRY;
    let page = u64::from_le_bytes(record[at..at + 8].try_into().expect("sized"));
    let slot = u16::from_le_bytes(record[at + 8..at + 10].try_into().expect("sized"));
    Ok((RecordId { page: PageId(page), slot }, Mbr::read(&record[at + 10..at + 26])))
}

/// The R-tree spatial substrate: the same synthetic map as
/// [`crate::spatial::SpatialDatabase`], indexed by an STR-bulk-loaded
/// R-tree instead of a grid file.
#[derive(Debug)]
pub struct RTreeDatabase {
    pool: BufferPool,
    index: RTreeIndex,
}

impl RTreeDatabase {
    /// Generates the map (identical to the grid database for the same
    /// `config`) and bulk-loads the R-tree.
    ///
    /// # Errors
    ///
    /// Propagates page-encoding failures.
    pub fn generate(config: MapConfig) -> Result<Self, StorageError> {
        let rects = generate_rects(&config);
        let mut disk = DiskSim::new();
        let index = RTreeIndex::build(&mut disk, &rects)?;
        let pool = BufferPool::new(disk, config.pool_pages);
        Ok(RTreeDatabase { pool, index })
    }

    /// The buffer pool.
    #[must_use]
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The R-tree index.
    #[must_use]
    pub fn index(&self) -> &RTreeIndex {
        &self.index
    }
}

/// WIN over the R-tree: the same UDF semantics as
/// [`crate::spatial::WindowSearch`], a different access method — and
/// therefore a different cost surface for the model to learn.
#[derive(Debug, Clone)]
pub struct WindowSearchRTree {
    db: Arc<RTreeDatabase>,
    space: Space,
}

impl WindowSearchRTree {
    /// Builds the UDF over a shared R-tree database.
    #[must_use]
    pub fn new(db: Arc<RTreeDatabase>) -> Self {
        let space = Space::new(vec![0.0, 0.0, 0.0, 0.0], vec![1000.0, 1000.0, 200.0, 200.0])
            .expect("bounds are valid");
        WindowSearchRTree { db, space }
    }
}

impl Udf for WindowSearchRTree {
    fn name(&self) -> &'static str {
        "WIN-R"
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn reset_io_state(&self) {
        self.db.pool().clear();
    }

    fn execute(&self, point: &[f64]) -> Result<ExecutionCost, UdfError> {
        self.space.grid_point(point)?;
        let (x, y) = (point[0].clamp(0.0, 1000.0), point[1].clamp(0.0, 1000.0));
        let w = point[2].clamp(0.0, 200.0);
        let h = point[3].clamp(0.0, 200.0);
        let pool = self.db.pool();
        let before = pool.stats();
        let (ids, cpu) =
            self.db.index().window(pool, x - w / 2.0, y - h / 2.0, x + w / 2.0, y + h / 2.0)?;
        let io = pool.stats().since(&before).misses as f64;
        Ok(ExecutionCost { cpu, io, results: ids.len() as u64 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::map::{MapConfig, SpatialDatabase};

    fn rect(id: u32, x0: f32, y0: f32, x1: f32, y1: f32) -> Rect {
        Rect { id, x0, y0, x1, y1 }
    }

    fn build(rects: &[Rect]) -> (RTreeIndex, BufferPool) {
        let mut disk = DiskSim::new();
        let index = RTreeIndex::build(&mut disk, rects).unwrap();
        (index, BufferPool::new(disk, 16))
    }

    #[test]
    fn empty_index_answers_empty() {
        let (index, pool) = build(&[]);
        assert!(index.is_empty());
        assert_eq!(index.height(), 0);
        let (ids, _) = index.window(&pool, 0.0, 0.0, 1000.0, 1000.0).unwrap();
        assert!(ids.is_empty());
    }

    #[test]
    fn single_node_tree() {
        let rects: Vec<Rect> = (0..10)
            .map(|i| {
                let base = i as f32 * 50.0;
                rect(i, base, base, base + 10.0, base + 10.0)
            })
            .collect();
        let (index, pool) = build(&rects);
        assert_eq!(index.height(), 1);
        let (mut ids, cpu) = index.window(&pool, 0.0, 0.0, 120.0, 120.0).unwrap();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]); // bases 0, 50, 100 intersect
        assert!(cpu > 1.0);
    }

    #[test]
    fn multi_level_tree_builds_and_prunes() {
        // 2000 objects force at least two levels (38 per leaf).
        let rects: Vec<Rect> = (0..2000)
            .map(|i| {
                let x = (i % 50) as f32 * 20.0;
                let y = (i / 50) as f32 * 25.0;
                rect(i, x, y, x + 5.0, y + 5.0)
            })
            .collect();
        let (index, pool) = build(&rects);
        assert!(index.height() >= 2, "height {}", index.height());

        // A tiny window must touch far fewer entries than the whole tree.
        let (_, small_cpu) = index.window(&pool, 100.0, 100.0, 140.0, 140.0).unwrap();
        let (all, full_cpu) = index.window(&pool, 0.0, 0.0, 1000.0, 1000.0).unwrap();
        assert_eq!(all.len(), 2000);
        assert!(
            small_cpu * 4.0 < full_cpu,
            "pruning must pay: small {small_cpu} vs full {full_cpu}"
        );
    }

    #[test]
    fn rtree_udf_matches_grid_udf_semantics() {
        use crate::spatial::map::SpatialDatabase;
        use crate::spatial::search::WindowSearch;
        let config = MapConfig { objects: 800, clusters: 3, seed: 4, ..MapConfig::default() };
        let grid_db = Arc::new(SpatialDatabase::generate(config).unwrap());
        let rtree_db = Arc::new(RTreeDatabase::generate(config).unwrap());
        let grid_win = WindowSearch::new(grid_db);
        let rtree_win = WindowSearchRTree::new(rtree_db);
        for p in
            [[100.0, 100.0, 150.0, 150.0], [500.0, 500.0, 200.0, 50.0], [900.0, 50.0, 80.0, 120.0]]
        {
            let a = grid_win.execute(&p).unwrap();
            let b = rtree_win.execute(&p).unwrap();
            assert_eq!(a.results, b.results, "same map, same window, same answer: {p:?}");
        }
    }

    /// Cross-validation: the R-tree and the grid index answer every window
    /// query identically over the same generated map.
    #[test]
    fn rtree_agrees_with_grid_index() {
        let db = SpatialDatabase::generate(MapConfig {
            objects: 1200,
            clusters: 5,
            seed: 9,
            ..MapConfig::default()
        })
        .unwrap();
        // Rebuild the same rectangles into an R-tree: collect them from
        // the grid (deduplicated).
        let mut rects: Vec<Rect> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let grid = db.index().grid();
        for cy in 0..grid {
            for cx in 0..grid {
                for r in db.index().objects_in_cell(db.pool(), cx, cy).unwrap() {
                    if seen.insert(r.id) {
                        rects.push(r);
                    }
                }
            }
        }
        let (rtree, pool) = build(&rects);

        for (wx, wy, w, h) in [
            (100.0, 100.0, 150.0, 150.0),
            (500.0, 500.0, 300.0, 50.0),
            (0.0, 0.0, 1000.0, 1000.0),
            (900.0, 10.0, 90.0, 400.0),
        ] {
            let (wx0, wy0, wx1, wy1) = (wx, wy, wx + w, wy + h);
            let mut from_rtree = rtree.window(&pool, wx0, wy0, wx1, wy1).unwrap().0;
            from_rtree.sort_unstable();
            let mut from_grid: Vec<u32> = Vec::new();
            let mut dedup = std::collections::HashSet::new();
            let (cx0, cy0) = db.index().cell_of(wx0, wy0);
            let (cx1, cy1) = db.index().cell_of(wx1, wy1);
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    for r in db.index().objects_in_cell(db.pool(), cx, cy).unwrap() {
                        if dedup.insert(r.id) && r.intersects_window(wx0, wy0, wx1, wy1) {
                            from_grid.push(r.id);
                        }
                    }
                }
            }
            from_grid.sort_unstable();
            assert_eq!(from_rtree, from_grid, "window ({wx},{wy},{w},{h})");
        }
    }

    #[test]
    fn io_cost_flows_through_the_pool() {
        let rects: Vec<Rect> = (0..3000)
            .map(|i| {
                let x = (i % 60) as f32 * 16.0;
                let y = (i / 60) as f32 * 20.0;
                rect(i, x, y, x + 4.0, y + 4.0)
            })
            .collect();
        let mut disk = DiskSim::new();
        let index = RTreeIndex::build(&mut disk, &rects).unwrap();
        let pool = BufferPool::new(disk, 2); // tiny cache
        pool.clear();
        let before = pool.stats();
        index.window(&pool, 0.0, 0.0, 1000.0, 1000.0).unwrap();
        let cost = pool.stats().since(&before);
        assert!(cost.misses > 0, "full scan must fetch pages");
    }
}
