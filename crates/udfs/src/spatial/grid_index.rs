//! The paged grid (fixed-grid) spatial index.
//!
//! The world is divided into `G × G` equal cells; each cell's object list
//! (every rectangle whose bounding box overlaps the cell) is serialized
//! into ≤[`CHUNK_BYTES`] heap-file records. The cell → chunk directory is
//! in-memory metadata; object bytes are always read through the buffer
//! pool, so query cost is real page traffic.
//!
//! Entry wire format (little-endian): `u32 id, 4 × f32 edges` = 20 bytes.

use crate::spatial::map::{Rect, WORLD};
use mlq_storage::{BufferPool, DiskSim, HeapFile, HeapFileBuilder, RecordId, StorageError};

/// Maximum cell-chunk payload in bytes (51 entries per chunk).
pub(crate) const CHUNK_BYTES: usize = 1020;

const ENTRY_BYTES: usize = 20;

/// A paged fixed-grid spatial index.
#[derive(Debug)]
pub struct GridIndex {
    file: HeapFile,
    /// `directory[cy * grid + cx]` = chunk addresses of that cell.
    directory: Vec<Vec<RecordId>>,
    /// Objects per cell (dictionary metadata, no IO).
    counts: Vec<u32>,
    grid: usize,
}

impl GridIndex {
    /// Builds the index for `rects` at `grid × grid` resolution on `disk`.
    ///
    /// # Errors
    ///
    /// Propagates page-encoding failures.
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0`.
    pub fn build(disk: &mut DiskSim, grid: usize, rects: &[Rect]) -> Result<Self, StorageError> {
        assert!(grid > 0, "grid needs at least one cell");
        let mut cells: Vec<Vec<&Rect>> = vec![Vec::new(); grid * grid];
        for r in rects {
            let (cx0, cy0) = Self::cell_of_static(grid, f64::from(r.x0), f64::from(r.y0));
            let (cx1, cy1) = Self::cell_of_static(grid, f64::from(r.x1), f64::from(r.y1));
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    cells[cy * grid + cx].push(r);
                }
            }
        }

        let mut builder = HeapFileBuilder::new(disk);
        let mut directory = Vec::with_capacity(cells.len());
        let mut counts = Vec::with_capacity(cells.len());
        let mut chunk: Vec<u8> = Vec::with_capacity(CHUNK_BYTES);
        for cell in &cells {
            let mut addrs = Vec::new();
            chunk.clear();
            for r in cell {
                if chunk.len() + ENTRY_BYTES > CHUNK_BYTES {
                    addrs.push(builder.append(&chunk)?);
                    chunk.clear();
                }
                chunk.extend_from_slice(&r.id.to_le_bytes());
                for v in [r.x0, r.y0, r.x1, r.y1] {
                    chunk.extend_from_slice(&v.to_le_bytes());
                }
            }
            if !chunk.is_empty() {
                addrs.push(builder.append(&chunk)?);
                chunk.clear();
            }
            directory.push(addrs);
            counts.push(cell.len() as u32);
        }
        let file = builder.finish()?;
        Ok(GridIndex { file, directory, counts, grid })
    }

    /// Grid resolution (cells per side).
    #[must_use]
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Side length of one cell in world units.
    #[must_use]
    pub fn cell_size(&self) -> f64 {
        WORLD / self.grid as f64
    }

    /// The cell containing world point `(x, y)` (clamped to the world).
    #[must_use]
    pub fn cell_of(&self, x: f64, y: f64) -> (usize, usize) {
        Self::cell_of_static(self.grid, x, y)
    }

    fn cell_of_static(grid: usize, x: f64, y: f64) -> (usize, usize) {
        let clamp = |v: f64| -> usize {
            let cell = (v.clamp(0.0, WORLD) / WORLD * grid as f64) as usize;
            cell.min(grid - 1)
        };
        (clamp(x), clamp(y))
    }

    /// Per-cell object counts (diagnostics, no IO).
    #[must_use]
    pub fn cell_object_counts(&self) -> &[u32] {
        &self.counts
    }

    /// Reads every object overlapping cell `(cx, cy)` through `pool`.
    ///
    /// # Errors
    ///
    /// Propagates page-read and decode failures.
    ///
    /// # Panics
    ///
    /// Panics when the cell coordinates are outside the grid.
    pub fn objects_in_cell(
        &self,
        pool: &BufferPool,
        cx: usize,
        cy: usize,
    ) -> Result<Vec<Rect>, StorageError> {
        assert!(cx < self.grid && cy < self.grid, "cell out of bounds");
        let mut out = Vec::with_capacity(self.counts[cy * self.grid + cx] as usize);
        for &addr in &self.directory[cy * self.grid + cx] {
            let chunk = self.file.read(pool, addr)?;
            decode_chunk(&chunk, &mut out)?;
        }
        Ok(out)
    }

    /// The heap file backing the index (diagnostics).
    #[must_use]
    pub fn file(&self) -> &HeapFile {
        &self.file
    }
}

fn decode_chunk(chunk: &[u8], out: &mut Vec<Rect>) -> Result<(), StorageError> {
    if !chunk.len().is_multiple_of(ENTRY_BYTES) {
        return Err(StorageError::CorruptPage { reason: "grid chunk not entry-aligned" });
    }
    for entry in chunk.chunks_exact(ENTRY_BYTES) {
        let id = u32::from_le_bytes(entry[0..4].try_into().expect("sized"));
        let f =
            |i: usize| f32::from_le_bytes(entry[4 + 4 * i..8 + 4 * i].try_into().expect("sized"));
        out.push(Rect { id, x0: f(0), y0: f(1), x1: f(2), y1: f(3) });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(id: u32, x0: f32, y0: f32, x1: f32, y1: f32) -> Rect {
        Rect { id, x0, y0, x1, y1 }
    }

    fn build(grid: usize, rects: &[Rect]) -> (GridIndex, BufferPool) {
        let mut disk = DiskSim::new();
        let index = GridIndex::build(&mut disk, grid, rects).unwrap();
        (index, BufferPool::new(disk, 16))
    }

    #[test]
    fn cell_of_maps_world_to_grid() {
        let (index, _) = build(4, &[]);
        assert_eq!(index.cell_of(0.0, 0.0), (0, 0));
        assert_eq!(index.cell_of(999.0, 999.0), (3, 3));
        assert_eq!(index.cell_of(1000.0, 1000.0), (3, 3)); // boundary clamps
        assert_eq!(index.cell_of(-5.0, 2000.0), (0, 3)); // out-of-world clamps
        assert_eq!(index.cell_of(250.0, 499.0), (1, 1));
    }

    #[test]
    fn objects_land_in_their_cells() {
        let rects = vec![
            rect(0, 10.0, 10.0, 20.0, 20.0),     // cell (0,0) only
            rect(1, 900.0, 900.0, 910.0, 910.0), // cell (3,3) only
        ];
        let (index, pool) = build(4, &rects);
        let c00 = index.objects_in_cell(&pool, 0, 0).unwrap();
        assert_eq!(c00.len(), 1);
        assert_eq!(c00[0], rects[0]);
        let c33 = index.objects_in_cell(&pool, 3, 3).unwrap();
        assert_eq!(c33, vec![rects[1]]);
        assert!(index.objects_in_cell(&pool, 2, 1).unwrap().is_empty());
    }

    #[test]
    fn spanning_objects_appear_in_all_overlapped_cells() {
        // Crosses the 250-boundary in x: cells (0,0) and (1,0).
        let r = rect(7, 240.0, 10.0, 260.0, 20.0);
        let (index, pool) = build(4, &[r]);
        assert_eq!(index.objects_in_cell(&pool, 0, 0).unwrap(), vec![r]);
        assert_eq!(index.objects_in_cell(&pool, 1, 0).unwrap(), vec![r]);
        assert_eq!(index.cell_object_counts()[0], 1);
        assert_eq!(index.cell_object_counts()[1], 1);
    }

    #[test]
    fn dense_cells_chunk_across_records() {
        // 200 rects in one cell: 200 * 20 B = 4000 B > one chunk.
        let rects: Vec<Rect> = (0..200).map(|i| rect(i, 10.0, 10.0, 12.0, 12.0)).collect();
        let (index, pool) = build(4, &rects);
        let got = index.objects_in_cell(&pool, 0, 0).unwrap();
        assert_eq!(got.len(), 200);
        assert_eq!(got, rects);
    }

    #[test]
    fn io_cost_scales_with_cell_density() {
        let mut rects: Vec<Rect> = (0..800).map(|i| rect(i, 10.0, 10.0, 12.0, 12.0)).collect();
        rects.push(rect(9999, 900.0, 900.0, 901.0, 901.0));
        let (index, pool) = build(4, &rects);
        pool.clear();
        let before = pool.stats();
        index.objects_in_cell(&pool, 0, 0).unwrap();
        let dense = pool.stats().since(&before).misses;
        pool.clear();
        let before = pool.stats();
        index.objects_in_cell(&pool, 3, 3).unwrap();
        let sparse = pool.stats().since(&before).misses;
        assert!(dense > sparse, "dense {dense} vs sparse {sparse}");
    }
}
