//! Keyword-based text search UDFs.
//!
//! The paper's three text UDFs (simple, threshold, proximity keyword
//! search) ran on Oracle Text over 36,422 Reuters news articles. This
//! module substitutes a synthetic corpus whose statistics mirror real news
//! text — Zipfian term frequencies, variable document lengths — stored as a
//! positional inverted index in slotted pages, so executing a search
//! performs real paged posting-list scans.
//!
//! The UDFs' raw input argument is a keyword; the *transformation* `T`
//! (paper §3) maps it to its frequency rank, the cost variable the models
//! are trained over.

mod corpus;
mod index;
mod search;

pub use corpus::{CorpusConfig, TextDatabase};
pub use index::{InvertedIndex, PostingEntry};
pub use search::{ProximitySearch, SimpleSearch, ThresholdSearch};
