//! The positional inverted index, stored in slotted pages.
//!
//! Each term's posting list is a doc-ordered sequence of entries
//! `(doc_id, positions…)`, chunked into ≤[`CHUNK_BYTES`] records so one
//! page holds several chunks and long lists span many pages. The term →
//! chunk-address directory stays in memory, standing in for a DBMS's
//! cached dictionary; all posting bytes are read through the buffer pool,
//! so scan costs are real page traffic.
//!
//! Entry wire format (little-endian): `u32 doc_id, u16 n_positions,
//! n_positions × u16 position`. Entries never straddle chunk boundaries.

use mlq_storage::{BufferPool, DiskSim, HeapFile, HeapFileBuilder, RecordId, StorageError};
use serde::{Deserialize, Serialize};

/// Maximum posting-chunk payload in bytes.
pub(crate) const CHUNK_BYTES: usize = 1024;

/// One decoded posting entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostingEntry {
    /// Document id.
    pub doc: u32,
    /// Token positions of the term within the document, ascending.
    pub positions: Vec<u16>,
}

/// The paged positional inverted index.
#[derive(Debug)]
pub struct InvertedIndex {
    file: HeapFile,
    /// `directory[term]` = chunk addresses, in doc order.
    directory: Vec<Vec<RecordId>>,
    /// `doc_freq[term]` = number of documents containing the term
    /// (dictionary metadata, available without IO).
    doc_freq: Vec<u32>,
}

impl InvertedIndex {
    /// Serializes per-term postings into heap-file chunks on `disk`.
    ///
    /// # Errors
    ///
    /// Propagates page-encoding failures.
    pub fn build(
        disk: &mut DiskSim,
        postings: &[Vec<(u32, Vec<u16>)>],
    ) -> Result<Self, StorageError> {
        let mut builder = HeapFileBuilder::new(disk);
        let mut directory = Vec::with_capacity(postings.len());
        let mut doc_freq = Vec::with_capacity(postings.len());
        let mut chunk: Vec<u8> = Vec::with_capacity(CHUNK_BYTES);
        for list in postings {
            let mut addrs = Vec::new();
            chunk.clear();
            for (doc, positions) in list {
                let entry_len = 4 + 2 + 2 * positions.len();
                assert!(entry_len <= CHUNK_BYTES, "posting entry exceeds a chunk");
                if chunk.len() + entry_len > CHUNK_BYTES {
                    addrs.push(builder.append(&chunk)?);
                    chunk.clear();
                }
                chunk.extend_from_slice(&doc.to_le_bytes());
                let n = u16::try_from(positions.len()).expect("positions fit u16");
                chunk.extend_from_slice(&n.to_le_bytes());
                for &p in positions {
                    chunk.extend_from_slice(&p.to_le_bytes());
                }
            }
            if !chunk.is_empty() {
                addrs.push(builder.append(&chunk)?);
                chunk.clear();
            }
            directory.push(addrs);
            doc_freq.push(list.len() as u32);
        }
        let file = builder.finish()?;
        Ok(InvertedIndex { file, directory, doc_freq })
    }

    /// Number of terms in the dictionary.
    #[must_use]
    pub fn terms(&self) -> usize {
        self.directory.len()
    }

    /// Document frequency of `term` from the in-memory dictionary (no IO).
    /// Unknown terms have frequency 0.
    #[must_use]
    pub fn doc_freq(&self, term: usize) -> usize {
        self.doc_freq.get(term).copied().unwrap_or(0) as usize
    }

    /// Reads and decodes the full posting list of `term` through `pool`.
    /// Unknown terms yield an empty list.
    ///
    /// # Errors
    ///
    /// Propagates page-read and decode failures.
    pub fn postings(
        &self,
        pool: &BufferPool,
        term: usize,
    ) -> Result<Vec<PostingEntry>, StorageError> {
        let Some(addrs) = self.directory.get(term) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::with_capacity(self.doc_freq(term));
        for &addr in addrs {
            let chunk = self.file.read(pool, addr)?;
            decode_chunk(&chunk, &mut out)?;
        }
        Ok(out)
    }

    /// The heap file backing the index (diagnostics).
    #[must_use]
    pub fn file(&self) -> &HeapFile {
        &self.file
    }
}

fn decode_chunk(chunk: &[u8], out: &mut Vec<PostingEntry>) -> Result<(), StorageError> {
    let mut at = 0usize;
    while at < chunk.len() {
        let doc_bytes: [u8; 4] = chunk
            .get(at..at + 4)
            .and_then(|s| s.try_into().ok())
            .ok_or(StorageError::CorruptPage { reason: "truncated posting doc id" })?;
        let n_bytes: [u8; 2] = chunk
            .get(at + 4..at + 6)
            .and_then(|s| s.try_into().ok())
            .ok_or(StorageError::CorruptPage { reason: "truncated posting count" })?;
        let doc = u32::from_le_bytes(doc_bytes);
        let n = u16::from_le_bytes(n_bytes) as usize;
        at += 6;
        let end = at + 2 * n;
        let raw = chunk
            .get(at..end)
            .ok_or(StorageError::CorruptPage { reason: "truncated positions" })?;
        let positions = raw.chunks_exact(2).map(|b| u16::from_le_bytes([b[0], b[1]])).collect();
        out.push(PostingEntry { doc, positions });
        at = end;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(postings: &[Vec<(u32, Vec<u16>)>]) -> (InvertedIndex, BufferPool) {
        let mut disk = DiskSim::new();
        let index = InvertedIndex::build(&mut disk, postings).unwrap();
        (index, BufferPool::new(disk, 8))
    }

    #[test]
    fn roundtrip_small_index() {
        let postings = vec![vec![(0, vec![1, 5]), (3, vec![0])], vec![], vec![(1, vec![2])]];
        let (index, pool) = build(&postings);
        assert_eq!(index.terms(), 3);
        assert_eq!(index.doc_freq(0), 2);
        assert_eq!(index.doc_freq(1), 0);
        assert_eq!(index.doc_freq(2), 1);

        let list = index.postings(&pool, 0).unwrap();
        assert_eq!(
            list,
            vec![
                PostingEntry { doc: 0, positions: vec![1, 5] },
                PostingEntry { doc: 3, positions: vec![0] },
            ]
        );
        assert!(index.postings(&pool, 1).unwrap().is_empty());
    }

    #[test]
    fn unknown_term_is_empty() {
        let (index, pool) = build(&[vec![(0, vec![0])]]);
        assert!(index.postings(&pool, 99).unwrap().is_empty());
        assert_eq!(index.doc_freq(99), 0);
    }

    #[test]
    fn long_lists_chunk_across_records_and_pages() {
        // 3000 docs, 1 position each: 8 bytes/entry, 128 per chunk.
        let list: Vec<(u32, Vec<u16>)> = (0..3000).map(|d| (d, vec![7])).collect();
        let (index, pool) = build(std::slice::from_ref(&list));
        let decoded = index.postings(&pool, 0).unwrap();
        assert_eq!(decoded.len(), 3000);
        for (e, (doc, positions)) in decoded.iter().zip(&list) {
            assert_eq!(e.doc, *doc);
            assert_eq!(&e.positions, positions);
        }
        // Chunking actually happened, across >1 page.
        assert!(index.file().pages().len() > 1, "{} pages", index.file().pages().len());
    }

    #[test]
    fn scanning_long_list_costs_more_io_than_short() {
        let long: Vec<(u32, Vec<u16>)> = (0..5000).map(|d| (d, vec![1])).collect();
        let short = vec![(0u32, vec![1u16])];
        let (index, pool) = build(&[long, short]);
        pool.clear();
        let before = pool.stats();
        index.postings(&pool, 0).unwrap();
        let long_cost = pool.stats().since(&before).misses;
        pool.clear();
        let before = pool.stats();
        index.postings(&pool, 1).unwrap();
        let short_cost = pool.stats().since(&before).misses;
        assert!(long_cost > short_cost, "long {long_cost} vs short {short_cost}");
    }

    #[test]
    fn positions_with_many_occurrences_roundtrip() {
        let positions: Vec<u16> = (0..400).collect();
        let (index, pool) = build(&[vec![(42, positions.clone())]]);
        let decoded = index.postings(&pool, 0).unwrap();
        assert_eq!(decoded[0].doc, 42);
        assert_eq!(decoded[0].positions, positions);
    }
}
