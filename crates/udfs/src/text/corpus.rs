//! Synthetic document corpus generation and the text database bundle.

use crate::text::index::InvertedIndex;
use mlq_storage::{BufferPool, DiskSim, StorageError};
use mlq_synth::dist::Zipf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Corpus shape parameters.
///
/// Defaults give a corpus small enough for tests yet large enough that
/// posting lists span many pages for frequent terms (the property that
/// makes cost depend strongly on term rank).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of documents (paper: 36,422 Reuters articles).
    pub docs: u32,
    /// Vocabulary size.
    pub vocab: u32,
    /// Average tokens per document; actual lengths are uniform in
    /// `[avg/2, 3·avg/2]`.
    pub avg_doc_len: u32,
    /// Zipf exponent of term frequencies (news text is close to 1).
    pub zipf_z: f64,
    /// Generation seed.
    pub seed: u64,
    /// Buffer-pool capacity in pages.
    pub pool_pages: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            docs: 2000,
            vocab: 1000,
            avg_doc_len: 120,
            zipf_z: 1.0,
            seed: 0,
            pool_pages: 64,
        }
    }
}

/// The text substrate: a positional inverted index over a synthetic corpus,
/// served through an LRU buffer pool.
#[derive(Debug)]
pub struct TextDatabase {
    pool: BufferPool,
    index: InvertedIndex,
    config: CorpusConfig,
}

impl TextDatabase {
    /// Generates a corpus per `config`, builds the inverted index into
    /// paged storage, and wraps it in a buffer pool.
    ///
    /// # Errors
    ///
    /// Propagates page-encoding failures from index construction.
    ///
    /// # Panics
    ///
    /// Panics on a zero-document, zero-vocabulary, or zero-length
    /// configuration.
    pub fn generate(config: CorpusConfig) -> Result<Self, StorageError> {
        assert!(config.docs > 0 && config.vocab > 0 && config.avg_doc_len > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let zipf = Zipf::new(config.vocab as usize, config.zipf_z);

        // positions[term] = (doc, positions-within-doc) pairs, doc-ordered.
        let mut postings: Vec<Vec<(u32, Vec<u16>)>> = vec![Vec::new(); config.vocab as usize];
        let lo = config.avg_doc_len / 2;
        let hi = config.avg_doc_len + config.avg_doc_len / 2;
        for doc in 0..config.docs {
            let len = rng.random_range(lo..=hi);
            for pos in 0..len.min(u32::from(u16::MAX)) {
                let term = zipf.sample(&mut rng);
                match postings[term].last_mut() {
                    Some((d, positions)) if *d == doc => positions.push(pos as u16),
                    _ => postings[term].push((doc, vec![pos as u16])),
                }
            }
        }

        let mut disk = DiskSim::new();
        let index = InvertedIndex::build(&mut disk, &postings)?;
        let pool = BufferPool::new(disk, config.pool_pages);
        Ok(TextDatabase { pool, index, config })
    }

    /// The buffer pool (IO-cost measurements read its stats).
    #[must_use]
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The inverted index.
    #[must_use]
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The generation parameters.
    #[must_use]
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Vocabulary size (the range of the rank model variable).
    #[must_use]
    pub fn vocab(&self) -> u32 {
        self.config.vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CorpusConfig {
        CorpusConfig { docs: 200, vocab: 100, avg_doc_len: 40, ..CorpusConfig::default() }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TextDatabase::generate(tiny()).unwrap();
        let b = TextDatabase::generate(tiny()).unwrap();
        for term in 0..100 {
            assert_eq!(a.index().doc_freq(term), b.index().doc_freq(term));
        }
    }

    #[test]
    fn frequent_terms_have_longer_postings() {
        let db = TextDatabase::generate(tiny()).unwrap();
        // Rank 0 (most frequent) must dominate a deep tail rank.
        let head = db.index().doc_freq(0);
        let tail = db.index().doc_freq(99);
        assert!(head > tail, "head df {head} vs tail df {tail}");
        // And the head term should appear in most documents.
        assert!(head > 100, "head term df {head} of 200 docs");
    }

    #[test]
    fn document_frequencies_bounded_by_corpus() {
        let db = TextDatabase::generate(tiny()).unwrap();
        for term in 0..db.vocab() as usize {
            assert!(db.index().doc_freq(term) <= 200);
        }
    }

    #[test]
    fn index_pages_are_materialized_on_disk() {
        let db = TextDatabase::generate(tiny()).unwrap();
        assert!(db.pool().disk().page_count() > 0);
    }
}
