//! The three keyword-search UDFs (paper §5.1: "simple, threshold,
//! proximity" text search).
//!
//! Model-variable conventions (the transformation `T` of paper §3):
//! keyword arguments are mapped to their frequency *rank* in the
//! vocabulary (rank 0 = most frequent), because posting-list length — and
//! therefore cost — is a function of rank, not of the keyword's spelling.

use crate::cost::ExecutionCost;
use crate::text::corpus::TextDatabase;
use crate::udf::{Udf, UdfError};
use mlq_core::Space;
use std::sync::Arc;

/// Clamps a model coordinate onto an integer in `[0, max]`.
fn as_index(x: f64, max: usize) -> usize {
    if x.is_nan() {
        return 0;
    }
    (x.max(0.0) as usize).min(max)
}

/// SIMPLE: how many documents contain the keyword?
///
/// Model space: 1-D, the keyword's frequency rank.
#[derive(Debug, Clone)]
pub struct SimpleSearch {
    db: Arc<TextDatabase>,
    space: Space,
}

impl SimpleSearch {
    /// Builds the UDF over a shared text database.
    #[must_use]
    pub fn new(db: Arc<TextDatabase>) -> Self {
        let space =
            Space::new(vec![0.0], vec![f64::from(db.vocab())]).expect("vocab bounds are valid");
        SimpleSearch { db, space }
    }
}

impl Udf for SimpleSearch {
    fn name(&self) -> &'static str {
        "SIMPLE"
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn reset_io_state(&self) {
        self.db.pool().clear();
    }

    fn execute(&self, point: &[f64]) -> Result<ExecutionCost, UdfError> {
        self.space.grid_point(point)?; // validates dimensionality/finiteness
        let term = as_index(point[0], self.db.vocab() as usize - 1);
        let before = self.db.pool().stats();
        let postings = self.db.index().postings(self.db.pool(), term)?;
        let mut cpu = 1.0;
        let mut matches = 0u64;
        for entry in &postings {
            cpu += 1.0;
            if !entry.positions.is_empty() {
                matches += 1;
            }
        }
        let io = self.db.pool().stats().since(&before).misses as f64;
        Ok(ExecutionCost { cpu, io, results: matches })
    }
}

/// THRESHOLD: how many documents contain the keyword at least `t` times?
///
/// Model space: 2-D, (keyword rank, occurrence threshold `t ∈ [1, 16]`).
#[derive(Debug, Clone)]
pub struct ThresholdSearch {
    db: Arc<TextDatabase>,
    space: Space,
}

impl ThresholdSearch {
    /// Largest threshold in the model space.
    pub const MAX_THRESHOLD: f64 = 16.0;

    /// Builds the UDF over a shared text database.
    #[must_use]
    pub fn new(db: Arc<TextDatabase>) -> Self {
        let space = Space::new(vec![0.0, 1.0], vec![f64::from(db.vocab()), Self::MAX_THRESHOLD])
            .expect("bounds are valid");
        ThresholdSearch { db, space }
    }
}

impl Udf for ThresholdSearch {
    fn name(&self) -> &'static str {
        "THRESH"
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn reset_io_state(&self) {
        self.db.pool().clear();
    }

    fn execute(&self, point: &[f64]) -> Result<ExecutionCost, UdfError> {
        self.space.grid_point(point)?;
        let term = as_index(point[0], self.db.vocab() as usize - 1);
        let threshold = as_index(point[1], Self::MAX_THRESHOLD as usize).max(1);
        let before = self.db.pool().stats();
        let postings = self.db.index().postings(self.db.pool(), term)?;
        let mut cpu = 1.0;
        let mut matches = 0u64;
        for entry in &postings {
            // Term frequency is counted by walking positions — the work a
            // real scorer does — so CPU cost grows with total occurrences.
            cpu += 1.0 + entry.positions.len() as f64;
            if entry.positions.len() >= threshold {
                matches += 1;
            }
        }
        let io = self.db.pool().stats().since(&before).misses as f64;
        Ok(ExecutionCost { cpu, io, results: matches })
    }
}

/// PROXIMITY: how many documents contain both keywords within a window of
/// `w` token positions?
///
/// Model space: 3-D, (rank of keyword A, rank of keyword B, window
/// `w ∈ [1, 50]`).
#[derive(Debug, Clone)]
pub struct ProximitySearch {
    db: Arc<TextDatabase>,
    space: Space,
}

impl ProximitySearch {
    /// Largest window in the model space.
    pub const MAX_WINDOW: f64 = 50.0;

    /// Builds the UDF over a shared text database.
    #[must_use]
    pub fn new(db: Arc<TextDatabase>) -> Self {
        let v = f64::from(db.vocab());
        let space = Space::new(vec![0.0, 0.0, 1.0], vec![v, v, Self::MAX_WINDOW])
            .expect("bounds are valid");
        ProximitySearch { db, space }
    }
}

impl Udf for ProximitySearch {
    fn name(&self) -> &'static str {
        "PROX"
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn reset_io_state(&self) {
        self.db.pool().clear();
    }

    fn execute(&self, point: &[f64]) -> Result<ExecutionCost, UdfError> {
        self.space.grid_point(point)?;
        let max_rank = self.db.vocab() as usize - 1;
        let term_a = as_index(point[0], max_rank);
        let term_b = as_index(point[1], max_rank);
        let window = as_index(point[2], Self::MAX_WINDOW as usize).max(1) as i32;

        let before = self.db.pool().stats();
        let list_a = self.db.index().postings(self.db.pool(), term_a)?;
        let list_b = self.db.index().postings(self.db.pool(), term_b)?;
        let mut cpu = 1.0 + list_a.len() as f64 + list_b.len() as f64;
        let mut matches = 0u64;
        // Doc-ordered merge join of the two posting lists.
        let (mut i, mut j) = (0usize, 0usize);
        while i < list_a.len() && j < list_b.len() {
            cpu += 1.0;
            match list_a[i].doc.cmp(&list_b[j].doc) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Two-pointer position merge within the document.
                    let (pa, pb) = (&list_a[i].positions, &list_b[j].positions);
                    cpu += (pa.len() + pb.len()) as f64;
                    if within_window(pa, pb, window) {
                        matches += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        let io = self.db.pool().stats().since(&before).misses as f64;
        Ok(ExecutionCost { cpu, io, results: matches })
    }
}

/// True when some position of `a` and some position of `b` differ by at
/// most `window`. Both inputs ascending.
fn within_window(a: &[u16], b: &[u16], window: i32) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let d = i32::from(a[i]) - i32::from(b[j]);
        if d.abs() <= window {
            return true;
        }
        if d < 0 {
            i += 1;
        } else {
            j += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::corpus::CorpusConfig;

    fn db() -> Arc<TextDatabase> {
        Arc::new(
            TextDatabase::generate(CorpusConfig {
                docs: 300,
                vocab: 200,
                avg_doc_len: 60,
                ..CorpusConfig::default()
            })
            .unwrap(),
        )
    }

    #[test]
    fn within_window_logic() {
        assert!(within_window(&[5], &[8], 3));
        assert!(!within_window(&[5], &[9], 3));
        assert!(within_window(&[1, 100], &[98], 2));
        assert!(!within_window(&[], &[1], 10));
        assert!(within_window(&[7], &[7], 0));
    }

    #[test]
    fn simple_cost_decreases_with_rank() {
        let db = db();
        let udf = SimpleSearch::new(Arc::clone(&db));
        let head = udf.execute(&[0.0]).unwrap();
        let tail = udf.execute(&[199.0]).unwrap();
        assert!(
            head.cpu > tail.cpu,
            "frequent term must cost more: head {} vs tail {}",
            head.cpu,
            tail.cpu
        );
    }

    #[test]
    fn simple_cpu_cost_is_deterministic() {
        let db = db();
        let udf = SimpleSearch::new(db);
        let a = udf.execute(&[10.0]).unwrap();
        let b = udf.execute(&[10.0]).unwrap();
        assert_eq!(a.cpu, b.cpu, "CPU cost is a pure function of the point");
    }

    #[test]
    fn simple_io_cost_is_noisy_but_cpu_is_not() {
        // First execution on a cold cache misses; re-execution hits.
        let db = db();
        let udf = SimpleSearch::new(Arc::clone(&db));
        db.pool().clear();
        let cold = udf.execute(&[0.0]).unwrap();
        let warm = udf.execute(&[0.0]).unwrap();
        assert!(cold.io > warm.io, "cold {} vs warm {}", cold.io, warm.io);
        assert_eq!(cold.cpu, warm.cpu);
    }

    #[test]
    fn threshold_counts_fewer_docs_at_higher_thresholds() {
        let db = db();
        let udf = ThresholdSearch::new(db);
        // Cost is driven by the scan, so CPU should be ~equal across t for
        // the same term; both must execute fine.
        let c1 = udf.execute(&[0.0, 1.0]).unwrap();
        let c9 = udf.execute(&[0.0, 9.0]).unwrap();
        assert_eq!(c1.cpu, c9.cpu);
        assert!(c1.cpu > 1.0);
    }

    #[test]
    fn proximity_cost_tracks_both_lists() {
        let db = db();
        let udf = ProximitySearch::new(db);
        let both_frequent = udf.execute(&[0.0, 1.0, 10.0]).unwrap();
        let both_rare = udf.execute(&[198.0, 199.0, 10.0]).unwrap();
        assert!(both_frequent.cpu > both_rare.cpu);
    }

    #[test]
    fn simple_result_cardinality_equals_document_frequency() {
        let db = db();
        let udf = SimpleSearch::new(Arc::clone(&db));
        for rank in [0usize, 10, 150] {
            let out = udf.execute(&[rank as f64]).unwrap();
            assert_eq!(out.results as usize, db.index().doc_freq(rank), "rank {rank}");
        }
    }

    #[test]
    fn threshold_results_shrink_as_threshold_rises() {
        let db = db();
        let udf = ThresholdSearch::new(db);
        let loose = udf.execute(&[0.0, 1.0]).unwrap().results;
        let strict = udf.execute(&[0.0, 9.0]).unwrap().results;
        assert!(strict <= loose, "strict {strict} vs loose {loose}");
    }

    #[test]
    fn udfs_report_model_spaces() {
        let db = db();
        assert_eq!(SimpleSearch::new(Arc::clone(&db)).space().dims(), 1);
        assert_eq!(ThresholdSearch::new(Arc::clone(&db)).space().dims(), 2);
        assert_eq!(ProximitySearch::new(db).space().dims(), 3);
    }

    #[test]
    fn execute_rejects_malformed_points() {
        let db = db();
        let udf = SimpleSearch::new(db);
        assert!(udf.execute(&[1.0, 2.0]).is_err());
        assert!(udf.execute(&[f64::NAN]).is_err());
    }

    #[test]
    fn out_of_range_points_clamp() {
        let db = db();
        let udf = SimpleSearch::new(db);
        let a = udf.execute(&[1e9]).unwrap();
        let b = udf.execute(&[199.0]).unwrap();
        assert_eq!(a.cpu, b.cpu);
    }
}
