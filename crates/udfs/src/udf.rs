//! The executable-UDF interface.

use crate::cost::ExecutionCost;
use mlq_core::{MlqError, Space};
use mlq_storage::StorageError;
use std::fmt;

/// Errors raised by UDF execution.
#[derive(Debug)]
pub enum UdfError {
    /// The query point does not match the UDF's model space.
    BadPoint(MlqError),
    /// The underlying storage failed.
    Storage(StorageError),
}

impl fmt::Display for UdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdfError::BadPoint(e) => write!(f, "bad query point: {e}"),
            UdfError::Storage(e) => write!(f, "storage failure: {e}"),
        }
    }
}

impl std::error::Error for UdfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UdfError::BadPoint(e) => Some(e),
            UdfError::Storage(e) => Some(e),
        }
    }
}

impl From<MlqError> for UdfError {
    fn from(e: MlqError) -> Self {
        UdfError::BadPoint(e)
    }
}

impl From<StorageError> for UdfError {
    fn from(e: StorageError) -> Self {
        UdfError::Storage(e)
    }
}

/// An executable user-defined function whose cost is being modeled.
///
/// `execute` takes the UDF's *model variables* (the paper's cost variables
/// `c_1..c_k`, produced by the transformation `T` from the raw input
/// arguments — e.g. a keyword is transformed to its frequency rank) and
/// performs the real work against paged storage, reporting what it cost.
pub trait Udf {
    /// Display name ("SIMPLE", "WIN", ...).
    fn name(&self) -> &'static str;

    /// The model-variable space (dimensionality and ranges).
    fn space(&self) -> &Space;

    /// Executes the UDF at `point` and reports the observed cost.
    ///
    /// # Errors
    ///
    /// [`UdfError::BadPoint`] for malformed points, [`UdfError::Storage`]
    /// when the substrate fails.
    fn execute(&self, point: &[f64]) -> Result<ExecutionCost, UdfError>;

    /// Resets any cached IO state (cold buffer cache), so an experiment
    /// can measure every modeling method from the same starting point.
    /// Default: nothing to reset.
    fn reset_io_state(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = UdfError::BadPoint(MlqError::NonFiniteValue { context: "x" });
        assert!(e.to_string().contains("bad query point"));
        assert!(std::error::Error::source(&e).is_some());
        let e = UdfError::Storage(StorageError::CorruptPage { reason: "r" });
        assert!(e.to_string().contains("storage failure"));
    }
}
