//! Property tests pinning down the `mlq-obs` contracts the rest of the
//! workspace leans on:
//!
//! * a histogram's observation count is *defined* as the sum of its
//!   bucket counts (no separate field to drift), and every recorded
//!   value lands in the bucket whose bounds bracket it;
//! * [`RegistrySnapshot::merge`] is commutative and associative, so
//!   per-run and per-shard snapshots can be combined in any order;
//! * the Prometheus text exposition round-trips exactly through
//!   [`RegistrySnapshot::parse_prometheus_text`] — what `mlq-bench
//!   --metrics-out` writes is what a consumer reads back.

use mlq_obs::{
    bucket_index, bucket_upper_bound, labeled, Registry, RegistrySnapshot, HISTOGRAM_BUCKETS,
};
use proptest::prelude::*;

/// One generated registry's worth of raw instrument data. Fixed metric
/// names with generated values give merges real key overlap.
#[derive(Debug, Clone)]
struct RegistryData {
    counters: Vec<u64>,
    gauges: Vec<f64>,
    histogram: Vec<u64>,
}

fn arb_registry_data() -> impl Strategy<Value = RegistryData> {
    (
        prop::collection::vec(0u64..1_000_000, 1..4),
        prop::collection::vec(-1e9f64..1e9, 1..4),
        prop::collection::vec(0u64..1u64 << 40, 0..24),
    )
        .prop_map(|(counters, gauges, histogram)| RegistryData { counters, gauges, histogram })
}

/// Materializes the generated data as a real registry and snapshots it.
fn snapshot_of(data: &RegistryData) -> RegistrySnapshot {
    let registry = Registry::new();
    for (i, &v) in data.counters.iter().enumerate() {
        let udf = format!("UDF{i}");
        registry.counter(&labeled("mlq_test_applied", &[("udf", &udf)])).add(v);
    }
    for (i, &v) in data.gauges.iter().enumerate() {
        registry.gauge(&format!("mlq_test_depth_{i}")).set(v);
    }
    let h = registry.histogram("mlq_test_latency_ns");
    for &v in &data.histogram {
        h.record(v);
    }
    registry.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_count_is_the_sum_of_its_buckets(
        values in prop::collection::vec(0u64..1u64 << 40, 0..200)
    ) {
        let registry = Registry::new();
        let h = registry.histogram("mlq_test_hist");
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        if let Some(&max) = values.iter().max() {
            // The top quantile is the bucket bound covering the maximum.
            prop_assert_eq!(
                snap.quantile(1.0),
                Some(bucket_upper_bound(bucket_index(max)))
            );
        } else {
            prop_assert_eq!(snap.quantile(1.0), None);
        }
    }

    #[test]
    fn every_value_lands_in_a_bucket_that_brackets_it(value in 0u64..u64::MAX) {
        let b = bucket_index(value);
        prop_assert!(b < HISTOGRAM_BUCKETS);
        prop_assert!(value <= bucket_upper_bound(b));
        if b > 0 && b < HISTOGRAM_BUCKETS - 1 {
            prop_assert!(value > bucket_upper_bound(b - 1));
        }
        // Bounds are strictly increasing, so buckets partition the axis.
        if b + 1 < HISTOGRAM_BUCKETS {
            prop_assert!(bucket_upper_bound(b) < bucket_upper_bound(b + 1));
        }
    }

    #[test]
    fn merge_is_commutative_and_associative(
        a in arb_registry_data(),
        b in arb_registry_data(),
        c in arb_registry_data(),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // c ⊕ (b ⊕ a): reversed order and reversed grouping.
        let mut right = sc.clone();
        right.merge(&sb);
        right.merge(&sa);
        prop_assert_eq!(&left, &right);

        // Counters add across the merge...
        let total: u64 = [&a, &b, &c].iter().flat_map(|d| d.counters.iter()).sum();
        prop_assert_eq!(left.sum_counters("mlq_test_applied"), total);
        // ...histograms concatenate...
        let observations = (a.histogram.len() + b.histogram.len() + c.histogram.len()) as u64;
        let merged_hist = left.histogram("mlq_test_latency_ns").expect("merged histogram");
        prop_assert_eq!(merged_hist.count(), observations);
        // ...and gauges keep the high-water mark.
        let peak = [&a, &b, &c]
            .iter()
            .filter_map(|d| d.gauges.first().copied())
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(left.gauge("mlq_test_depth_0"), Some(peak));
    }

    #[test]
    fn prometheus_text_round_trips_exactly(data in arb_registry_data()) {
        let snap = snapshot_of(&data);
        let text = snap.to_prometheus_text();
        let parsed = RegistrySnapshot::parse_prometheus_text(&text)
            .expect("own exposition must parse");
        prop_assert_eq!(&parsed, &snap);
        // And the round-trip is a fixed point: render again, same text.
        prop_assert_eq!(parsed.to_prometheus_text(), text);
    }
}

#[test]
fn merging_into_an_empty_snapshot_copies_it() {
    let data =
        RegistryData { counters: vec![3, 7], gauges: vec![2.5], histogram: vec![1, 10, 100] };
    let snap = snapshot_of(&data);
    let mut empty = RegistrySnapshot::default();
    empty.merge(&snap);
    assert_eq!(empty, snap);
}
