//! The robustness acceptance suite: deterministic storage faults, an
//! adversarial feedback stream against the guarded model, and
//! property-based corruption tests for the snapshot envelope.
//!
//! Everything here is seed-driven — the same faults fire at the same
//! operations on every run, on every platform — so a failure is a real
//! regression, never flake.

use mlq_core::{
    BreakerState, CostModel, GuardConfig, GuardedModel, InsertionStrategy, MemoryLimitedQuadtree,
    MlqConfig, MlqError, RestoreOutcome, Space,
};
use mlq_storage::{
    BufferPool, DiskSim, FaultConfig, FaultInjector, HeapFileBuilder, RetryPolicy, StorageError,
    PAGE_SIZE,
};
use proptest::prelude::*;

fn space() -> Space {
    Space::cube(2, 0.0, 1000.0).unwrap()
}

fn quadtree(budget: usize) -> MemoryLimitedQuadtree {
    let config = MlqConfig::builder(space())
        .memory_budget(budget)
        .strategy(InsertionStrategy::Lazy { alpha: 0.05 })
        .build()
        .unwrap();
    MemoryLimitedQuadtree::new(config).unwrap()
}

/// A quadtree whose backing storage can fault: observations consult a
/// seeded fault schedule and fail with [`MlqError::IoFault`] when the
/// "device" does — the failure mode the guard's circuit breaker exists
/// for.
struct StorageBackedModel {
    tree: MemoryLimitedQuadtree,
    faults: Option<FaultInjector>,
}

impl CostModel for StorageBackedModel {
    fn predict(&self, point: &[f64]) -> Result<Option<f64>, MlqError> {
        self.tree.predict(point)
    }

    fn observe(&mut self, point: &[f64], actual: f64) -> Result<(), MlqError> {
        if let Some(inj) = &mut self.faults {
            if inj.on_read() != mlq_storage::fault::ReadFault::None {
                return Err(MlqError::IoFault { reason: "backing page unavailable".into() });
            }
        }
        self.tree.insert(point, actual).map(|_| ())
    }

    fn memory_used(&self) -> usize {
        self.tree.bytes_used()
    }

    fn name(&self) -> String {
        "storage-backed".into()
    }
}

/// The headline scenario from the issue: a seeded 10 % storage fault
/// rate plus an adversarial feedback stream (NaNs, out-of-space points,
/// 100× outliers). The guarded model must never panic, must trip to its
/// fallback during a device outage while continuing to serve
/// predictions, and must return to `Closed` once the faults stop.
#[test]
fn guarded_model_survives_faults_and_adversarial_feedback() {
    let inner = StorageBackedModel { tree: quadtree(1 << 14), faults: None };
    let guard = GuardConfig { trip_threshold: 3, probe_after: 8, ..GuardConfig::default() };
    let mut model = GuardedModel::new(inner, space(), guard).unwrap();

    // A deterministic point/cost stream: clustered honest feedback.
    let honest = |i: u64| {
        let x = (i.wrapping_mul(97) % 1000) as f64;
        let y = (i.wrapping_mul(31) % 1000) as f64;
        ([x, y], 40.0 + (i % 9) as f64)
    };

    // Phase A — healthy warmup.
    for i in 0..200 {
        let (p, c) = honest(i);
        model.observe(&p, c).unwrap();
    }
    assert_eq!(model.state(), BreakerState::Closed);

    // Phase B — 10 % storage fault rate AND hostile values interleaved.
    let config = FaultConfig { seed: 0xFA17, read_error_rate: 0.10, ..FaultConfig::none() };
    model.inner_mut().faults = Some(FaultInjector::new(config).unwrap());
    let mut quarantined = 0u64;
    let mut rejected_values = 0u64;
    for i in 0..500u64 {
        let (p, c) = honest(i);
        // Every 7th observation is hostile, cycling three attack shapes.
        let result = match i % 21 {
            6 => model.observe(&p, f64::NAN),
            13 => model.observe(&[p[0] + 1e6, -1e6], c),
            20 => model.observe(&p, c * 100.0),
            _ => model.observe(&p, c),
        };
        match result {
            Ok(()) => {}
            Err(MlqError::FeedbackQuarantined { .. }) => quarantined += 1,
            Err(MlqError::NonFiniteValue { .. }) => rejected_values += 1,
            Err(other) => panic!("guard leaked an unexpected error: {other}"),
        }
        // Predictions keep flowing through faults and hostility alike —
        // and never reflect the 100x outliers.
        let predicted = model.predict(&p).unwrap();
        let predicted = predicted.expect("warmed-up model always has an answer");
        assert!(
            predicted.is_finite() && (0.0..500.0).contains(&predicted),
            "prediction {predicted} poisoned at step {i}"
        );
    }
    assert!(quarantined > 0, "100x outliers were never quarantined");
    assert!(rejected_values > 0, "NaN costs were never rejected");
    assert!(model.counters().clamped_points > 0, "out-of-space points were never clamped");

    // Phase C — total device outage: repeated inner failures trip the
    // breaker; the fallback keeps answering.
    let outage = FaultConfig { seed: 0xDEAD, read_error_rate: 1.0, ..FaultConfig::none() };
    model.inner_mut().faults = Some(FaultInjector::new(outage).unwrap());
    for i in 0..10 {
        let (p, c) = honest(i);
        model.observe(&p, c).unwrap();
    }
    assert_eq!(model.state(), BreakerState::Open, "outage did not trip the breaker");
    assert!(model.counters().trips >= 1);
    let during_outage = model.predict(&[500.0, 500.0]).unwrap();
    assert!(during_outage.is_some(), "fallback stopped serving during the outage");

    // Phase D — faults stop; the same guard instance probes its way
    // back: Open → HalfOpen → Closed.
    model.inner_mut().faults = None;
    for i in 0..300 {
        let (p, c) = honest(i);
        model.observe(&p, c).unwrap();
        if model.state() == BreakerState::Closed {
            break;
        }
    }
    assert_eq!(model.state(), BreakerState::Closed, "did not recover once faults stopped");
    assert!(model.counters().probes >= 1);
    model.inner().tree.check_invariants().unwrap();
}

/// The storage layer under a seeded 10 % fault rate: bounded retries
/// absorb every transient fault, the workload completes, and the fault
/// schedule is bit-for-bit reproducible across runs.
#[test]
fn heap_scans_survive_ten_percent_fault_rate_deterministically() {
    let run = |seed: u64| -> (u64, mlq_storage::FaultStats) {
        let mut disk = DiskSim::new();
        let mut builder = HeapFileBuilder::new(&mut disk);
        let mut rids = Vec::new();
        for i in 0..500u32 {
            let record = vec![(i % 251) as u8; 40 + (i as usize % 100)];
            rids.push(builder.append(&record).unwrap());
        }
        let file = builder.finish().unwrap();
        let config = FaultConfig {
            seed,
            read_error_rate: 0.10,
            bit_flip_rate: 0.0, // flips would corrupt records; tested separately
            ..FaultConfig::none()
        };
        disk.set_fault_injector(FaultInjector::new(config).unwrap());
        let pool = BufferPool::new(disk, 4)
            .with_retry_policy(RetryPolicy { max_attempts: 10, ..RetryPolicy::default() });
        let mut bytes_read = 0u64;
        for rid in &rids {
            bytes_read += file.read(&pool, *rid).unwrap().len() as u64;
        }
        let stats = pool.disk().fault_stats().unwrap();
        assert!(stats.read_errors > 0, "10 % rate never fired over {} reads", stats.reads_seen);
        assert!(pool.retry_stats().recovered > 0);
        assert_eq!(pool.retry_stats().exhausted, 0, "a retry budget of 10 should never exhaust");
        (bytes_read, stats)
    };
    let (bytes_a, stats_a) = run(0x10AD);
    let (bytes_b, stats_b) = run(0x10AD);
    assert_eq!(bytes_a, bytes_b);
    assert_eq!(stats_a, stats_b, "same seed must give the same fault schedule");
    let (_, stats_c) = run(0xBEEF);
    assert_ne!(stats_a, stats_c, "different seeds should differ");
}

/// Torn writes leave detectably-invalid pages, and a full rewrite
/// repairs them — the write-side contract the snapshot envelope's
/// atomic-rename strategy relies on.
#[test]
fn torn_page_writes_are_repaired_by_rewrite() {
    let mut disk = DiskSim::new();
    let id = disk.alloc(vec![0xAB; PAGE_SIZE]);
    let torn_only = FaultConfig { seed: 3, torn_write_rate: 1.0, ..FaultConfig::none() };
    disk.set_fault_injector(FaultInjector::new(torn_only).unwrap());
    let new_image = vec![0xCD; PAGE_SIZE];
    assert!(matches!(disk.write(id, &new_image), Err(StorageError::IoFault { op: "write", .. })));
    disk.clear_fault_injector();
    let torn = disk.read(id).unwrap();
    assert!(torn.contains(&0xAB) && torn.contains(&0xCD), "not torn");
    disk.write(id, &new_image).unwrap();
    assert!(disk.read(id).unwrap().iter().all(|&b| b == 0xCD));
}

fn trained(seed: u64) -> MemoryLimitedQuadtree {
    let mut m = quadtree(4096);
    for i in 0..400u64 {
        let x = (seed.wrapping_add(i).wrapping_mul(2_654_435_761) % 1000) as f64;
        let y = (seed.wrapping_add(i).wrapping_mul(40_503) % 1000) as f64;
        m.insert(&[x, y], (i % 23) as f64).unwrap();
    }
    m
}

fn fallback() -> MlqConfig {
    MlqConfig::builder(space())
        .memory_budget(4096)
        .strategy(InsertionStrategy::Lazy { alpha: 0.05 })
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte/bit mutations of a snapshot envelope never panic
    /// the restore path, and every restore either round-trips the model
    /// exactly or reports corruption — no silent half-restores.
    #[test]
    fn mutated_snapshots_restore_exactly_or_report_corruption(
        seed in 0u64..1000,
        flips in prop::collection::vec((0.0..1.0f64, 0u8..8), 1..6),
    ) {
        let original = trained(seed);
        let clean = original.snapshot().to_envelope();
        let mut bytes = clean.clone();
        for (frac, bit) in &flips {
            let idx = ((bytes.len() - 1) as f64 * frac) as usize;
            bytes[idx] ^= 1 << bit;
        }
        let outcome = MemoryLimitedQuadtree::restore(&bytes, fallback()).unwrap();
        if outcome.is_restored() {
            // Only reachable when the flips cancelled out exactly.
            prop_assert_eq!(&bytes, &clean, "corrupt bytes restored silently");
            let restored = outcome.into_model();
            restored.check_invariants().unwrap();
            prop_assert_eq!(restored.node_count(), original.node_count());
            prop_assert_eq!(restored.root_summary(), original.root_summary());
        }
    }

    /// Truncations at every length never panic and never silently
    /// restore.
    #[test]
    fn truncated_snapshots_never_restore(seed in 0u64..200, cut in 0.0..1.0f64) {
        let bytes = trained(seed).snapshot().to_envelope();
        let keep = ((bytes.len() - 1) as f64 * cut) as usize;
        let outcome = MemoryLimitedQuadtree::restore(&bytes[..keep], fallback()).unwrap();
        prop_assert!(!outcome.is_restored());
        if let RestoreOutcome::CorruptFellBackToFresh { model, .. } = outcome {
            model.check_invariants().unwrap();
        }
    }

    /// A clean round-trip always restores, and the restored tree passes
    /// the full invariant checker.
    #[test]
    fn clean_snapshots_always_restore(seed in 0u64..1000) {
        let original = trained(seed);
        let outcome =
            MemoryLimitedQuadtree::restore(&original.snapshot().to_envelope(), fallback())
                .unwrap();
        prop_assert!(outcome.is_restored());
        let restored = outcome.into_model();
        restored.check_invariants().unwrap();
        prop_assert_eq!(restored.node_count(), original.node_count());
    }

    /// Any feedback stream — points far outside the space, huge costs,
    /// tiny costs — leaves a guarded quadtree with intact invariants and
    /// finite predictions. The guard may reject individual observations;
    /// it must never corrupt the model or panic.
    #[test]
    fn guarded_inserts_preserve_invariants(
        stream in prop::collection::vec(
            (-2000.0..4000.0f64, -2000.0..4000.0f64, 0.0..1e9f64),
            1..200,
        ),
    ) {
        let mut g = GuardedModel::for_quadtree(quadtree(4096), GuardConfig::default()).unwrap();
        for (x, y, cost) in &stream {
            match g.observe(&[*x, *y], *cost) {
                Ok(()) | Err(MlqError::FeedbackQuarantined { .. }) => {}
                Err(other) => prop_assert!(false, "unexpected error: {other}"),
            }
        }
        g.inner().check_invariants().unwrap();
        let p = g.predict(&[500.0, 500.0]).unwrap();
        if let Some(v) = p {
            prop_assert!(v.is_finite());
        }
    }
}
