//! Property-based contracts every cost model must honour, checked across
//! the whole model zoo through the shared `CostModel` interface.

use mlq_core::Space;
use mlq_experiments::{build_model, Method};
use proptest::prelude::*;

const ALL_METHODS: [Method; 5] =
    [Method::MlqE, Method::MlqL, Method::ShH, Method::ShW, Method::GlobalAvg];

fn arb_points(n: usize) -> impl Strategy<Value = Vec<(Vec<f64>, f64)>> {
    prop::collection::vec((prop::collection::vec(0.0..1000.0f64, 2), 0.0..1e4f64), 1..n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Contract 1: malformed points are rejected by every model, never
    /// silently absorbed.
    #[test]
    fn models_reject_malformed_points(value in 0.0..1e4f64) {
        let space = Space::cube(2, 0.0, 1000.0).unwrap();
        for method in ALL_METHODS {
            let mut model = build_model(method, &space, 4096, 1).unwrap();
            prop_assert!(model.predict(&[1.0]).is_err(), "{}", method.label());
            prop_assert!(model.predict(&[f64::NAN, 1.0]).is_err(), "{}", method.label());
            prop_assert!(model.observe(&[1.0], value).is_err(), "{}", method.label());
            prop_assert!(
                model.observe(&[1.0, 1.0, 1.0], value).is_err(),
                "{}",
                method.label()
            );
        }
    }

    /// Contract 2: after any observation stream, self-tuning models
    /// predict inside the observed value range (block averages cannot
    /// extrapolate), and memory stays within the configured budget.
    #[test]
    fn self_tuning_predictions_bounded_and_within_budget(
        data in arb_points(150),
        query in prop::collection::vec(0.0..1000.0f64, 2),
    ) {
        let space = Space::cube(2, 0.0, 1000.0).unwrap();
        let budget = 2048usize;
        let lo = data.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let hi = data.iter().map(|(_, v)| *v).fold(f64::NEG_INFINITY, f64::max);
        for method in [Method::MlqE, Method::MlqL, Method::GlobalAvg] {
            let mut model = build_model(method, &space, budget, 1).unwrap();
            for (p, v) in &data {
                model.observe(p, *v).unwrap();
            }
            let predicted = model
                .predict(&query)
                .unwrap()
                .expect("model has observations");
            prop_assert!(
                predicted >= lo - 1e-9 && predicted <= hi + 1e-9,
                "{}: {predicted} outside [{lo}, {hi}]",
                method.label()
            );
            prop_assert!(
                model.memory_used() <= budget,
                "{}: {} bytes over budget {budget}",
                method.label(),
                model.memory_used()
            );
        }
    }

    /// Contract 3: a model trained on constant data predicts that constant
    /// everywhere it has information.
    #[test]
    fn constant_surfaces_are_learned_exactly(
        points in prop::collection::vec(prop::collection::vec(0.0..1000.0f64, 2), 1..60),
        value in 0.1..1e4f64,
    ) {
        let space = Space::cube(2, 0.0, 1000.0).unwrap();
        for method in [Method::MlqE, Method::MlqL, Method::GlobalAvg] {
            let mut model = build_model(method, &space, 4096, 1).unwrap();
            for p in &points {
                model.observe(p, value).unwrap();
            }
            for p in &points {
                let predicted = model.predict(p).unwrap().unwrap();
                prop_assert!(
                    (predicted - value).abs() < 1e-9,
                    "{}: {predicted} != {value}",
                    method.label()
                );
            }
        }
    }

    /// Contract 4: static models honour fit-then-predict with bucket
    /// averages bounded by the training range.
    #[test]
    fn static_models_bounded_by_training_range(
        data in arb_points(150),
        query in prop::collection::vec(0.0..1000.0f64, 2),
    ) {
        let space = Space::cube(2, 0.0, 1000.0).unwrap();
        let lo = data.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let hi = data.iter().map(|(_, v)| *v).fold(f64::NEG_INFINITY, f64::max);
        for method in [Method::ShH, Method::ShW] {
            let mut model = build_model(method, &space, 2048, 1).unwrap();
            model.fit(&data).unwrap();
            let predicted = model.predict(&query).unwrap().expect("trained model");
            prop_assert!(
                predicted >= lo - 1e-9 && predicted <= hi + 1e-9,
                "{}: {predicted} outside [{lo}, {hi}]",
                method.label()
            );
        }
    }
}
