//! Contracts every bake-off contender must honour through the shared
//! [`Estimator`] seam — MLQ, the static histograms, and both learned
//! baselines, all built exactly the way the bake-off harness builds
//! them.
//!
//! Three contracts:
//!
//! 1. `predict_batch` is bit-for-bit the per-point `predict` loop — an
//!    implementation that diverges under batching would make the bake-off
//!    throughput probe measure a different function than the accuracy
//!    loop scores;
//! 2. every defined prediction is finite and non-negative — an optimizer
//!    ranking plans on NaN or negative costs is undefined behaviour at
//!    the planning level;
//! 3. observe-then-predict is deterministic under a fixed seed — two
//!    independently built estimators fed the identical stream agree on
//!    every subsequent prediction bit (this is what makes the committed
//!    bake-off baseline reproducible).

use mlq_core::Space;
use mlq_experiments::bakeoff::{build_contender, BakeoffConfig, Scenario, CONTENDERS, SCENARIOS};
use mlq_optimizer::{Estimator, FleetBudget, UdfCatalog};
use mlq_synth::QueryDistribution;
use mlq_udfs::ExecutionCost;

fn space() -> Space {
    Space::cube(4, 0.0, 1000.0).unwrap()
}

fn config() -> BakeoffConfig {
    BakeoffConfig { events: 400, ..BakeoffConfig::quick() }
}

/// Builds every contender, trained the bake-off way on `scenario`, and
/// hands each to `check`.
fn for_all_estimators(scenario: Scenario, check: impl Fn(&str, Box<dyn Estimator>)) {
    let space = space();
    let config = config();
    let data = scenario.materialize(&space, &config);
    for contender in CONTENDERS {
        let mut est = build_contender(contender, &space, &config, &data.training).unwrap();
        for e in &data.events {
            est.observe(&e.point, ExecutionCost { cpu: e.observed, io: 0.0, results: 0 }).unwrap();
        }
        check(contender.label(), est);
    }
}

fn probes(n: usize, seed: u64) -> Vec<Vec<f64>> {
    QueryDistribution::Uniform.generate(&space(), n, seed)
}

#[test]
fn predict_batch_is_bitwise_identical_to_per_point_predict() {
    for scenario in SCENARIOS {
        for_all_estimators(scenario, |label, est| {
            let probes = probes(200, 0xBA7C4);
            let batched = est.predict_batch(&probes).unwrap();
            for (i, p) in probes.iter().enumerate() {
                let single = est.predict(p).unwrap();
                assert_eq!(
                    single.map(f64::to_bits),
                    batched[i].map(f64::to_bits),
                    "{label} on {}: probe {i} diverges under batching",
                    scenario.label(),
                );
            }
        });
    }
}

#[test]
fn predictions_are_finite_and_non_negative() {
    // The adversarial flood feeds 50x-magnitude outliers; even then no
    // estimator may emit a NaN, infinite, or negative cost.
    for scenario in SCENARIOS {
        for_all_estimators(scenario, |label, est| {
            for (i, p) in probes(300, 0xF1217E).iter().enumerate() {
                if let Some(v) = est.predict(p).unwrap() {
                    assert!(
                        v.is_finite() && v >= 0.0,
                        "{label} on {}: probe {i} predicted {v}",
                        scenario.label(),
                    );
                }
            }
        });
    }
}

#[test]
fn observe_then_predict_is_deterministic_under_a_fixed_seed() {
    let space = space();
    let config = config();
    for scenario in SCENARIOS {
        let data = scenario.materialize(&space, &config);
        for contender in CONTENDERS {
            let run = || {
                let mut est = build_contender(contender, &space, &config, &data.training).unwrap();
                let mut trace: Vec<Option<u64>> = Vec::new();
                for e in &data.events {
                    trace.push(est.predict(&e.point).unwrap().map(f64::to_bits));
                    est.observe(&e.point, ExecutionCost { cpu: e.observed, io: 0.0, results: 0 })
                        .unwrap();
                }
                trace.extend(
                    est.predict_batch(&probes(100, 0xDE7))
                        .unwrap()
                        .into_iter()
                        .map(|p| p.map(f64::to_bits)),
                );
                trace
            };
            assert_eq!(
                run(),
                run(),
                "{} on {}: two identical runs disagree",
                contender.label(),
                scenario.label(),
            );
        }
    }
}

#[test]
fn memory_used_reports_nonzero_learned_state() {
    for_all_estimators(Scenario::UniformStatic, |label, est| {
        assert!(est.memory_used() > 0, "{label}: zero bytes after 400 feedbacks");
    });
}

/// Contract 4, for fleet-arbitrated catalogs: a hibernate → warm-restore
/// round trip is invisible through the estimator seam. Per scenario, a
/// catalog trained the bake-off way and hibernated whole must, once
/// woken by prediction, agree bit for bit with a never-hibernated twin —
/// and the woken predictions stay finite, non-negative, and
/// deterministic under a fixed seed.
#[test]
fn hibernate_roundtrip() {
    let space = space();
    let config = config();
    for scenario in SCENARIOS {
        let data = scenario.materialize(&space, &config);
        let train = |catalog: &mut UdfCatalog| {
            catalog.register("UDF", &space).unwrap();
            for e in &data.events {
                catalog
                    .observe(
                        "UDF",
                        &e.point,
                        ExecutionCost { cpu: e.observed, io: e.observed / 8.0, results: 0 },
                    )
                    .unwrap();
            }
        };
        let run_hibernated = || {
            let mut catalog = UdfCatalog::with_fleet_budget(
                1 << 16,
                FleetBudget { global_budget: 1 << 30, hibernate_after: 1 },
            )
            .unwrap();
            train(&mut catalog);
            // No prediction traffic since build: the first arbitration
            // round sees a zero delta and hibernates the model.
            let report = catalog.arbitrate().unwrap();
            assert_eq!(
                report.hibernated,
                vec!["UDF".to_string()],
                "{}: the cold model must hibernate",
                scenario.label(),
            );
            // Every predict below warm-restores on first touch.
            probes(150, 0x51EE9)
                .iter()
                .map(|p| catalog.predict_combined("UDF", p, 100.0).unwrap())
                .collect::<Vec<_>>()
        };
        let woken = run_hibernated();

        let mut twin = UdfCatalog::new(1 << 16);
        train(&mut twin);
        let reference: Vec<Option<f64>> = probes(150, 0x51EE9)
            .iter()
            .map(|p| twin.predict_combined("UDF", p, 100.0).unwrap())
            .collect();

        for (i, (got, want)) in woken.iter().zip(&reference).enumerate() {
            assert_eq!(
                got.map(f64::to_bits),
                want.map(f64::to_bits),
                "{}: probe {i} diverges after the hibernation round trip",
                scenario.label(),
            );
            if let Some(v) = got {
                assert!(
                    v.is_finite() && *v >= 0.0,
                    "{}: woken probe {i} predicted {v}",
                    scenario.label(),
                );
            }
        }
        // Seeded determinism: a second independently built-and-hibernated
        // catalog reproduces the woken trace bit for bit.
        let woken_bits: Vec<Option<u64>> = woken.iter().map(|p| p.map(f64::to_bits)).collect();
        let again: Vec<Option<u64>> =
            run_hibernated().iter().map(|p| p.map(f64::to_bits)).collect();
        assert_eq!(woken_bits, again, "{}: hibernated runs disagree", scenario.label());
    }
}
