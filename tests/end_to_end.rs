//! Cross-crate smoke tests: the full stack from paged storage up through
//! UDF execution, cost models, and the experiment runners.

use mlq_experiments::suite::real_udf_suite;
use mlq_experiments::{build_model, Method};
use mlq_metrics::OnlineNae;
use mlq_synth::QueryDistribution;
use mlq_udfs::CostKind;

/// Every real UDF's CPU cost can be learned online by every self-tuning
/// method to below the predict-zero floor.
#[test]
fn all_udfs_learnable_by_all_self_tuning_methods() {
    let udfs = real_udf_suite(0.05, 42).unwrap();
    for udf in &udfs {
        // The paper's Gaussian-random workload: clustered queries are the
        // setting the memory-limited quadtree is designed for. Under a
        // *uniform* 4-D workload at this budget the surface is statistically
        // unlearnable — even an oracle predicting the running mean scores
        // NAE ≈ 1.11 on WIN's spiky cost surface — so uniform sampling here
        // would test sampling luck, not the model.
        let queries = QueryDistribution::paper_gaussian_random().generate(udf.space(), 250, 7);
        for method in [Method::MlqE, Method::MlqL] {
            let mut model = build_model(method, udf.space(), 4096, 1).unwrap();
            let mut nae = OnlineNae::new();
            for q in &queries {
                let predicted = model.predict(q).unwrap().unwrap_or(0.0);
                let actual = udf.execute(q).unwrap().get(CostKind::Cpu);
                nae.record(predicted, actual);
                model.observe(q, actual).unwrap();
            }
            let v = nae.value().expect("CPU costs are positive");
            // A learning model must beat the predict-zero floor; on skewed
            // surfaces (e.g. WIN) a flat mean predictor cannot, which is
            // why GLOBAL-AVG is only a sanity floor, not a contender.
            assert!(
                v < 1.0,
                "{} with {}: NAE {v} not below predict-zero floor",
                udf.name(),
                method.label()
            );
        }
    }
}

/// MLQ beats the degenerate global-average model wherever the cost
/// surface has structure (here: SIMPLE, whose cost spans two orders of
/// magnitude across term ranks).
#[test]
fn mlq_beats_global_average_on_structured_surfaces() {
    let udfs = real_udf_suite(0.05, 43).unwrap();
    let simple = &udfs[0];
    assert_eq!(simple.name(), "SIMPLE");
    let queries = QueryDistribution::Uniform.generate(simple.space(), 600, 9);

    let run = |method: Method| -> f64 {
        let mut model = build_model(method, simple.space(), 8192, 1).unwrap();
        let mut nae = OnlineNae::new();
        for q in &queries {
            let predicted = model.predict(q).unwrap().unwrap_or(0.0);
            let actual = simple.execute(q).unwrap().get(CostKind::Cpu);
            nae.record(predicted, actual);
            model.observe(q, actual).unwrap();
        }
        nae.value().unwrap()
    };
    let mlq = run(Method::MlqE);
    let global = run(Method::GlobalAvg);
    assert!(mlq < global, "MLQ {mlq} must beat global average {global}");
}

/// The figure runners execute end to end at quick scale and produce fully
/// populated tables (regression net over the whole experiment surface).
#[test]
fn all_figure_runners_complete() {
    use mlq_experiments::{fig10, fig11, fig12, fig8, fig9, optimizer_exp};

    let t8 = fig8::run(&fig8::Fig8Config::quick()).unwrap();
    assert_eq!(t8.len(), 3);

    let t9 = fig9::run(&fig9::Fig9Config::quick()).unwrap();
    assert_eq!(t9.rows.len(), 12);

    let t10a = fig10::run_real(&fig10::Fig10Config::quick()).unwrap();
    let t10b = fig10::run_synthetic(&fig10::Fig10Config::quick()).unwrap();
    assert_eq!(t10a.rows.len(), 4);
    assert_eq!(t10b.rows.len(), 4);

    let t11a = fig11::run_real(&fig11::Fig11Config::quick()).unwrap();
    let t11b = fig11::run_synthetic(&fig11::Fig11Config::quick()).unwrap();
    assert_eq!(t11a.rows.len(), 6);
    assert_eq!(t11b.rows.len(), 2);

    let t12 = fig12::run_synthetic(&fig12::Fig12Config::quick()).unwrap();
    assert!(!t12.rows.is_empty());

    let topt = optimizer_exp::run(&optimizer_exp::OptimizerExpConfig::quick());
    assert_eq!(topt.rows.len(), 5);
}

/// Memory fairness across the method zoo: at the paper budget, no method
/// reports more memory than the budget.
#[test]
fn methods_respect_the_byte_budget() {
    let udfs = real_udf_suite(0.05, 44).unwrap();
    let win = udfs.iter().find(|u| u.name() == "WIN").unwrap();
    let queries = QueryDistribution::Uniform.generate(win.space(), 400, 3);
    for method in [Method::MlqE, Method::MlqL, Method::ShH, Method::ShW] {
        let mut model = build_model(method, win.space(), 1800, 1).unwrap();
        for q in &queries {
            let actual = win.execute(q).unwrap().get(CostKind::Cpu);
            model.observe(q, actual).unwrap();
        }
        // MLQ at d=4 gets the documented min-budget floor; everything
        // stays within a small constant of the nominal budget.
        assert!(model.memory_used() <= 1800, "{}: {} bytes", method.label(), model.memory_used());
    }
}
