//! The paper's core claim as an executable assertion: under workload
//! drift, the self-tuning MLQ recovers while the statically trained
//! histogram does not. ("Approaches that do not self-tune degrade in
//! prediction accuracy as the pattern of UDF execution varies greatly
//! from the pattern used to train the model." — §1)

use mlq_baselines::EquiHeightHistogram;
use mlq_core::{
    CostModel, InsertionStrategy, MemoryLimitedQuadtree, MlqConfig, Space, TrainableModel,
};
use mlq_metrics::OnlineNae;
use mlq_synth::{CostSurface, QueryDistribution, SyntheticUdf};

fn cluster(space: &Space, n: usize, seed: u64) -> Vec<Vec<f64>> {
    QueryDistribution::GaussianSequential { centroids: 1, std_frac: 0.05 }.generate(space, n, seed)
}

#[test]
fn mlq_recovers_from_workload_drift_static_does_not() {
    let space = Space::cube(2, 0.0, 1000.0).unwrap();
    // Dense surface: cost structure everywhere, so stale statistics hurt.
    let udf = SyntheticUdf::builder(space.clone()).peaks(300).radius_frac(0.15).seed(3).build();

    let phase1 = cluster(&space, 2000, 100);
    let phase2 = cluster(&space, 2000, 200);

    // Static SH-H: trained a-priori on the phase-1 workload (the paper's
    // own most-favourable protocol — same distribution as its test set).
    let mut shh = EquiHeightHistogram::with_budget(space.clone(), 1800).unwrap();
    let training: Vec<(Vec<f64>, f64)> = phase1.iter().map(|q| (q.clone(), udf.cost(q))).collect();
    shh.fit(&training).unwrap();

    // Self-tuning MLQ: no a-priori training at all.
    let config = MlqConfig::builder(space)
        .memory_budget(1800)
        .strategy(InsertionStrategy::Eager)
        .build()
        .unwrap();
    let mut mlq = MemoryLimitedQuadtree::new(config).unwrap();

    let mut run_phase = |queries: &[Vec<f64>], skip_warmup: usize| -> (f64, f64) {
        let mut mlq_nae = OnlineNae::new();
        let mut shh_nae = OnlineNae::new();
        for (i, q) in queries.iter().enumerate() {
            let actual = udf.cost(q);
            if i >= skip_warmup {
                mlq_nae.record(mlq.predict(q).unwrap().unwrap_or(0.0), actual);
                shh_nae.record(CostModel::predict(&shh, q).unwrap().unwrap_or(0.0), actual);
            }
            mlq.insert(q, actual).unwrap();
        }
        (mlq_nae.value().unwrap(), shh_nae.value().unwrap())
    };

    // Phase 1 (after MLQ's cold-start warm-up): the statically trained
    // model is competitive on its own training distribution.
    let (mlq_p1, shh_p1) = run_phase(&phase1, 500);
    assert!(mlq_p1 < 0.5, "MLQ learned phase 1: NAE {mlq_p1}");
    assert!(shh_p1 < 0.5, "SH-H was trained for phase 1: NAE {shh_p1}");

    // Phase 2, after drift (skipping MLQ's re-learning window): the
    // self-tuning model recovers, the static model is off by a large
    // factor.
    let (mlq_p2, shh_p2) = run_phase(&phase2, 1000);
    assert!(mlq_p2 < 1.0, "MLQ re-learned after drift: NAE {mlq_p2}");
    assert!(
        shh_p2 > 2.0 * mlq_p2,
        "static model must degrade badly after drift: SH-H {shh_p2} vs MLQ {mlq_p2}"
    );
}

/// The drift scenario under the *Gaussian-sequential* distribution of the
/// paper (3 centroids visited in blocks) — MLQ's windowed error spikes at
/// each shift and recovers within the block.
#[test]
fn gaussian_sequential_spikes_then_recovers() {
    let space = Space::cube(2, 0.0, 1000.0).unwrap();
    let udf = SyntheticUdf::builder(space.clone()).peaks(300).radius_frac(0.15).seed(8).build();
    let queries = QueryDistribution::paper_gaussian_sequential().generate(&space, 3000, 55);

    let config = MlqConfig::builder(space)
        .memory_budget(1800)
        .strategy(InsertionStrategy::Eager)
        .build()
        .unwrap();
    let mut model = MemoryLimitedQuadtree::new(config).unwrap();
    let mut curve = mlq_metrics::LearningCurve::new(100);
    for q in &queries {
        let predicted = model.predict(q).unwrap().unwrap_or(0.0);
        let actual = udf.cost(q);
        curve.record(predicted, actual);
        model.insert(q, actual).unwrap();
    }
    curve.finish();
    let naes: Vec<f64> = curve.points().iter().filter_map(|p| p.nae).collect();
    // Within each 1000-query block, the final windows beat the block's
    // first window (the shift spike).
    for block in naes.chunks(10) {
        let first = block[0];
        let tail_min = block[1..].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            tail_min <= first,
            "block must improve after its opening window: first {first}, tail {tail_min}"
        );
    }
}
