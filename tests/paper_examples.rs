//! The paper's worked examples (Figures 2, 5, and 7), encoded end to end
//! against the public API.

use mlq_core::{ssenc, InsertionStrategy, MemoryLimitedQuadtree, MlqConfig, Space, Summary};

/// Fig. 2: the quadtree fully partitions the space into `2^d` blocks per
/// level; in 2-D each node has up to four children, and a node with all
/// four is "full".
#[test]
fn figure2_node_fanout_and_fullness() {
    let space = Space::cube(2, 0.0, 1000.0).unwrap();
    assert_eq!(space.fanout(), 4);
    let config = MlqConfig::builder(space).memory_budget(1 << 16).lambda(1).build().unwrap();
    let mut tree = MemoryLimitedQuadtree::new(config).unwrap();
    // One point per quadrant makes the root a full node.
    for (x, y) in [(1.0, 1.0), (999.0, 1.0), (1.0, 999.0), (999.0, 999.0)] {
        tree.insert(&[x, y], 1.0).unwrap();
    }
    assert_eq!(tree.node_count(), 5);
    let root = tree.nodes().into_iter().find(|n| n.depth == 0).expect("root exists");
    assert_eq!(root.n_children, 4, "root is a full node");
    // TSSENC sums SSENC over non-full blocks only; the (full) root is
    // excluded and every leaf holds one point, so TSSENC = 0.
    assert_eq!(tree.tssenc(), 0.0);
}

/// Fig. 5, first insertion: P1 with value 5 lands in a fresh block B13;
/// its summary becomes (sum 5, count 1, sum-of-squares 25, SSE 0), and
/// with `th_SSE = 8` the block is not partitioned further.
#[test]
fn figure5_insert_p1_into_b13() {
    let b13 = Summary::from_values(&[5.0]);
    assert_eq!((b13.sum, b13.count, b13.sum_sq), (5.0, 1, 25.0));
    assert_eq!(b13.sse(), 0.0);
    assert!(b13.sse() < 8.0, "B13 stays a leaf under th_SSE = 8");
}

/// Fig. 5, second insertion: B14's updated SSE of 67 exceeds th_SSE = 8,
/// so B14 is partitioned. We reconstruct a value set with that exact SSE:
/// {1, 4, 12.2195...} has mean 5.7398 and SSE 67.
#[test]
fn figure5_insert_p2_partitions_b14() {
    // Find v such that SSE({1, 4, v}) = 67 (the updated B14 of the figure).
    // SSE = ss - s^2/c with s = 5 + v, ss = 17 + v^2, c = 3.
    // => 17 + v^2 - (5 + v)^2 / 3 = 67  =>  2v^2 - 10v - 175 = 0.
    let v = (10.0 + (100.0f64 + 8.0 * 175.0).sqrt()) / 4.0;
    let mut b14 = Summary::from_values(&[1.0, 4.0]);
    assert!(b14.sse() < 8.0, "B14 is a leaf before P2 arrives");
    b14.add(v);
    assert!((b14.sse() - 67.0).abs() < 1e-9, "updated SSE is 67");
    assert!(b14.sse() > 8.0, "so B14 must be partitioned");
}

/// The same dynamics through the real tree: a lazy tree whose threshold
/// is in force partitions a block exactly when its SSE crosses th_SSE.
#[test]
fn figure5_lazy_partitioning_through_the_tree() {
    let space = Space::cube(2, 0.0, 1000.0).unwrap();
    // alpha chosen so th_SSE is large; identical values never split,
    // divergent values do.
    let config = MlqConfig::builder(space)
        .memory_budget(1 << 16)
        .strategy(InsertionStrategy::Lazy { alpha: 0.5 })
        .build()
        .unwrap();
    let mut tree = MemoryLimitedQuadtree::new(config).unwrap();
    // Force one compression so the lazy threshold activates (Fig. 4
    // caption: Eq. 7 applies "after the first compression").
    for i in 0..2000 {
        let x = f64::from(i % 64) * 15.0;
        let y = f64::from(i / 64) * 15.0;
        tree.insert(&[x, y], f64::from(i % 23)).unwrap();
        if tree.has_compressed() {
            break;
        }
    }
    assert!(tree.has_compressed());
    assert!(tree.current_threshold() > 0.0);

    // A same-valued stream into one corner must not deepen the tree
    // (its SSE contribution is zero, below any positive threshold).
    let depth_before = tree.max_depth();
    let n_before = tree.node_count();
    for _ in 0..50 {
        tree.insert(&[2.0, 2.0], 11.0).unwrap();
    }
    assert_eq!(tree.max_depth(), depth_before);
    assert!(tree.node_count() <= n_before, "no new nodes for zero-SSE data");
}

/// Fig. 7: under block B14 (holding values 4 and 6, average 5), the two
/// leaves B141 = {4} and B144 = {6} both have SSEG = 1 — the tie the
/// paper breaks arbitrarily — and removing both raises TSSENC by exactly
/// their summed SSEG of 2.
#[test]
fn figure7_sseg_tie_and_tssenc_increase() {
    let b141 = Summary::from_values(&[4.0]);
    let b144 = Summary::from_values(&[6.0]);
    let mut b14 = b141;
    b14.merge(&b144);
    assert_eq!(b14.avg(), 5.0);
    assert_eq!(b141.sseg(b14.avg()), 1.0);
    assert_eq!(b144.sseg(b14.avg()), 1.0);

    // TSSENC contribution of the B14 subtree before removal: children
    // cover everything, so SSENC(B14) = 0 and the leaves are pure.
    let before = ssenc(&b14, &[b141, b144]) + ssenc(&b141, &[]) + ssenc(&b144, &[]);
    assert_eq!(before, 0.0);
    // After removing both leaves, B14's own SSE becomes uncovered error.
    let after = ssenc(&b14, &[]);
    assert_eq!(after - before, 2.0, "TSSENC increases by exactly 2");
}

/// Fig. 7 through the real tree: compression under equal SSEG evicts
/// leaves before subtrees whose removal costs more.
#[test]
fn figure7_compression_prefers_low_sseg_leaves() {
    let space = Space::cube(2, 0.0, 1000.0).unwrap();
    let config = MlqConfig::builder(space)
        .memory_budget(1 << 16)
        .lambda(2)
        .gamma(0.000_001)
        .build()
        .unwrap();
    let mut tree = MemoryLimitedQuadtree::new(config).unwrap();
    // Quadrant (0,0): two sub-blocks with values 4 and 6 (SSEG 1 each).
    tree.insert(&[100.0, 100.0], 4.0).unwrap();
    tree.insert(&[400.0, 400.0], 6.0).unwrap();
    // Quadrant (1,1): a leaf whose value diverges hard from the root
    // average (root avg of {4, 6, 100} = 36.67; SSEG >> 1).
    tree.insert(&[900.0, 900.0], 100.0).unwrap();

    let report = tree.compress();
    assert!(report.nodes_freed >= 1);
    // The divergent block survives: predicting at it stays exact.
    assert_eq!(tree.predict(&[900.0, 900.0]).unwrap(), Some(100.0));
    tree.check_invariants().unwrap();
}
