/root/repo/target/release/examples/nae_probe-c94ca9915251ddaf.d: examples/nae_probe.rs

/root/repo/target/release/examples/nae_probe-c94ca9915251ddaf: examples/nae_probe.rs

examples/nae_probe.rs:
