/root/repo/target/release/examples/_verify_drive-6e2cd180d1a7337f.d: examples/_verify_drive.rs

/root/repo/target/release/examples/_verify_drive-6e2cd180d1a7337f: examples/_verify_drive.rs

examples/_verify_drive.rs:
