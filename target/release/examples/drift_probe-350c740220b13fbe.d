/root/repo/target/release/examples/drift_probe-350c740220b13fbe.d: examples/drift_probe.rs

/root/repo/target/release/examples/drift_probe-350c740220b13fbe: examples/drift_probe.rs

examples/drift_probe.rs:
