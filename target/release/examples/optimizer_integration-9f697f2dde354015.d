/root/repo/target/release/examples/optimizer_integration-9f697f2dde354015.d: examples/optimizer_integration.rs

/root/repo/target/release/examples/optimizer_integration-9f697f2dde354015: examples/optimizer_integration.rs

examples/optimizer_integration.rs:
