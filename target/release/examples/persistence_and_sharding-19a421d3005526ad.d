/root/repo/target/release/examples/persistence_and_sharding-19a421d3005526ad.d: examples/persistence_and_sharding.rs

/root/repo/target/release/examples/persistence_and_sharding-19a421d3005526ad: examples/persistence_and_sharding.rs

examples/persistence_and_sharding.rs:
