/root/repo/target/release/deps/mlq_synth-b56ab2309bc30226.d: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

/root/repo/target/release/deps/libmlq_synth-b56ab2309bc30226.rlib: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

/root/repo/target/release/deps/libmlq_synth-b56ab2309bc30226.rmeta: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

crates/synth/src/lib.rs:
crates/synth/src/decay.rs:
crates/synth/src/dist.rs:
crates/synth/src/noise.rs:
crates/synth/src/query.rs:
crates/synth/src/surface.rs:
