/root/repo/target/release/deps/mlq-4251f8e20ce90cb3.d: src/lib.rs

/root/repo/target/release/deps/libmlq-4251f8e20ce90cb3.rlib: src/lib.rs

/root/repo/target/release/deps/libmlq-4251f8e20ce90cb3.rmeta: src/lib.rs

src/lib.rs:
