/root/repo/target/release/deps/serde-b208d02824f5888b.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b208d02824f5888b.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b208d02824f5888b.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
