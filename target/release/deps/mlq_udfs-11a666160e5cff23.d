/root/repo/target/release/deps/mlq_udfs-11a666160e5cff23.d: crates/udfs/src/lib.rs crates/udfs/src/cost.rs crates/udfs/src/spatial/mod.rs crates/udfs/src/spatial/grid_index.rs crates/udfs/src/spatial/map.rs crates/udfs/src/spatial/rtree.rs crates/udfs/src/spatial/search.rs crates/udfs/src/text/mod.rs crates/udfs/src/text/corpus.rs crates/udfs/src/text/index.rs crates/udfs/src/text/search.rs crates/udfs/src/udf.rs

/root/repo/target/release/deps/libmlq_udfs-11a666160e5cff23.rlib: crates/udfs/src/lib.rs crates/udfs/src/cost.rs crates/udfs/src/spatial/mod.rs crates/udfs/src/spatial/grid_index.rs crates/udfs/src/spatial/map.rs crates/udfs/src/spatial/rtree.rs crates/udfs/src/spatial/search.rs crates/udfs/src/text/mod.rs crates/udfs/src/text/corpus.rs crates/udfs/src/text/index.rs crates/udfs/src/text/search.rs crates/udfs/src/udf.rs

/root/repo/target/release/deps/libmlq_udfs-11a666160e5cff23.rmeta: crates/udfs/src/lib.rs crates/udfs/src/cost.rs crates/udfs/src/spatial/mod.rs crates/udfs/src/spatial/grid_index.rs crates/udfs/src/spatial/map.rs crates/udfs/src/spatial/rtree.rs crates/udfs/src/spatial/search.rs crates/udfs/src/text/mod.rs crates/udfs/src/text/corpus.rs crates/udfs/src/text/index.rs crates/udfs/src/text/search.rs crates/udfs/src/udf.rs

crates/udfs/src/lib.rs:
crates/udfs/src/cost.rs:
crates/udfs/src/spatial/mod.rs:
crates/udfs/src/spatial/grid_index.rs:
crates/udfs/src/spatial/map.rs:
crates/udfs/src/spatial/rtree.rs:
crates/udfs/src/spatial/search.rs:
crates/udfs/src/text/mod.rs:
crates/udfs/src/text/corpus.rs:
crates/udfs/src/text/index.rs:
crates/udfs/src/text/search.rs:
crates/udfs/src/udf.rs:
