/root/repo/target/release/deps/mlq_optimizer-afdd0b1dee794fa1.d: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

/root/repo/target/release/deps/libmlq_optimizer-afdd0b1dee794fa1.rlib: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

/root/repo/target/release/deps/libmlq_optimizer-afdd0b1dee794fa1.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/catalog.rs:
crates/optimizer/src/estimator.rs:
crates/optimizer/src/executor.rs:
crates/optimizer/src/plan.rs:
crates/optimizer/src/predicate.rs:
crates/optimizer/src/selectivity.rs:
