/root/repo/target/release/deps/mlq_storage-a9866c12b85ded50.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/release/deps/libmlq_storage-a9866c12b85ded50.rlib: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/release/deps/libmlq_storage-a9866c12b85ded50.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/disk.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
