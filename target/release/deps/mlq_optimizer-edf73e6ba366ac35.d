/root/repo/target/release/deps/mlq_optimizer-edf73e6ba366ac35.d: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

/root/repo/target/release/deps/libmlq_optimizer-edf73e6ba366ac35.rlib: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

/root/repo/target/release/deps/libmlq_optimizer-edf73e6ba366ac35.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/catalog.rs:
crates/optimizer/src/estimator.rs:
crates/optimizer/src/executor.rs:
crates/optimizer/src/plan.rs:
crates/optimizer/src/predicate.rs:
crates/optimizer/src/selectivity.rs:
