/root/repo/target/release/deps/proptest-e49ccef9727f288c.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-e49ccef9727f288c.rlib: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-e49ccef9727f288c.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
