/root/repo/target/release/deps/mlq-44f2f98e883bb3b7.d: src/lib.rs

/root/repo/target/release/deps/libmlq-44f2f98e883bb3b7.rlib: src/lib.rs

/root/repo/target/release/deps/libmlq-44f2f98e883bb3b7.rmeta: src/lib.rs

src/lib.rs:
