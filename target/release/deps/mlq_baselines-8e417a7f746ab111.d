/root/repo/target/release/deps/mlq_baselines-8e417a7f746ab111.d: crates/baselines/src/lib.rs crates/baselines/src/equiheight.rs crates/baselines/src/equiwidth.rs crates/baselines/src/global.rs crates/baselines/src/grid.rs crates/baselines/src/leo.rs

/root/repo/target/release/deps/libmlq_baselines-8e417a7f746ab111.rlib: crates/baselines/src/lib.rs crates/baselines/src/equiheight.rs crates/baselines/src/equiwidth.rs crates/baselines/src/global.rs crates/baselines/src/grid.rs crates/baselines/src/leo.rs

/root/repo/target/release/deps/libmlq_baselines-8e417a7f746ab111.rmeta: crates/baselines/src/lib.rs crates/baselines/src/equiheight.rs crates/baselines/src/equiwidth.rs crates/baselines/src/global.rs crates/baselines/src/grid.rs crates/baselines/src/leo.rs

crates/baselines/src/lib.rs:
crates/baselines/src/equiheight.rs:
crates/baselines/src/equiwidth.rs:
crates/baselines/src/global.rs:
crates/baselines/src/grid.rs:
crates/baselines/src/leo.rs:
