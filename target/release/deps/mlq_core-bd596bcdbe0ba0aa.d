/root/repo/target/release/deps/mlq_core-bd596bcdbe0ba0aa.d: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/blocks.rs crates/core/src/compress.rs crates/core/src/config.rs crates/core/src/counters.rs crates/core/src/detail.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/merge.rs crates/core/src/model.rs crates/core/src/node.rs crates/core/src/nominal.rs crates/core/src/persist.rs crates/core/src/render.rs crates/core/src/space.rs crates/core/src/summary.rs crates/core/src/transform.rs crates/core/src/tree.rs crates/core/src/validate.rs

/root/repo/target/release/deps/libmlq_core-bd596bcdbe0ba0aa.rlib: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/blocks.rs crates/core/src/compress.rs crates/core/src/config.rs crates/core/src/counters.rs crates/core/src/detail.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/merge.rs crates/core/src/model.rs crates/core/src/node.rs crates/core/src/nominal.rs crates/core/src/persist.rs crates/core/src/render.rs crates/core/src/space.rs crates/core/src/summary.rs crates/core/src/transform.rs crates/core/src/tree.rs crates/core/src/validate.rs

/root/repo/target/release/deps/libmlq_core-bd596bcdbe0ba0aa.rmeta: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/blocks.rs crates/core/src/compress.rs crates/core/src/config.rs crates/core/src/counters.rs crates/core/src/detail.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/merge.rs crates/core/src/model.rs crates/core/src/node.rs crates/core/src/nominal.rs crates/core/src/persist.rs crates/core/src/render.rs crates/core/src/space.rs crates/core/src/summary.rs crates/core/src/transform.rs crates/core/src/tree.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/adaptive.rs:
crates/core/src/blocks.rs:
crates/core/src/compress.rs:
crates/core/src/config.rs:
crates/core/src/counters.rs:
crates/core/src/detail.rs:
crates/core/src/error.rs:
crates/core/src/guard.rs:
crates/core/src/merge.rs:
crates/core/src/model.rs:
crates/core/src/node.rs:
crates/core/src/nominal.rs:
crates/core/src/persist.rs:
crates/core/src/render.rs:
crates/core/src/space.rs:
crates/core/src/summary.rs:
crates/core/src/transform.rs:
crates/core/src/tree.rs:
crates/core/src/validate.rs:
