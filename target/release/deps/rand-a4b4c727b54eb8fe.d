/root/repo/target/release/deps/rand-a4b4c727b54eb8fe.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-a4b4c727b54eb8fe.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-a4b4c727b54eb8fe.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
