/root/repo/target/release/deps/mlq_exp-a4193f919a138da9.d: crates/experiments/src/main.rs

/root/repo/target/release/deps/mlq_exp-a4193f919a138da9: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
