/root/repo/target/release/deps/mlq_metrics-470e095e91206364.d: crates/metrics/src/lib.rs crates/metrics/src/alternatives.rs crates/metrics/src/learning.rs crates/metrics/src/nae.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/libmlq_metrics-470e095e91206364.rlib: crates/metrics/src/lib.rs crates/metrics/src/alternatives.rs crates/metrics/src/learning.rs crates/metrics/src/nae.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/libmlq_metrics-470e095e91206364.rmeta: crates/metrics/src/lib.rs crates/metrics/src/alternatives.rs crates/metrics/src/learning.rs crates/metrics/src/nae.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/alternatives.rs:
crates/metrics/src/learning.rs:
crates/metrics/src/nae.rs:
crates/metrics/src/stats.rs:
