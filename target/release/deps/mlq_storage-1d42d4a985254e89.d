/root/repo/target/release/deps/mlq_storage-1d42d4a985254e89.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/release/deps/libmlq_storage-1d42d4a985254e89.rlib: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/release/deps/libmlq_storage-1d42d4a985254e89.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/heap.rs crates/storage/src/page.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/disk.rs:
crates/storage/src/error.rs:
crates/storage/src/fault.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
