/root/repo/target/release/deps/mlq_synth-d54c2452c68c5d78.d: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

/root/repo/target/release/deps/libmlq_synth-d54c2452c68c5d78.rlib: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

/root/repo/target/release/deps/libmlq_synth-d54c2452c68c5d78.rmeta: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

crates/synth/src/lib.rs:
crates/synth/src/decay.rs:
crates/synth/src/dist.rs:
crates/synth/src/noise.rs:
crates/synth/src/query.rs:
crates/synth/src/surface.rs:
