/root/repo/target/release/deps/mlq_experiments-454fdb606134a338.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/drift.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig12.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/harness.rs crates/experiments/src/methods.rs crates/experiments/src/optimizer_exp.rs crates/experiments/src/suite.rs crates/experiments/src/table.rs crates/experiments/src/trace.rs

/root/repo/target/release/deps/libmlq_experiments-454fdb606134a338.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/drift.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig12.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/harness.rs crates/experiments/src/methods.rs crates/experiments/src/optimizer_exp.rs crates/experiments/src/suite.rs crates/experiments/src/table.rs crates/experiments/src/trace.rs

/root/repo/target/release/deps/libmlq_experiments-454fdb606134a338.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/drift.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig12.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/harness.rs crates/experiments/src/methods.rs crates/experiments/src/optimizer_exp.rs crates/experiments/src/suite.rs crates/experiments/src/table.rs crates/experiments/src/trace.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/drift.rs:
crates/experiments/src/fig10.rs:
crates/experiments/src/fig11.rs:
crates/experiments/src/fig12.rs:
crates/experiments/src/fig8.rs:
crates/experiments/src/fig9.rs:
crates/experiments/src/harness.rs:
crates/experiments/src/methods.rs:
crates/experiments/src/optimizer_exp.rs:
crates/experiments/src/suite.rs:
crates/experiments/src/table.rs:
crates/experiments/src/trace.rs:
