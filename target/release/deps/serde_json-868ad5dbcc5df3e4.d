/root/repo/target/release/deps/serde_json-868ad5dbcc5df3e4.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-868ad5dbcc5df3e4.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-868ad5dbcc5df3e4.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
