/root/repo/target/debug/deps/mlq_synth-41c05f7affc5b746.d: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

/root/repo/target/debug/deps/mlq_synth-41c05f7affc5b746: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

crates/synth/src/lib.rs:
crates/synth/src/decay.rs:
crates/synth/src/dist.rs:
crates/synth/src/noise.rs:
crates/synth/src/query.rs:
crates/synth/src/surface.rs:
