/root/repo/target/debug/deps/fig4_conformance-b4602c39e6d62052.d: crates/core/tests/fig4_conformance.rs

/root/repo/target/debug/deps/fig4_conformance-b4602c39e6d62052: crates/core/tests/fig4_conformance.rs

crates/core/tests/fig4_conformance.rs:
