/root/repo/target/debug/deps/model_contracts-10e0c3465761f7e4.d: tests/model_contracts.rs

/root/repo/target/debug/deps/model_contracts-10e0c3465761f7e4: tests/model_contracts.rs

tests/model_contracts.rs:
