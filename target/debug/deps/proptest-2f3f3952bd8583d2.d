/root/repo/target/debug/deps/proptest-2f3f3952bd8583d2.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-2f3f3952bd8583d2.rlib: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-2f3f3952bd8583d2.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
