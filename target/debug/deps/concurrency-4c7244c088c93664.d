/root/repo/target/debug/deps/concurrency-4c7244c088c93664.d: crates/storage/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-4c7244c088c93664: crates/storage/tests/concurrency.rs

crates/storage/tests/concurrency.rs:
