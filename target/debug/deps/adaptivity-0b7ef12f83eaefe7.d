/root/repo/target/debug/deps/adaptivity-0b7ef12f83eaefe7.d: tests/adaptivity.rs

/root/repo/target/debug/deps/adaptivity-0b7ef12f83eaefe7: tests/adaptivity.rs

tests/adaptivity.rs:
