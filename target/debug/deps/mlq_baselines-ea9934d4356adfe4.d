/root/repo/target/debug/deps/mlq_baselines-ea9934d4356adfe4.d: crates/baselines/src/lib.rs crates/baselines/src/equiheight.rs crates/baselines/src/equiwidth.rs crates/baselines/src/global.rs crates/baselines/src/grid.rs crates/baselines/src/leo.rs

/root/repo/target/debug/deps/mlq_baselines-ea9934d4356adfe4: crates/baselines/src/lib.rs crates/baselines/src/equiheight.rs crates/baselines/src/equiwidth.rs crates/baselines/src/global.rs crates/baselines/src/grid.rs crates/baselines/src/leo.rs

crates/baselines/src/lib.rs:
crates/baselines/src/equiheight.rs:
crates/baselines/src/equiwidth.rs:
crates/baselines/src/global.rs:
crates/baselines/src/grid.rs:
crates/baselines/src/leo.rs:
