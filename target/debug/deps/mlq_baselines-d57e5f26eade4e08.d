/root/repo/target/debug/deps/mlq_baselines-d57e5f26eade4e08.d: crates/baselines/src/lib.rs crates/baselines/src/equiheight.rs crates/baselines/src/equiwidth.rs crates/baselines/src/global.rs crates/baselines/src/grid.rs crates/baselines/src/leo.rs

/root/repo/target/debug/deps/mlq_baselines-d57e5f26eade4e08: crates/baselines/src/lib.rs crates/baselines/src/equiheight.rs crates/baselines/src/equiwidth.rs crates/baselines/src/global.rs crates/baselines/src/grid.rs crates/baselines/src/leo.rs

crates/baselines/src/lib.rs:
crates/baselines/src/equiheight.rs:
crates/baselines/src/equiwidth.rs:
crates/baselines/src/global.rs:
crates/baselines/src/grid.rs:
crates/baselines/src/leo.rs:
