/root/repo/target/debug/deps/mlq_optimizer-22a41d9d61796c39.d: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs Cargo.toml

/root/repo/target/debug/deps/libmlq_optimizer-22a41d9d61796c39.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs Cargo.toml

crates/optimizer/src/lib.rs:
crates/optimizer/src/catalog.rs:
crates/optimizer/src/estimator.rs:
crates/optimizer/src/executor.rs:
crates/optimizer/src/plan.rs:
crates/optimizer/src/predicate.rs:
crates/optimizer/src/selectivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
