/root/repo/target/debug/deps/serde_json-974b25a6d42ed54c.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-974b25a6d42ed54c.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-974b25a6d42ed54c.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
