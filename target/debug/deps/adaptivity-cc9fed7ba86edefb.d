/root/repo/target/debug/deps/adaptivity-cc9fed7ba86edefb.d: tests/adaptivity.rs Cargo.toml

/root/repo/target/debug/deps/libadaptivity-cc9fed7ba86edefb.rmeta: tests/adaptivity.rs Cargo.toml

tests/adaptivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
