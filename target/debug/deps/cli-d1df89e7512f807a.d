/root/repo/target/debug/deps/cli-d1df89e7512f807a.d: crates/experiments/tests/cli.rs

/root/repo/target/debug/deps/cli-d1df89e7512f807a: crates/experiments/tests/cli.rs

crates/experiments/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_mlq-exp=/root/repo/target/debug/mlq-exp
