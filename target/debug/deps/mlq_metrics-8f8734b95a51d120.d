/root/repo/target/debug/deps/mlq_metrics-8f8734b95a51d120.d: crates/metrics/src/lib.rs crates/metrics/src/alternatives.rs crates/metrics/src/learning.rs crates/metrics/src/nae.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/mlq_metrics-8f8734b95a51d120: crates/metrics/src/lib.rs crates/metrics/src/alternatives.rs crates/metrics/src/learning.rs crates/metrics/src/nae.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/alternatives.rs:
crates/metrics/src/learning.rs:
crates/metrics/src/nae.rs:
crates/metrics/src/stats.rs:
