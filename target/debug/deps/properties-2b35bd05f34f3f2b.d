/root/repo/target/debug/deps/properties-2b35bd05f34f3f2b.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-2b35bd05f34f3f2b: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
