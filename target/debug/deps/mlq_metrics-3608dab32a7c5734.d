/root/repo/target/debug/deps/mlq_metrics-3608dab32a7c5734.d: crates/metrics/src/lib.rs crates/metrics/src/alternatives.rs crates/metrics/src/learning.rs crates/metrics/src/nae.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libmlq_metrics-3608dab32a7c5734.rlib: crates/metrics/src/lib.rs crates/metrics/src/alternatives.rs crates/metrics/src/learning.rs crates/metrics/src/nae.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libmlq_metrics-3608dab32a7c5734.rmeta: crates/metrics/src/lib.rs crates/metrics/src/alternatives.rs crates/metrics/src/learning.rs crates/metrics/src/nae.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/alternatives.rs:
crates/metrics/src/learning.rs:
crates/metrics/src/nae.rs:
crates/metrics/src/stats.rs:
