/root/repo/target/debug/deps/semantics-b27b1f7e00396baf.d: crates/udfs/tests/semantics.rs

/root/repo/target/debug/deps/semantics-b27b1f7e00396baf: crates/udfs/tests/semantics.rs

crates/udfs/tests/semantics.rs:
