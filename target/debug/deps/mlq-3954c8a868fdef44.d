/root/repo/target/debug/deps/mlq-3954c8a868fdef44.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmlq-3954c8a868fdef44.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
