/root/repo/target/debug/deps/mlq-6bcc438214fe4483.d: src/lib.rs

/root/repo/target/debug/deps/mlq-6bcc438214fe4483: src/lib.rs

src/lib.rs:
