/root/repo/target/debug/deps/mlq_storage-e3f8270227cb8f73.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/debug/deps/mlq_storage-e3f8270227cb8f73: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/disk.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
