/root/repo/target/debug/deps/mlq_exp-32a95df1cbc6e1d2.d: crates/experiments/src/main.rs

/root/repo/target/debug/deps/mlq_exp-32a95df1cbc6e1d2: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
