/root/repo/target/debug/deps/model_contracts-1475c592097f5f6e.d: tests/model_contracts.rs

/root/repo/target/debug/deps/model_contracts-1475c592097f5f6e: tests/model_contracts.rs

tests/model_contracts.rs:
