/root/repo/target/debug/deps/mlq_optimizer-a5c04d66ca20d01b.d: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

/root/repo/target/debug/deps/mlq_optimizer-a5c04d66ca20d01b: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/catalog.rs:
crates/optimizer/src/estimator.rs:
crates/optimizer/src/executor.rs:
crates/optimizer/src/plan.rs:
crates/optimizer/src/predicate.rs:
crates/optimizer/src/selectivity.rs:
