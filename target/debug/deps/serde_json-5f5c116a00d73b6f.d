/root/repo/target/debug/deps/serde_json-5f5c116a00d73b6f.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-5f5c116a00d73b6f: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
