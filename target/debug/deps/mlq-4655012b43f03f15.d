/root/repo/target/debug/deps/mlq-4655012b43f03f15.d: src/lib.rs

/root/repo/target/debug/deps/libmlq-4655012b43f03f15.rlib: src/lib.rs

/root/repo/target/debug/deps/libmlq-4655012b43f03f15.rmeta: src/lib.rs

src/lib.rs:
