/root/repo/target/debug/deps/robustness-1fe92456e39161d6.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-1fe92456e39161d6: tests/robustness.rs

tests/robustness.rs:
