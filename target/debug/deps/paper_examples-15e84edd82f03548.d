/root/repo/target/debug/deps/paper_examples-15e84edd82f03548.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-15e84edd82f03548: tests/paper_examples.rs

tests/paper_examples.rs:
