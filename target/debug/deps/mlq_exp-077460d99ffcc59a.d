/root/repo/target/debug/deps/mlq_exp-077460d99ffcc59a.d: crates/experiments/src/main.rs

/root/repo/target/debug/deps/mlq_exp-077460d99ffcc59a: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
