/root/repo/target/debug/deps/mlq_storage-7c355f3f50b01666.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/heap.rs crates/storage/src/page.rs Cargo.toml

/root/repo/target/debug/deps/libmlq_storage-7c355f3f50b01666.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/heap.rs crates/storage/src/page.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/disk.rs:
crates/storage/src/error.rs:
crates/storage/src/fault.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
