/root/repo/target/debug/deps/concurrency-d0f78f3fe7b8e584.d: crates/storage/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-d0f78f3fe7b8e584: crates/storage/tests/concurrency.rs

crates/storage/tests/concurrency.rs:
