/root/repo/target/debug/deps/lru_model-abcff0005219bb87.d: crates/storage/tests/lru_model.rs

/root/repo/target/debug/deps/lru_model-abcff0005219bb87: crates/storage/tests/lru_model.rs

crates/storage/tests/lru_model.rs:
