/root/repo/target/debug/deps/semantics-2f4a3c39cc04d078.d: crates/udfs/tests/semantics.rs

/root/repo/target/debug/deps/semantics-2f4a3c39cc04d078: crates/udfs/tests/semantics.rs

crates/udfs/tests/semantics.rs:
