/root/repo/target/debug/deps/mlq_bench-9ce77049eb7b327c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mlq_bench-9ce77049eb7b327c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
