/root/repo/target/debug/deps/mlq_exp-a50a9c4c89e63151.d: crates/experiments/src/main.rs

/root/repo/target/debug/deps/mlq_exp-a50a9c4c89e63151: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
