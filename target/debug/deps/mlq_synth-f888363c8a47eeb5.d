/root/repo/target/debug/deps/mlq_synth-f888363c8a47eeb5.d: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs Cargo.toml

/root/repo/target/debug/deps/libmlq_synth-f888363c8a47eeb5.rmeta: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/decay.rs:
crates/synth/src/dist.rs:
crates/synth/src/noise.rs:
crates/synth/src/query.rs:
crates/synth/src/surface.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
