/root/repo/target/debug/deps/mlq_udfs-feabeb63648bb503.d: crates/udfs/src/lib.rs crates/udfs/src/cost.rs crates/udfs/src/spatial/mod.rs crates/udfs/src/spatial/grid_index.rs crates/udfs/src/spatial/map.rs crates/udfs/src/spatial/rtree.rs crates/udfs/src/spatial/search.rs crates/udfs/src/text/mod.rs crates/udfs/src/text/corpus.rs crates/udfs/src/text/index.rs crates/udfs/src/text/search.rs crates/udfs/src/udf.rs

/root/repo/target/debug/deps/mlq_udfs-feabeb63648bb503: crates/udfs/src/lib.rs crates/udfs/src/cost.rs crates/udfs/src/spatial/mod.rs crates/udfs/src/spatial/grid_index.rs crates/udfs/src/spatial/map.rs crates/udfs/src/spatial/rtree.rs crates/udfs/src/spatial/search.rs crates/udfs/src/text/mod.rs crates/udfs/src/text/corpus.rs crates/udfs/src/text/index.rs crates/udfs/src/text/search.rs crates/udfs/src/udf.rs

crates/udfs/src/lib.rs:
crates/udfs/src/cost.rs:
crates/udfs/src/spatial/mod.rs:
crates/udfs/src/spatial/grid_index.rs:
crates/udfs/src/spatial/map.rs:
crates/udfs/src/spatial/rtree.rs:
crates/udfs/src/spatial/search.rs:
crates/udfs/src/text/mod.rs:
crates/udfs/src/text/corpus.rs:
crates/udfs/src/text/index.rs:
crates/udfs/src/text/search.rs:
crates/udfs/src/udf.rs:
