/root/repo/target/debug/deps/mlq_optimizer-c6a1e2add2637c24.d: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

/root/repo/target/debug/deps/libmlq_optimizer-c6a1e2add2637c24.rlib: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

/root/repo/target/debug/deps/libmlq_optimizer-c6a1e2add2637c24.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/catalog.rs:
crates/optimizer/src/estimator.rs:
crates/optimizer/src/executor.rs:
crates/optimizer/src/plan.rs:
crates/optimizer/src/predicate.rs:
crates/optimizer/src/selectivity.rs:
