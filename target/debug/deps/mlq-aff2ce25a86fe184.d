/root/repo/target/debug/deps/mlq-aff2ce25a86fe184.d: src/lib.rs

/root/repo/target/debug/deps/libmlq-aff2ce25a86fe184.rlib: src/lib.rs

/root/repo/target/debug/deps/libmlq-aff2ce25a86fe184.rmeta: src/lib.rs

src/lib.rs:
