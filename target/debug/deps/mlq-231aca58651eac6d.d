/root/repo/target/debug/deps/mlq-231aca58651eac6d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmlq-231aca58651eac6d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
