/root/repo/target/debug/deps/proptest-7d057050da0c01e5.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-7d057050da0c01e5: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
