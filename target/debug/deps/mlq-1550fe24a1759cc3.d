/root/repo/target/debug/deps/mlq-1550fe24a1759cc3.d: src/lib.rs

/root/repo/target/debug/deps/mlq-1550fe24a1759cc3: src/lib.rs

src/lib.rs:
