/root/repo/target/debug/deps/mlq_baselines-5ff76ad1610f46f1.d: crates/baselines/src/lib.rs crates/baselines/src/equiheight.rs crates/baselines/src/equiwidth.rs crates/baselines/src/global.rs crates/baselines/src/grid.rs crates/baselines/src/leo.rs Cargo.toml

/root/repo/target/debug/deps/libmlq_baselines-5ff76ad1610f46f1.rmeta: crates/baselines/src/lib.rs crates/baselines/src/equiheight.rs crates/baselines/src/equiwidth.rs crates/baselines/src/global.rs crates/baselines/src/grid.rs crates/baselines/src/leo.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/equiheight.rs:
crates/baselines/src/equiwidth.rs:
crates/baselines/src/global.rs:
crates/baselines/src/grid.rs:
crates/baselines/src/leo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
