/root/repo/target/debug/deps/mlq_bench-098960c66473d088.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mlq_bench-098960c66473d088: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
