/root/repo/target/debug/deps/mlq_synth-245589f66fcc88ab.d: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

/root/repo/target/debug/deps/libmlq_synth-245589f66fcc88ab.rlib: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

/root/repo/target/debug/deps/libmlq_synth-245589f66fcc88ab.rmeta: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

crates/synth/src/lib.rs:
crates/synth/src/decay.rs:
crates/synth/src/dist.rs:
crates/synth/src/noise.rs:
crates/synth/src/query.rs:
crates/synth/src/surface.rs:
