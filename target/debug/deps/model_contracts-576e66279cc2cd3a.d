/root/repo/target/debug/deps/model_contracts-576e66279cc2cd3a.d: tests/model_contracts.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_contracts-576e66279cc2cd3a.rmeta: tests/model_contracts.rs Cargo.toml

tests/model_contracts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
