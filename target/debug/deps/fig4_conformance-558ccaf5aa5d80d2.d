/root/repo/target/debug/deps/fig4_conformance-558ccaf5aa5d80d2.d: crates/core/tests/fig4_conformance.rs

/root/repo/target/debug/deps/fig4_conformance-558ccaf5aa5d80d2: crates/core/tests/fig4_conformance.rs

crates/core/tests/fig4_conformance.rs:
