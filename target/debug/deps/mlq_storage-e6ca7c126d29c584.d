/root/repo/target/debug/deps/mlq_storage-e6ca7c126d29c584.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/debug/deps/libmlq_storage-e6ca7c126d29c584.rlib: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/debug/deps/libmlq_storage-e6ca7c126d29c584.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/disk.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
