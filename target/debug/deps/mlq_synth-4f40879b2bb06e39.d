/root/repo/target/debug/deps/mlq_synth-4f40879b2bb06e39.d: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

/root/repo/target/debug/deps/mlq_synth-4f40879b2bb06e39: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

crates/synth/src/lib.rs:
crates/synth/src/decay.rs:
crates/synth/src/dist.rs:
crates/synth/src/noise.rs:
crates/synth/src/query.rs:
crates/synth/src/surface.rs:
