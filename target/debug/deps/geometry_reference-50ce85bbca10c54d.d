/root/repo/target/debug/deps/geometry_reference-50ce85bbca10c54d.d: crates/core/tests/geometry_reference.rs

/root/repo/target/debug/deps/geometry_reference-50ce85bbca10c54d: crates/core/tests/geometry_reference.rs

crates/core/tests/geometry_reference.rs:
