/root/repo/target/debug/deps/mlq_storage-97b277d6345f7054.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/debug/deps/libmlq_storage-97b277d6345f7054.rlib: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/debug/deps/libmlq_storage-97b277d6345f7054.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/heap.rs crates/storage/src/page.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/disk.rs:
crates/storage/src/error.rs:
crates/storage/src/fault.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
