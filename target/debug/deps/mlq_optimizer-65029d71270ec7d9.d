/root/repo/target/debug/deps/mlq_optimizer-65029d71270ec7d9.d: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

/root/repo/target/debug/deps/mlq_optimizer-65029d71270ec7d9: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/catalog.rs:
crates/optimizer/src/estimator.rs:
crates/optimizer/src/executor.rs:
crates/optimizer/src/plan.rs:
crates/optimizer/src/predicate.rs:
crates/optimizer/src/selectivity.rs:
