/root/repo/target/debug/deps/mlq_storage-a7553d5b0828ac11.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/debug/deps/libmlq_storage-a7553d5b0828ac11.rlib: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/debug/deps/libmlq_storage-a7553d5b0828ac11.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/disk.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
