/root/repo/target/debug/deps/lru_model-abbd92e612c67be8.d: crates/storage/tests/lru_model.rs

/root/repo/target/debug/deps/lru_model-abbd92e612c67be8: crates/storage/tests/lru_model.rs

crates/storage/tests/lru_model.rs:
