/root/repo/target/debug/deps/mlq_storage-4e499db75b2c1b3b.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/debug/deps/mlq_storage-4e499db75b2c1b3b: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/heap.rs crates/storage/src/page.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/disk.rs:
crates/storage/src/error.rs:
crates/storage/src/fault.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
