/root/repo/target/debug/deps/cli-e1821706e9ab14a9.d: crates/experiments/tests/cli.rs

/root/repo/target/debug/deps/cli-e1821706e9ab14a9: crates/experiments/tests/cli.rs

crates/experiments/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_mlq-exp=/root/repo/target/debug/mlq-exp
