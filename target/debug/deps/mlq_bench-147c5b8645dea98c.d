/root/repo/target/debug/deps/mlq_bench-147c5b8645dea98c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmlq_bench-147c5b8645dea98c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmlq_bench-147c5b8645dea98c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
