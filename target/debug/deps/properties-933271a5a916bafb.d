/root/repo/target/debug/deps/properties-933271a5a916bafb.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-933271a5a916bafb: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
