/root/repo/target/debug/deps/paper_examples-318c48b81b2df8cc.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-318c48b81b2df8cc: tests/paper_examples.rs

tests/paper_examples.rs:
