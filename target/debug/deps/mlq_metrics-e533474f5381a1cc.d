/root/repo/target/debug/deps/mlq_metrics-e533474f5381a1cc.d: crates/metrics/src/lib.rs crates/metrics/src/alternatives.rs crates/metrics/src/learning.rs crates/metrics/src/nae.rs crates/metrics/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmlq_metrics-e533474f5381a1cc.rmeta: crates/metrics/src/lib.rs crates/metrics/src/alternatives.rs crates/metrics/src/learning.rs crates/metrics/src/nae.rs crates/metrics/src/stats.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/alternatives.rs:
crates/metrics/src/learning.rs:
crates/metrics/src/nae.rs:
crates/metrics/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
