/root/repo/target/debug/deps/geometry_reference-ebe4422a76d49516.d: crates/core/tests/geometry_reference.rs

/root/repo/target/debug/deps/geometry_reference-ebe4422a76d49516: crates/core/tests/geometry_reference.rs

crates/core/tests/geometry_reference.rs:
