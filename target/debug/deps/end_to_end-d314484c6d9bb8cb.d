/root/repo/target/debug/deps/end_to_end-d314484c6d9bb8cb.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d314484c6d9bb8cb: tests/end_to_end.rs

tests/end_to_end.rs:
