/root/repo/target/debug/deps/mlq_baselines-31ae39dd88fc1661.d: crates/baselines/src/lib.rs crates/baselines/src/equiheight.rs crates/baselines/src/equiwidth.rs crates/baselines/src/global.rs crates/baselines/src/grid.rs crates/baselines/src/leo.rs

/root/repo/target/debug/deps/libmlq_baselines-31ae39dd88fc1661.rlib: crates/baselines/src/lib.rs crates/baselines/src/equiheight.rs crates/baselines/src/equiwidth.rs crates/baselines/src/global.rs crates/baselines/src/grid.rs crates/baselines/src/leo.rs

/root/repo/target/debug/deps/libmlq_baselines-31ae39dd88fc1661.rmeta: crates/baselines/src/lib.rs crates/baselines/src/equiheight.rs crates/baselines/src/equiwidth.rs crates/baselines/src/global.rs crates/baselines/src/grid.rs crates/baselines/src/leo.rs

crates/baselines/src/lib.rs:
crates/baselines/src/equiheight.rs:
crates/baselines/src/equiwidth.rs:
crates/baselines/src/global.rs:
crates/baselines/src/grid.rs:
crates/baselines/src/leo.rs:
