/root/repo/target/debug/deps/mlq_synth-aa0674ce3bb8d2da.d: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

/root/repo/target/debug/deps/libmlq_synth-aa0674ce3bb8d2da.rlib: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

/root/repo/target/debug/deps/libmlq_synth-aa0674ce3bb8d2da.rmeta: crates/synth/src/lib.rs crates/synth/src/decay.rs crates/synth/src/dist.rs crates/synth/src/noise.rs crates/synth/src/query.rs crates/synth/src/surface.rs

crates/synth/src/lib.rs:
crates/synth/src/decay.rs:
crates/synth/src/dist.rs:
crates/synth/src/noise.rs:
crates/synth/src/query.rs:
crates/synth/src/surface.rs:
