/root/repo/target/debug/deps/mlq_core-cd339fcc019e2e64.d: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/blocks.rs crates/core/src/compress.rs crates/core/src/config.rs crates/core/src/counters.rs crates/core/src/detail.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/merge.rs crates/core/src/model.rs crates/core/src/node.rs crates/core/src/nominal.rs crates/core/src/persist.rs crates/core/src/render.rs crates/core/src/space.rs crates/core/src/summary.rs crates/core/src/transform.rs crates/core/src/tree.rs crates/core/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libmlq_core-cd339fcc019e2e64.rmeta: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/blocks.rs crates/core/src/compress.rs crates/core/src/config.rs crates/core/src/counters.rs crates/core/src/detail.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/merge.rs crates/core/src/model.rs crates/core/src/node.rs crates/core/src/nominal.rs crates/core/src/persist.rs crates/core/src/render.rs crates/core/src/space.rs crates/core/src/summary.rs crates/core/src/transform.rs crates/core/src/tree.rs crates/core/src/validate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/adaptive.rs:
crates/core/src/blocks.rs:
crates/core/src/compress.rs:
crates/core/src/config.rs:
crates/core/src/counters.rs:
crates/core/src/detail.rs:
crates/core/src/error.rs:
crates/core/src/guard.rs:
crates/core/src/merge.rs:
crates/core/src/model.rs:
crates/core/src/node.rs:
crates/core/src/nominal.rs:
crates/core/src/persist.rs:
crates/core/src/render.rs:
crates/core/src/space.rs:
crates/core/src/summary.rs:
crates/core/src/transform.rs:
crates/core/src/tree.rs:
crates/core/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
