/root/repo/target/debug/deps/mlq_bench-7b42dec8093a7fe7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmlq_bench-7b42dec8093a7fe7.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmlq_bench-7b42dec8093a7fe7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
