/root/repo/target/debug/deps/end_to_end-95aa49e9160dc6f0.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-95aa49e9160dc6f0: tests/end_to_end.rs

tests/end_to_end.rs:
