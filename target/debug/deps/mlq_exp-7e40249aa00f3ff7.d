/root/repo/target/debug/deps/mlq_exp-7e40249aa00f3ff7.d: crates/experiments/src/main.rs

/root/repo/target/debug/deps/mlq_exp-7e40249aa00f3ff7: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
