/root/repo/target/debug/deps/mlq_optimizer-46ea3e63c37fc840.d: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

/root/repo/target/debug/deps/libmlq_optimizer-46ea3e63c37fc840.rlib: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

/root/repo/target/debug/deps/libmlq_optimizer-46ea3e63c37fc840.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/catalog.rs crates/optimizer/src/estimator.rs crates/optimizer/src/executor.rs crates/optimizer/src/plan.rs crates/optimizer/src/predicate.rs crates/optimizer/src/selectivity.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/catalog.rs:
crates/optimizer/src/estimator.rs:
crates/optimizer/src/executor.rs:
crates/optimizer/src/plan.rs:
crates/optimizer/src/predicate.rs:
crates/optimizer/src/selectivity.rs:
