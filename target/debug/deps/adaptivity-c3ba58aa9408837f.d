/root/repo/target/debug/deps/adaptivity-c3ba58aa9408837f.d: tests/adaptivity.rs

/root/repo/target/debug/deps/adaptivity-c3ba58aa9408837f: tests/adaptivity.rs

tests/adaptivity.rs:
