/root/repo/target/debug/deps/mlq_udfs-32b8643927ff5590.d: crates/udfs/src/lib.rs crates/udfs/src/cost.rs crates/udfs/src/spatial/mod.rs crates/udfs/src/spatial/grid_index.rs crates/udfs/src/spatial/map.rs crates/udfs/src/spatial/rtree.rs crates/udfs/src/spatial/search.rs crates/udfs/src/text/mod.rs crates/udfs/src/text/corpus.rs crates/udfs/src/text/index.rs crates/udfs/src/text/search.rs crates/udfs/src/udf.rs Cargo.toml

/root/repo/target/debug/deps/libmlq_udfs-32b8643927ff5590.rmeta: crates/udfs/src/lib.rs crates/udfs/src/cost.rs crates/udfs/src/spatial/mod.rs crates/udfs/src/spatial/grid_index.rs crates/udfs/src/spatial/map.rs crates/udfs/src/spatial/rtree.rs crates/udfs/src/spatial/search.rs crates/udfs/src/text/mod.rs crates/udfs/src/text/corpus.rs crates/udfs/src/text/index.rs crates/udfs/src/text/search.rs crates/udfs/src/udf.rs Cargo.toml

crates/udfs/src/lib.rs:
crates/udfs/src/cost.rs:
crates/udfs/src/spatial/mod.rs:
crates/udfs/src/spatial/grid_index.rs:
crates/udfs/src/spatial/map.rs:
crates/udfs/src/spatial/rtree.rs:
crates/udfs/src/spatial/search.rs:
crates/udfs/src/text/mod.rs:
crates/udfs/src/text/corpus.rs:
crates/udfs/src/text/index.rs:
crates/udfs/src/text/search.rs:
crates/udfs/src/udf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
