/root/repo/target/debug/examples/quickstart-eaca071138d0b3a0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-eaca071138d0b3a0: examples/quickstart.rs

examples/quickstart.rs:
