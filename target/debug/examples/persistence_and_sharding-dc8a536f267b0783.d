/root/repo/target/debug/examples/persistence_and_sharding-dc8a536f267b0783.d: examples/persistence_and_sharding.rs Cargo.toml

/root/repo/target/debug/examples/libpersistence_and_sharding-dc8a536f267b0783.rmeta: examples/persistence_and_sharding.rs Cargo.toml

examples/persistence_and_sharding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
