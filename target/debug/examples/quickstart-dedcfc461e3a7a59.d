/root/repo/target/debug/examples/quickstart-dedcfc461e3a7a59.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-dedcfc461e3a7a59: examples/quickstart.rs

examples/quickstart.rs:
