/root/repo/target/debug/examples/optimizer_integration-3b6dbe5c2027ec3b.d: examples/optimizer_integration.rs

/root/repo/target/debug/examples/optimizer_integration-3b6dbe5c2027ec3b: examples/optimizer_integration.rs

examples/optimizer_integration.rs:
