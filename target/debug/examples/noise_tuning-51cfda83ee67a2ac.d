/root/repo/target/debug/examples/noise_tuning-51cfda83ee67a2ac.d: examples/noise_tuning.rs

/root/repo/target/debug/examples/noise_tuning-51cfda83ee67a2ac: examples/noise_tuning.rs

examples/noise_tuning.rs:
