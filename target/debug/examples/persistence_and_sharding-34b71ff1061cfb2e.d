/root/repo/target/debug/examples/persistence_and_sharding-34b71ff1061cfb2e.d: examples/persistence_and_sharding.rs

/root/repo/target/debug/examples/persistence_and_sharding-34b71ff1061cfb2e: examples/persistence_and_sharding.rs

examples/persistence_and_sharding.rs:
