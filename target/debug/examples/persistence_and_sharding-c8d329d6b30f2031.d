/root/repo/target/debug/examples/persistence_and_sharding-c8d329d6b30f2031.d: examples/persistence_and_sharding.rs

/root/repo/target/debug/examples/persistence_and_sharding-c8d329d6b30f2031: examples/persistence_and_sharding.rs

examples/persistence_and_sharding.rs:
