/root/repo/target/debug/examples/adaptive_workload-8f2ebf4d708934a3.d: examples/adaptive_workload.rs

/root/repo/target/debug/examples/adaptive_workload-8f2ebf4d708934a3: examples/adaptive_workload.rs

examples/adaptive_workload.rs:
