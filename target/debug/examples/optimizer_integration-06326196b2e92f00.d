/root/repo/target/debug/examples/optimizer_integration-06326196b2e92f00.d: examples/optimizer_integration.rs

/root/repo/target/debug/examples/optimizer_integration-06326196b2e92f00: examples/optimizer_integration.rs

examples/optimizer_integration.rs:
