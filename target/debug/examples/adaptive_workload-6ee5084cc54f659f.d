/root/repo/target/debug/examples/adaptive_workload-6ee5084cc54f659f.d: examples/adaptive_workload.rs

/root/repo/target/debug/examples/adaptive_workload-6ee5084cc54f659f: examples/adaptive_workload.rs

examples/adaptive_workload.rs:
