/root/repo/target/debug/examples/noise_tuning-c740e302a54f7aab.d: examples/noise_tuning.rs

/root/repo/target/debug/examples/noise_tuning-c740e302a54f7aab: examples/noise_tuning.rs

examples/noise_tuning.rs:
