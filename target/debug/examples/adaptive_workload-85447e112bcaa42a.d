/root/repo/target/debug/examples/adaptive_workload-85447e112bcaa42a.d: examples/adaptive_workload.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_workload-85447e112bcaa42a.rmeta: examples/adaptive_workload.rs Cargo.toml

examples/adaptive_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
