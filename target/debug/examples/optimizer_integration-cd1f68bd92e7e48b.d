/root/repo/target/debug/examples/optimizer_integration-cd1f68bd92e7e48b.d: examples/optimizer_integration.rs Cargo.toml

/root/repo/target/debug/examples/liboptimizer_integration-cd1f68bd92e7e48b.rmeta: examples/optimizer_integration.rs Cargo.toml

examples/optimizer_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
