/root/repo/target/debug/examples/noise_tuning-3752e37989c9854f.d: examples/noise_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libnoise_tuning-3752e37989c9854f.rmeta: examples/noise_tuning.rs Cargo.toml

examples/noise_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
