#!/usr/bin/env sh
# Benchmark regression gates: compare fresh BENCH_serve.json /
# BENCH_predict.json reports against the checked-in baselines and exit
# nonzero on regression. All comparison logic lives in `mlq-bench --gate`
# (crates/bench/src/report.rs) and `mlq-bench --gate-predict`
# (crates/bench/src/predict.rs), so the thresholds are tested Rust code
# rather than shell arithmetic; this wrapper only fixes the invocations
# CI uses.
#
# Usage: scripts/bench_gate.sh [MEASURED.json] [BASELINE.json] [TOLERANCE]
#                              [PREDICT_MEASURED.json] [PREDICT_BASELINE.json]
#
# The predict gate runs whenever its measured report exists (or was
# explicitly named), so pre-predict callers keep working unchanged.
set -eu

MEASURED="${1:-BENCH_serve.json}"
BASELINE="${2:-BENCH_serve.baseline.json}"
TOLERANCE="${3:-0.2}"
PREDICT_MEASURED="${4:-BENCH_predict.json}"
PREDICT_BASELINE="${5:-BENCH_predict.baseline.json}"

# Fail with a role-and-path message before any gate runs, so a missing
# file reads as "missing baseline BENCH_serve.baseline.json" instead of
# a raw jq/parse error from the gate binary.
require() {
    if [ ! -f "$2" ]; then
        echo "bench_gate: missing $1 $2" >&2
        exit 1
    fi
}

require "measured report" "$MEASURED"
require "baseline" "$BASELINE"

cargo run -q --release --offline -p mlq-bench -- \
    --gate "$MEASURED" "$BASELINE" --tolerance "$TOLERANCE"

if [ -f "$PREDICT_MEASURED" ] || [ $# -ge 4 ]; then
    require "predict measured report" "$PREDICT_MEASURED"
    require "predict baseline" "$PREDICT_BASELINE"
    # The predict gate keeps its own (looser) default tolerance unless the
    # caller named one explicitly; its millisecond passes are noisier than
    # the serve harness's duration-based runs.
    if [ $# -ge 3 ]; then
        cargo run -q --release --offline -p mlq-bench -- \
            --gate-predict "$PREDICT_MEASURED" "$PREDICT_BASELINE" --tolerance "$TOLERANCE"
    else
        cargo run -q --release --offline -p mlq-bench -- \
            --gate-predict "$PREDICT_MEASURED" "$PREDICT_BASELINE"
    fi
fi
