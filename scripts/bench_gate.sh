#!/usr/bin/env sh
# Benchmark regression gate: compares a fresh BENCH_serve.json against the
# checked-in baseline and exits nonzero on regression. All comparison
# logic lives in `mlq-bench --gate` (crates/bench/src/report.rs), so the
# thresholds are tested Rust code rather than shell arithmetic; this
# wrapper only fixes the invocation CI uses.
#
# Usage: scripts/bench_gate.sh [MEASURED.json] [BASELINE.json] [TOLERANCE]
set -eu

MEASURED="${1:-BENCH_serve.json}"
BASELINE="${2:-BENCH_serve.baseline.json}"
TOLERANCE="${3:-0.2}"

for f in "$MEASURED" "$BASELINE"; do
    if [ ! -f "$f" ]; then
        echo "bench_gate: missing report $f" >&2
        exit 1
    fi
done

exec cargo run -q --release --offline -p mlq-bench -- \
    --gate "$MEASURED" "$BASELINE" --tolerance "$TOLERANCE"
