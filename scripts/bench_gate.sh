#!/usr/bin/env sh
# Benchmark regression gates: compare fresh BENCH_serve.json /
# BENCH_predict.json / BENCH_serve_replicated.json / BENCH_fleet.json
# reports against the checked-in baselines and exit nonzero on
# regression. All comparison logic lives in `mlq-bench --gate`
# (crates/bench/src/report.rs), `mlq-bench --gate-predict`
# (crates/bench/src/predict.rs), and `mlq-bench --gate-fleet`
# (crates/bench/src/fleet.rs), so the thresholds are tested Rust code
# rather than shell arithmetic; this wrapper only fixes the invocations
# CI uses.
#
# Usage: scripts/bench_gate.sh [MEASURED.json] [BASELINE.json] [TOLERANCE]
#                              [PREDICT_MEASURED.json] [PREDICT_BASELINE.json]
#                              [REPLICATED_MEASURED.json] [REPLICATED_BASELINE.json]
#                              [FLEET_MEASURED.json] [FLEET_BASELINE.json]
#        scripts/bench_gate.sh --gate-predict [PREDICT_MEASURED.json] [PREDICT_BASELINE.json]
#        scripts/bench_gate.sh --gate-fleet [FLEET_MEASURED.json] [FLEET_BASELINE.json]
#
# The --gate-predict mode runs only the predict-path gate — the CI
# predict-perf job measures and gates the read path without requiring a
# serve throughput report to exist first.
#
# The predict and replicated gates run whenever their measured reports
# exist (or were explicitly named), so pre-predict callers keep working
# unchanged. The primary serve gate hard-fails on a missing baseline —
# that file is committed and losing it must be loud — but secondary
# roles whose baseline has not been committed yet skip with a notice
# instead: a freshly introduced bench role must not break CI before its
# first baseline lands.
#
# Measured BENCH_*.json reports are run outputs and gitignored; only the
# *.baseline.json references are tracked. Regenerate a measured report
# with `mlq-bench --throughput` / `--predict` before invoking this gate.
# (The bake-off accuracy gate is separate: `mlq-exp bakeoff --gate
# results/bakeoff.baseline.json`.)
set -eu

if [ "${1:-}" = "--gate-predict" ]; then
    PREDICT_MEASURED="${2:-BENCH_predict.json}"
    PREDICT_BASELINE="${3:-BENCH_predict.baseline.json}"
    if [ ! -f "$PREDICT_MEASURED" ]; then
        echo "bench_gate: missing predict measured report $PREDICT_MEASURED (regenerate with mlq-bench --predict)" >&2
        exit 1
    fi
    if [ ! -f "$PREDICT_BASELINE" ]; then
        echo "bench_gate: missing predict baseline $PREDICT_BASELINE (it is committed — losing it must be loud)" >&2
        exit 1
    fi
    exec cargo run -q --release --offline -p mlq-bench -- \
        --gate-predict "$PREDICT_MEASURED" "$PREDICT_BASELINE"
fi

if [ "${1:-}" = "--gate-fleet" ]; then
    FLEET_MEASURED="${2:-BENCH_fleet.json}"
    FLEET_BASELINE="${3:-BENCH_fleet.baseline.json}"
    if [ ! -f "$FLEET_MEASURED" ]; then
        echo "bench_gate: missing fleet measured report $FLEET_MEASURED (regenerate with mlq-bench --fleet)" >&2
        exit 1
    fi
    if [ ! -f "$FLEET_BASELINE" ]; then
        echo "bench_gate: no baseline for fleet role ($FLEET_BASELINE) — skipping this gate; commit a baseline to enable it" >&2
        exit 0
    fi
    exec cargo run -q --release --offline -p mlq-bench -- \
        --gate-fleet "$FLEET_MEASURED" "$FLEET_BASELINE"
fi

MEASURED="${1:-BENCH_serve.json}"
BASELINE="${2:-BENCH_serve.baseline.json}"
TOLERANCE="${3:-0.2}"
PREDICT_MEASURED="${4:-BENCH_predict.json}"
PREDICT_BASELINE="${5:-BENCH_predict.baseline.json}"
REPLICATED_MEASURED="${6:-BENCH_serve_replicated.json}"
REPLICATED_BASELINE="${7:-BENCH_serve_replicated.baseline.json}"
FLEET_MEASURED="${8:-BENCH_fleet.json}"
FLEET_BASELINE="${9:-BENCH_fleet.baseline.json}"

# Aggregate replicated scaling required at REPLICAS replicas vs the
# 1-reader control run (only enforced on hosts with >= 4 CPUs; the gate
# binary reads host_parallelism from the measured report).
REPLICAS="${REPLICAS:-4}"
MIN_REPLICATED_SCALING="${MIN_REPLICATED_SCALING:-2.0}"

# Fail with a role-and-path message before any gate runs, so a missing
# file reads as "missing baseline BENCH_serve.baseline.json" instead of
# a raw parse error from the gate binary.
require() {
    if [ ! -f "$2" ]; then
        echo "bench_gate: missing $1 $2 (measured reports are gitignored run outputs — regenerate with mlq-bench; baselines are committed)" >&2
        exit 1
    fi
}

# For secondary roles: true (and gate) when the baseline exists, notice
# and skip when it does not.
have_baseline() {
    if [ -f "$2" ]; then
        return 0
    fi
    echo "bench_gate: no baseline for $1 role ($2) — skipping this gate; commit a baseline to enable it" >&2
    return 1
}

require "measured report" "$MEASURED"
require "baseline" "$BASELINE"

cargo run -q --release --offline -p mlq-bench -- \
    --gate "$MEASURED" "$BASELINE" --tolerance "$TOLERANCE"

if [ -f "$PREDICT_MEASURED" ] || [ $# -ge 4 ]; then
    require "predict measured report" "$PREDICT_MEASURED"
    if have_baseline "predict" "$PREDICT_BASELINE"; then
        # The predict gate keeps its own (looser) default tolerance unless
        # the caller named one explicitly; its millisecond passes are
        # noisier than the serve harness's duration-based runs.
        if [ $# -ge 3 ]; then
            cargo run -q --release --offline -p mlq-bench -- \
                --gate-predict "$PREDICT_MEASURED" "$PREDICT_BASELINE" --tolerance "$TOLERANCE"
        else
            cargo run -q --release --offline -p mlq-bench -- \
                --gate-predict "$PREDICT_MEASURED" "$PREDICT_BASELINE"
        fi
    fi
fi

if [ -f "$REPLICATED_MEASURED" ] || [ $# -ge 6 ]; then
    require "replicated measured report" "$REPLICATED_MEASURED"
    if have_baseline "replicated" "$REPLICATED_BASELINE"; then
        cargo run -q --release --offline -p mlq-bench -- \
            --gate "$REPLICATED_MEASURED" "$REPLICATED_BASELINE" --tolerance "$TOLERANCE" \
            --scaling-readers "$REPLICAS" --min-scaling "$MIN_REPLICATED_SCALING"
    fi
fi

if [ -f "$FLEET_MEASURED" ] || [ $# -ge 8 ]; then
    require "fleet measured report" "$FLEET_MEASURED"
    if have_baseline "fleet" "$FLEET_BASELINE"; then
        cargo run -q --release --offline -p mlq-bench -- \
            --gate-fleet "$FLEET_MEASURED" "$FLEET_BASELINE"
    fi
fi
